#include "engine/sirius.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <unordered_set>

#include "gdf/asof.h"
#include "gdf/bloom.h"
#include "gdf/compute.h"
#include "gdf/copying.h"
#include "gdf/filter.h"
#include "gdf/groupby.h"
#include "gdf/join.h"
#include "gdf/selection.h"
#include "gdf/sort.h"
#include "host/cpu_executor.h"
#include "plan/substrait.h"

namespace sirius::engine {

using format::ColumnPtr;
using format::TablePtr;
using plan::PlanNode;
using plan::PlanPtr;

// Device-memory fault site: a firing check models an allocation failing in
// the processing region (the paper's GPU OOM, §3.4).
SIRIUS_FAULT_DEFINE_SITE(kSiteReserve, "engine.reserve");
// Fused-stage compile fault site: a firing check models the fusion compiler
// rejecting the plan (e.g. an unexpected chain shape); the engine degrades
// the whole run to materialized step-at-a-time execution instead of failing
// the query.
SIRIUS_FAULT_DEFINE_SITE(kSiteFuseCompile, "engine.fuse.compile");

SiriusEngine::SiriusEngine(host::Database* host_db, Options options)
    : host_db_(host_db),
      options_(options),
      tiers_(options.tier, options.injector != nullptr
                               ? options.injector
                               : fault::FaultInjector::Global()),
      buffer_manager_([&] {
        BufferManager::Options bm;
        bm.device_capacity_bytes = static_cast<uint64_t>(
            options.device.mem_capacity_gib * (1ull << 30));
        bm.cache_fraction = options.cache_fraction;
        bm.host_link = options.host_link;
        bm.processing_override = options.processing_override;
        bm.tiers = &tiers_;
        return bm;
      }()),
      task_pool_(static_cast<size_t>(options.num_task_threads)) {
  counters_.queries = metrics_.GetCounter("engine.queries");
  counters_.oom_events = metrics_.GetCounter("engine.oom_events");
  counters_.evictions_under_pressure =
      metrics_.GetCounter("engine.evictions_under_pressure");
  counters_.pipeline_retries = metrics_.GetCounter("engine.pipeline_retries");
  counters_.spill_events = metrics_.GetCounter("engine.spill_events");
  counters_.spill_host = metrics_.GetCounter("engine.spill.host");
  counters_.spill_nvme = metrics_.GetCounter("engine.spill.nvme");
  counters_.tier_loss_retries = metrics_.GetCounter("engine.tier_loss_retries");
  counters_.race_violations = metrics_.GetCounter("engine.race_violations");
  counters_.deadline_cancels = metrics_.GetCounter("engine.deadline_cancels");
  counters_.fused_stages = metrics_.GetCounter("engine.fused_stages");
  counters_.fusion_fallbacks = metrics_.GetCounter("engine.fusion_fallbacks");
  if (options_.use_custom_kernels) {
    // Hand-tuned kernel variants: modestly better join/group-by efficiency
    // than the stock libcudf-class implementations.
    options_.profile.join_eff *= 1.15;
    options_.profile.groupby_eff *= 1.2;
  }
}

SiriusEngine::~SiriusEngine() = default;

namespace {

/// Executes one compiled pipeline set against the device.
/// Hazard-tracker resource ids for materialized pipeline results live in a
/// namespace disjoint from LifetimeTracker generations (cache entries).
constexpr uint64_t kPipelineResourceBase = 1ull << 32;

uint64_t PipelineResource(int id) {
  return kPipelineResourceBase + static_cast<uint64_t>(id);
}

class PipelineRunner {
 public:
  /// Per-tier spill counters bumped alongside the `spill_events` aggregate.
  struct SpillCounters {
    obs::Counter* host = nullptr;
    obs::Counter* nvme = nullptr;
    obs::Counter* aggregate = nullptr;
  };

  PipelineRunner(const SiriusEngine::Options& options, BufferManager* bm,
                 host::Database* host_db, ThreadPool* pool,
                 fault::FaultInjector* injector, mem::TierManager* tiers,
                 SpillCounters spill_counters, obs::Counter* race_violations,
                 obs::TraceRecorder* trace, const ExecLimits* limits = nullptr,
                 obs::Counter* deadline_cancels = nullptr,
                 obs::Counter* fused_stages = nullptr)
      : options_(options),
        bm_(bm),
        host_db_(host_db),
        pool_(pool),
        injector_(injector),
        tiers_(tiers),
        spill_counters_(spill_counters),
        race_violations_(race_violations),
        trace_(trace),
        limits_(limits),
        deadline_cancels_(deadline_cancels),
        fused_stages_(fused_stages) {}

  /// True when the last Run failed (or degraded) because a spill tier was
  /// lost mid-spill; tells the evict-and-retry path apart from other
  /// Unavailable errors (which must not trigger a retry).
  bool tier_loss_seen() const {
    return spill_ != nullptr && spill_->tier_loss_seen();
  }

  /// `trace_base_s` places this run on the query-global simulated time
  /// axis (after the fixed query overhead; retries start after the failed
  /// run's charged time).
  Result<TablePtr> Run(const std::vector<Pipeline>& pipelines,
                       const std::vector<FusedStage>& stages, int result_id,
                       sim::Timeline* timeline, sim::KernelStats* kernels,
                       double trace_base_s = 0.0) {
    const size_t n = pipelines.size();
    stages_ = &stages;
    // Fresh spill state per run: a retry starts with empty lanes and no
    // residual tier-loss flag from the failed attempt.
    spill_ = std::make_unique<mem::SpillSession>(tiers_);
    results_.assign(n, nullptr);
    timelines_.assign(n, sim::Timeline());
    kstats_.assign(n, sim::KernelStats());
    remaining_deps_.assign(n, 0);
    dependents_.assign(n, {});
    start_s_.assign(n, trace_base_s);
    end_s_.assign(n, trace_base_s);
    run_base_s_ = trace_base_s;
    inflight_ = 0;
    error_ = Status::OK();
    if (trace_ != nullptr) {
      track_ids_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        // Each pipeline executes as one simulated stream; RegisterTrack
        // dedups by name, so a retry run reuses the same lanes.
        track_ids_[i] = trace_->RegisterTrack("stream-" + std::to_string(i));
      }
    }

    if (options_.race_check) {
      // Each pipeline executes as one simulated stream; the dependency edges
      // of the pipeline DAG become recorded/awaited events. The tracker then
      // proves every cross-pipeline access is ordered — deterministically,
      // whatever the host thread pool's actual interleaving was.
      tracker_ = std::make_unique<sim::HazardTracker>();
      tracker_->set_enabled(true);
      tracker_->set_abort_on_violation(options_.race_check_abort);
      stream_ids_.resize(n);
      for (size_t i = 0; i < n; ++i) {
        stream_ids_[i] =
            tracker_->CreateStream("pipeline-" + std::to_string(i));
      }
      completion_events_.assign(n, -1);
    }

    for (const auto& p : pipelines) {
      remaining_deps_[p.id] = static_cast<int>(p.dependencies.size());
      for (int d : p.dependencies) dependents_[d].push_back(p.id);
    }
    // Enqueue initially-ready pipelines into the global task queue; idle
    // worker threads pull and execute them (paper §3.2.2).
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& p : pipelines) {
        if (remaining_deps_[p.id] == 0) Enqueue(pipelines, p.id);
      }
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] { return inflight_ == 0; });
      if (tracker_ != nullptr && race_violations_ != nullptr) {
        race_violations_->Add(tracker_->violation_count());
      }
      SIRIUS_RETURN_NOT_OK(error_);
      if (tracker_ != nullptr && tracker_->violation_count() > 0) {
        const auto v = tracker_->violations().front();
        return Status::ExecutionError(
            std::string("race check: ") +
            sim::HazardViolationKindName(v.kind) + " on resource " +
            std::to_string(v.resource) + ": " + v.detail);
      }
    }

    // Merge per-pipeline timelines deterministically (id order). Simulated
    // time models a single saturated device: work adds up.
    for (size_t i = 0; i < n; ++i) timeline->Append(timelines_[i]);
    if (kernels != nullptr) {
      for (size_t i = 0; i < n; ++i) kernels->Append(kstats_[i]);
    }
    if (results_[result_id] == nullptr) {
      return Status::Internal("result pipeline did not materialize");
    }
    return results_[result_id];
  }

 private:
  /// Caller holds mu_.
  void Enqueue(const std::vector<Pipeline>& pipelines, int id) {
    ++inflight_;
    // All dependencies have completed, so this pipeline's position on the
    // simulated time axis is decided: it starts when its last dependency
    // ends (dependency-driven start, concurrent with unrelated pipelines).
    start_s_[id] = run_base_s_;
    for (int dep : pipelines[id].dependencies) {
      start_s_[id] = std::max(start_s_[id], end_s_[dep]);
    }
    pool_->Submit([this, &pipelines, id] {
      WaitForDependencies(pipelines[id]);
      auto result = ExecutePipeline(pipelines[id]);
      std::lock_guard<std::mutex> lock(mu_);
      end_s_[id] = start_s_[id] + timelines_[id].total_seconds();
      if (result.ok()) {
        results_[id] = std::move(result).ValueOrDie();
        if (tracker_ != nullptr) {
          // Materializing the result is a write on this pipeline's stream;
          // the completion event is the edge dependents must wait on.
          tracker_->OnWrite(stream_ids_[id], PipelineResource(id),
                            "materialize pipeline " + std::to_string(id));
          completion_events_[id] = tracker_->RecordEvent(stream_ids_[id]);
        }
        if (error_.ok()) {
          for (int dep : dependents_[id]) {
            if (--remaining_deps_[dep] == 0) Enqueue(pipelines, dep);
          }
        }
      } else if (error_.ok()) {
        error_ = result.status();  // first error wins; no new tasks start
      }
      --inflight_;
      done_cv_.notify_all();
    });
  }

  /// Replays the pipeline's dependency edges as stream-event waits; after
  /// this, every access the dependency materialized happens-before us.
  void WaitForDependencies(const Pipeline& p) {
    if (tracker_ == nullptr) return;
    std::lock_guard<std::mutex> lock(mu_);
    for (int dep : p.dependencies) {
      if (completion_events_[dep] >= 0) {
        tracker_->StreamWaitEvent(stream_ids_[p.id], completion_events_[dep]);
      }
    }
  }

  sim::SimContext MakeSim(int id) {
    sim::SimContext sim;
    sim.device = options_.device;
    sim.engine = options_.profile;
    sim.timeline = &timelines_[id];
    sim.kernel_stats = &kstats_[id];
    sim.data_scale = options_.data_scale;
    if (tracker_ != nullptr) {
      sim.stream = stream_ids_[id];
      sim.hazards = tracker_.get();
    }
    if (trace_ != nullptr) {
      sim.trace = trace_;
      sim.track = track_ids_[id];
      sim.trace_base = start_s_[id];
    }
    return sim;
  }

  /// Deadline / cancel-flag poll, called between units of charged work. The
  /// deadline compares the pipeline's position on the query-global simulated
  /// axis, so a trip is deterministic for a given plan and cache state and
  /// the partial work stays charged (cancellation costs simulated time).
  Status CheckLimits(const Pipeline& p) {
    if (limits_ == nullptr) return Status::OK();
    if (limits_->cancel != nullptr &&
        limits_->cancel->load(std::memory_order_relaxed)) {
      if (deadline_cancels_ != nullptr) deadline_cancels_->Add();
      return Status::Timeout("query cancelled mid-pipeline (pipeline " +
                             std::to_string(p.id) + ")");
    }
    if (limits_->deadline_s > 0) {
      const double elapsed_s =
          start_s_[p.id] + timelines_[p.id].total_seconds();
      if (elapsed_s > limits_->deadline_s) {
        if (deadline_cancels_ != nullptr) deadline_cancels_->Add();
        return Status::Timeout(
            "deadline of " + std::to_string(limits_->deadline_s) +
            "s (simulated) exceeded mid-pipeline (pipeline " +
            std::to_string(p.id) + ")");
      }
    }
    return Status::OK();
  }

  Result<TablePtr> ExecutePipeline(const Pipeline& p) {
    SIRIUS_RETURN_NOT_OK(CheckLimits(p));
    gdf::Context ctx;
    ctx.mr = bm_->processing_resource();
    ctx.sim = MakeSim(p.id);
    obs::Span pipeline_span(trace_,
                            trace_ != nullptr ? track_ids_[p.id] : 0,
                            "pipeline-" + std::to_string(p.id), "pipeline",
                            ctx.sim.TraceClock());

    const bool fused = stages_ != nullptr &&
                       static_cast<size_t>(p.id) < stages_->size() &&
                       (*stages_)[p.id].exec == StageExec::kFused;

    // --- Source ---
    TablePtr current;
    if (p.source_scan != nullptr) {
      if (fused) {
        SIRIUS_ASSIGN_OR_RETURN(current, RunScanFused(p, ctx));
      } else {
        SIRIUS_ASSIGN_OR_RETURN(current, RunScanAndSteps(p, ctx));
        SIRIUS_ASSIGN_OR_RETURN(current, RunSink(p, std::move(current), ctx));
      }
      SIRIUS_RETURN_NOT_OK(DrainSpill(p, ctx));
      return current;
    }
    if (p.source_pipeline >= 0) {
      current = results_[p.source_pipeline];
      if (current == nullptr) {
        return Status::Internal("source pipeline did not materialize");
      }
      ctx.sim.NoteRead(PipelineResource(p.source_pipeline),
                       "source of pipeline " + std::to_string(p.id));
      if (fused) {
        gdf::SelectionView view = gdf::SelectionView::FromTable(current);
        // One register-residency scope for the chain + its sink: every
        // input column is charged once for the whole fused kernel.
        std::unordered_set<const format::Column*> resident;
        gdf::Context fctx = ctx;
        fctx.fused_reads = &resident;
        SIRIUS_RETURN_NOT_OK(FusedPass(p, &view, fctx));
        SIRIUS_ASSIGN_OR_RETURN(current, RunSinkFused(p, view, fctx));
      } else {
        SIRIUS_ASSIGN_OR_RETURN(current, RunSteps(p, std::move(current), ctx));
        SIRIUS_ASSIGN_OR_RETURN(current, RunSink(p, std::move(current), ctx));
      }
      SIRIUS_RETURN_NOT_OK(DrainSpill(p, ctx));
      return current;
    }
    return Status::Internal("pipeline without source");
  }

  /// Pipeline-end barrier on the spill lane: every outstanding prefetch must
  /// land before the result is final. Compute pays only the remaining drain
  /// (transfers overlapped with the steps that ran since the round trip);
  /// a tier lost mid-spill surfaces here as Unavailable.
  Status DrainSpill(const Pipeline& p, const gdf::Context& ctx) {
    if (spill_ == nullptr) return Status::OK();
    const double now = start_s_[p.id] + timelines_[p.id].total_seconds();
    SIRIUS_ASSIGN_OR_RETURN(const double drain, spill_->Join(p.id, now));
    if (drain > 0) {
      const double t0 = ctx.sim.TraceNow();
      ctx.sim.ChargeSeconds(sim::OpCategory::kOther, drain);
      if (trace_ != nullptr) {
        trace_->AddComplete(track_ids_[p.id], "spill-drain", "mem", t0,
                            t0 + drain);
      }
    }
    return Status::OK();
  }

  /// Scan source, including the §3.4 out-of-core batch mode: inputs that do
  /// not fit the caching region stream from host memory in batches that are
  /// pushed through the pipeline steps and concatenated before the sink.
  Result<TablePtr> RunScanAndSteps(const Pipeline& p, const gdf::Context& ctx) {
    const PlanNode& scan = *p.source_scan;
    SIRIUS_ASSIGN_OR_RETURN(TablePtr host_table,
                            host_db_->catalog().GetTable(scan.table_name));
    uint64_t scanned_raw = 0;
    for (int c : scan.scan_columns) {
      scanned_raw += host_table->column(c)->MemoryUsage();
    }
    const uint64_t modeled_bytes =
        static_cast<uint64_t>(static_cast<double>(scanned_raw) *
                              ctx.sim.data_scale);
    const uint64_t compressed_bytes = static_cast<uint64_t>(
        static_cast<double>(modeled_bytes) / bm_->compression_ratio());

    if (compressed_bytes > bm_->cache_capacity_bytes() && options_.out_of_core) {
      // Batch execution: split the input so each modeled batch fits in half
      // of the caching region, stream each batch over the host link.
      const uint64_t budget = bm_->cache_capacity_bytes() / 2;
      const size_t num_batches = static_cast<size_t>(
          (modeled_bytes + budget - 1) / budget);
      const size_t rows_per_batch =
          (host_table->num_rows() + num_batches - 1) / num_batches;
      std::vector<TablePtr> outputs;
      for (size_t offset = 0; offset < host_table->num_rows();
           offset += rows_per_batch) {
        SIRIUS_ASSIGN_OR_RETURN(
            TablePtr batch,
            gdf::SliceTable(ctx, host_table, offset, rows_per_batch));
        SIRIUS_ASSIGN_OR_RETURN(batch, batch->SelectColumns(scan.scan_columns));
        ctx.sim.ChargeSeconds(sim::OpCategory::kScan,
                              options_.host_link.TransferSeconds(
                                  batch->MemoryUsage(), ctx.sim.data_scale));
        SIRIUS_ASSIGN_OR_RETURN(batch, RunSteps(p, std::move(batch), ctx));
        outputs.push_back(std::move(batch));
      }
      if (outputs.size() == 1) return outputs[0];
      return gdf::ConcatTables(ctx, outputs);
    }

    // The buffer manager charges the scan read (compressed bytes + decode
    // when the cache is compressed).
    SIRIUS_ASSIGN_OR_RETURN(
        TablePtr current,
        bm_->GetOrCacheColumns(scan.table_name, host_table, scan.scan_columns,
                               ctx.sim));
    return RunSteps(p, std::move(current), ctx);
  }

  /// Schema of the fused chain's logical output (the last step's node).
  /// Fused stages always have steps (the compiler refuses empty chains).
  static const format::Schema& StepOutputSchema(const Pipeline& p) {
    return p.steps.back().node->output_schema;
  }

  /// Fused scan source: the in-core path runs the whole input as one morsel
  /// through FusedPass and materializes at the sink; the §3.4 out-of-core
  /// path runs one fused pass per batch — the morsel boundary is a
  /// materialization point — concatenates, and applies the sink materialized.
  Result<TablePtr> RunScanFused(const Pipeline& p, const gdf::Context& ctx) {
    const PlanNode& scan = *p.source_scan;
    SIRIUS_ASSIGN_OR_RETURN(TablePtr host_table,
                            host_db_->catalog().GetTable(scan.table_name));
    uint64_t scanned_raw = 0;
    for (int c : scan.scan_columns) {
      scanned_raw += host_table->column(c)->MemoryUsage();
    }
    const uint64_t modeled_bytes =
        static_cast<uint64_t>(static_cast<double>(scanned_raw) *
                              ctx.sim.data_scale);
    const uint64_t compressed_bytes = static_cast<uint64_t>(
        static_cast<double>(modeled_bytes) / bm_->compression_ratio());

    if (compressed_bytes > bm_->cache_capacity_bytes() && options_.out_of_core) {
      const uint64_t budget = bm_->cache_capacity_bytes() / 2;
      const size_t num_batches = static_cast<size_t>(
          (modeled_bytes + budget - 1) / budget);
      const size_t rows_per_batch =
          (host_table->num_rows() + num_batches - 1) / num_batches;
      std::vector<TablePtr> outputs;
      for (size_t offset = 0; offset < host_table->num_rows();
           offset += rows_per_batch) {
        SIRIUS_ASSIGN_OR_RETURN(
            TablePtr batch,
            gdf::SliceTable(ctx, host_table, offset, rows_per_batch));
        SIRIUS_ASSIGN_OR_RETURN(batch, batch->SelectColumns(scan.scan_columns));
        ctx.sim.ChargeSeconds(sim::OpCategory::kScan,
                              options_.host_link.TransferSeconds(
                                  batch->MemoryUsage(), ctx.sim.data_scale));
        gdf::SelectionView view = gdf::SelectionView::FromTable(batch);
        // Per-batch residency scope: the morsel boundary flushes registers.
        // The transfer above already brought the batch on-device, so its
        // columns start resident — the fused kernel reads them as it streams.
        std::unordered_set<const format::Column*> resident;
        for (const auto& c : batch->columns()) resident.insert(c.get());
        gdf::Context fctx = ctx;
        fctx.fused_reads = &resident;
        SIRIUS_RETURN_NOT_OK(FusedPass(p, &view, fctx));
        SIRIUS_ASSIGN_OR_RETURN(
            TablePtr out, gdf::MaterializeView(fctx, view, StepOutputSchema(p),
                                               sim::OpCategory::kOther));
        // The morsel boundary is a real materialization: the batch output
        // must fit the processing region like any materialized intermediate,
        // and overflows take the same tiered spill round trip (§3.4).
        SIRIUS_RETURN_NOT_OK(CheckProcessingFit(out, p, fctx));
        outputs.push_back(std::move(out));
      }
      TablePtr all;
      if (outputs.size() == 1) {
        all = outputs[0];
      } else {
        SIRIUS_ASSIGN_OR_RETURN(all, gdf::ConcatTables(ctx, outputs));
        SIRIUS_RETURN_NOT_OK(CheckProcessingFit(all, p, ctx));
      }
      return RunSink(p, std::move(all), ctx);
    }

    SIRIUS_ASSIGN_OR_RETURN(
        TablePtr current,
        bm_->GetOrCacheColumns(scan.table_name, host_table, scan.scan_columns,
                               ctx.sim));
    gdf::SelectionView view = gdf::SelectionView::FromTable(current);
    // The scan charge above IS the fused kernel's read of the base columns:
    // they enter the pass register-resident, so the chained operators and
    // the sink never pay an HBM re-read for them.
    std::unordered_set<const format::Column*> resident;
    for (const auto& c : current->columns()) resident.insert(c.get());
    gdf::Context fctx = ctx;
    fctx.fused_reads = &resident;
    SIRIUS_RETURN_NOT_OK(FusedPass(p, &view, fctx));
    return RunSinkFused(p, view, fctx);
  }

  /// One fused pass over the chain: selection vectors flow between the
  /// operators, nothing gathers until the sink. The whole chain is one
  /// kernel for launch accounting; the per-op kernel spans are suppressed
  /// and replaced by a single "fused-stage" span carrying `fused_ops`.
  Status FusedPass(const Pipeline& p, gdf::SelectionView* view,
                   const gdf::Context& ctx) {
    const double t0 = ctx.sim.TraceNow();
    gdf::Context inner = ctx;
    inner.sim.trace = nullptr;
    sim::KernelCost launch;
    launch.ops_per_row = 0;
    launch.launches = 1;
    inner.sim.Charge(sim::OpCategory::kOther, launch);

    for (const auto& step : p.steps) {
      switch (step.kind) {
        case StepKind::kFilter: {
          SIRIUS_ASSIGN_OR_RETURN(
              ColumnPtr mask,
              gdf::ComputeColumnView(inner, *step.node->predicate, *view,
                                     sim::OpCategory::kFilter));
          SIRIUS_ASSIGN_OR_RETURN(std::vector<gdf::index_t> sel,
                                  gdf::MaskToSelection(inner, mask));
          // uint64 <-> int32 boundary kept for parity with the materialized
          // path (§3.2.3); the selection refines the view instead of
          // gathering.
          std::vector<uint64_t> engine_rows =
              BufferManager::FromGdfIndices(sel, inner.sim);
          SIRIUS_ASSIGN_OR_RETURN(
              sel, BufferManager::ToGdfIndices(engine_rows, inner.sim));
          SIRIUS_RETURN_NOT_OK(
              gdf::RefineView(inner, view, sel, sim::OpCategory::kFilter));
          break;
        }
        case StepKind::kProject: {
          std::vector<ColumnPtr> cols;
          for (const auto& e : step.node->projections) {
            SIRIUS_ASSIGN_OR_RETURN(
                ColumnPtr c, gdf::ComputeColumnView(inner, *e, *view,
                                                    sim::OpCategory::kProject));
            cols.push_back(std::move(c));
          }
          SIRIUS_ASSIGN_OR_RETURN(
              TablePtr t,
              format::Table::Make(step.node->output_schema, std::move(cols)));
          // Computed columns are already compact; the view restarts dense.
          view->ResetToTable(std::move(t));
          break;
        }
        case StepKind::kProbeJoin: {
          SIRIUS_RETURN_NOT_OK(ProbeFused(p, step, view, inner));
          break;
        }
        case StepKind::kCrossJoin:
          return Status::Internal("cross join cannot run fused");
      }
      SIRIUS_RETURN_NOT_OK(
          CheckProcessingFitBytes(view->SelectionBytes(), p, inner));
      SIRIUS_RETURN_NOT_OK(CheckLimits(p));
    }
    if (trace_ != nullptr) {
      const double charged = ctx.sim.TraceNow() - t0;
      trace_->AddComplete(
          track_ids_[p.id], "fused-stage", "kernel", t0, t0 + charged,
          {{"fused_ops", static_cast<double>(p.steps.size())},
           {"charged_s", charged},
           {"predicted_s", charged}});
    }
    if (fused_stages_ != nullptr) fused_stages_->Add();
    return Status::OK();
  }

  /// Fused join probe: gathers only the probe-side key columns through the
  /// view, hash-joins against the materialized build side, and composes the
  /// pair lists back into the view (probe side refined, build side appended
  /// as a new segment) — the full-width gathers the materialized path pays
  /// are deferred to the sink.
  Status ProbeFused(const Pipeline& p, const Step& step,
                    gdf::SelectionView* view, const gdf::Context& ctx) {
    const PlanNode& node = *step.node;
    TablePtr build = results_[step.build_pipeline];
    if (build == nullptr) {
      return Status::Internal("build side not materialized");
    }
    ctx.sim.NoteRead(PipelineResource(step.build_pipeline),
                     "build side probed by pipeline " + std::to_string(p.id));
    std::vector<ColumnPtr> lkeys, rkeys;
    for (int k : node.left_keys) {
      SIRIUS_ASSIGN_OR_RETURN(
          ColumnPtr c,
          gdf::GatherViewColumn(ctx, *view, k, sim::OpCategory::kJoin));
      lkeys.push_back(std::move(c));
    }
    for (int k : node.right_keys) rkeys.push_back(build->column(k));

    // Predicate transfer stays selection-shaped in a fused pass: the Bloom
    // test emits a selection that refines the view; no gathered probe table.
    if (options_.predicate_transfer &&
        node.join_type == plan::JoinType::kInner && node.left_keys.size() == 1 &&
        build->num_rows() * 2 < view->num_rows()) {
      SIRIUS_ASSIGN_OR_RETURN(
          std::vector<gdf::index_t> keep,
          gdf::BloomPrefilterSelection(ctx, lkeys[0], rkeys[0]));
      if (keep.size() < view->num_rows()) {
        SIRIUS_RETURN_NOT_OK(
            gdf::RefineView(ctx, view, keep, sim::OpCategory::kJoin));
        // Compact the gathered key alongside the view; the Bloom charge
        // already covered writing the surviving keys.
        SIRIUS_ASSIGN_OR_RETURN(
            lkeys[0], gdf::GatherColumnUncharged(ctx, lkeys[0], keep));
      }
    }

    gdf::JoinOptions joptions;
    switch (node.join_type) {
      case plan::JoinType::kInner:
        joptions.type = gdf::JoinType::kInner;
        break;
      case plan::JoinType::kLeft:
        joptions.type = gdf::JoinType::kLeft;
        break;
      case plan::JoinType::kSemi:
        joptions.type = gdf::JoinType::kSemi;
        break;
      case plan::JoinType::kAnti:
        joptions.type = gdf::JoinType::kAnti;
        break;
      case plan::JoinType::kCross:
      case plan::JoinType::kAsof:
        return Status::Internal("join type cannot run fused");
    }
    SIRIUS_ASSIGN_OR_RETURN(gdf::JoinResult pairs,
                            gdf::HashJoin(ctx, lkeys, rkeys, joptions));
    // uint64 <-> int32 index boundary on the join outputs (§3.2.3).
    std::vector<uint64_t> engine_left =
        BufferManager::FromGdfIndices(pairs.left_indices, ctx.sim);
    SIRIUS_ASSIGN_OR_RETURN(pairs.left_indices,
                            BufferManager::ToGdfIndices(engine_left, ctx.sim));
    const bool emits_right = node.join_type == plan::JoinType::kInner ||
                             node.join_type == plan::JoinType::kLeft;
    return gdf::ApplyJoinToView(
        ctx, view, pairs, build, emits_right,
        /*nullable_right=*/node.join_type == plan::JoinType::kLeft,
        sim::OpCategory::kJoin);
  }

  /// Sink of a fused stage: the view's one materialization point. Aggregates
  /// consume the view directly (only referenced columns gather); limits
  /// refine the selection before gathering; everything else materializes the
  /// view and delegates to the existing sink kernel.
  Result<TablePtr> RunSinkFused(const Pipeline& p,
                                const gdf::SelectionView& view,
                                const gdf::Context& ctx) {
    switch (p.sink) {
      case SinkKind::kAggregate: {
        const PlanNode& node = *p.sink_node;
        std::vector<std::string> key_names;
        for (size_t k = 0; k < node.group_by.size(); ++k) {
          key_names.push_back(node.output_schema.field(k).name);
        }
        std::vector<gdf::AggRequest> aggs;
        for (size_t a = 0; a < node.aggregates.size(); ++a) {
          gdf::AggRequest req;
          req.kind = host::ToGdfAgg(node.aggregates[a].func);
          req.column = node.aggregates[a].arg_column;
          req.name = node.output_schema.field(node.group_by.size() + a).name;
          aggs.push_back(std::move(req));
        }
        return gdf::GroupByAggregateView(ctx, view, node.group_by, key_names,
                                         aggs);
      }
      case SinkKind::kLimit: {
        // The limit refines the selection before the chain's single gather,
        // so only the surviving rows ever materialize.
        const PlanNode& node = *p.sink_node;
        const size_t start =
            std::min(static_cast<size_t>(node.offset), view.num_rows());
        const size_t count =
            node.limit < 0 ? view.num_rows() - start
                           : std::min(static_cast<size_t>(node.limit),
                                      view.num_rows() - start);
        std::vector<gdf::index_t> sel(count);
        for (size_t i = 0; i < count; ++i) {
          sel[i] = static_cast<gdf::index_t>(start + i);
        }
        gdf::SelectionView sliced = view;
        SIRIUS_RETURN_NOT_OK(
            gdf::RefineView(ctx, &sliced, sel, sim::OpCategory::kOther));
        return gdf::MaterializeView(ctx, sliced, StepOutputSchema(p),
                                    sim::OpCategory::kOther);
      }
      default: {
        SIRIUS_ASSIGN_OR_RETURN(
            TablePtr t, gdf::MaterializeView(ctx, view, StepOutputSchema(p),
                                             sim::OpCategory::kOther));
        // The sink gather is the fused stage's materialization point; it
        // pays the same fit check (and, out of core, the same spill round
        // trip) the materialized path pays per intermediate.
        SIRIUS_RETURN_NOT_OK(CheckProcessingFit(t, p, ctx));
        return RunSink(p, std::move(t), ctx);
      }
    }
  }

  Result<TablePtr> RunSteps(const Pipeline& p, TablePtr current,
                            const gdf::Context& ctx) {
    for (const auto& step : p.steps) {
      switch (step.kind) {
        case StepKind::kFilter: {
          SIRIUS_ASSIGN_OR_RETURN(
              ColumnPtr mask,
              gdf::ComputeColumn(ctx, *step.node->predicate, current,
                                 sim::OpCategory::kFilter));
          SIRIUS_ASSIGN_OR_RETURN(std::vector<gdf::index_t> sel,
                                  gdf::MaskToIndices(ctx, mask));
          // Engine-side row ids are uint64; GDF gathers take int32
          // (§3.2.3's stated conversion boundary).
          std::vector<uint64_t> engine_rows =
              BufferManager::FromGdfIndices(sel, ctx.sim);
          SIRIUS_ASSIGN_OR_RETURN(sel, BufferManager::ToGdfIndices(engine_rows,
                                                                   ctx.sim));
          SIRIUS_ASSIGN_OR_RETURN(
              current,
              gdf::GatherTable(ctx, current, sel, sim::OpCategory::kFilter));
          break;
        }
        case StepKind::kProject: {
          std::vector<ColumnPtr> cols;
          for (const auto& e : step.node->projections) {
            SIRIUS_ASSIGN_OR_RETURN(
                ColumnPtr c, gdf::ComputeColumn(ctx, *e, current,
                                                sim::OpCategory::kProject));
            cols.push_back(std::move(c));
          }
          SIRIUS_ASSIGN_OR_RETURN(
              current,
              format::Table::Make(step.node->output_schema, std::move(cols)));
          break;
        }
        case StepKind::kProbeJoin:
        case StepKind::kCrossJoin: {
          TablePtr build = results_[step.build_pipeline];
          if (build == nullptr) {
            return Status::Internal("build side not materialized");
          }
          ctx.sim.NoteRead(PipelineResource(step.build_pipeline),
                           "build side probed by pipeline " +
                               std::to_string(p.id));
          SIRIUS_ASSIGN_OR_RETURN(current,
                                  Probe(*step.node, current, build, ctx));
          break;
        }
      }
      SIRIUS_RETURN_NOT_OK(CheckProcessingFit(current, p, ctx));
      SIRIUS_RETURN_NOT_OK(CheckLimits(p));
    }
    return current;
  }

  Result<TablePtr> Probe(const PlanNode& node, TablePtr left, TablePtr right,
                         const gdf::Context& ctx) {
    // Predicate transfer (§3.4, [29, 30]): when the build side is selective,
    // a Bloom filter on its key cheaply pre-filters the probe input. False
    // positives are harmless — the hash join re-checks exactly.
    if (options_.predicate_transfer && node.join_type == plan::JoinType::kInner &&
        node.left_keys.size() == 1 &&
        right->num_rows() * 2 < left->num_rows()) {
      SIRIUS_ASSIGN_OR_RETURN(
          left, gdf::BloomPrefilter(ctx, left, node.left_keys,
                                    right->column(node.right_keys[0])));
    }
    gdf::JoinResult pairs;
    if (node.join_type == plan::JoinType::kCross) {
      SIRIUS_ASSIGN_OR_RETURN(
          pairs, gdf::CrossJoin(ctx, left->num_rows(), right->num_rows()));
    } else if (node.join_type == plan::JoinType::kAsof) {
      std::vector<ColumnPtr> lby, rby;
      for (int k : node.left_keys) lby.push_back(left->column(k));
      for (int k : node.right_keys) rby.push_back(right->column(k));
      SIRIUS_ASSIGN_OR_RETURN(
          pairs, gdf::AsofJoin(ctx, left->column(node.asof_left_on),
                               right->column(node.asof_right_on), lby, rby));
    } else {
      std::vector<ColumnPtr> lkeys, rkeys;
      for (int k : node.left_keys) lkeys.push_back(left->column(k));
      for (int k : node.right_keys) rkeys.push_back(right->column(k));
      gdf::JoinOptions options;
      switch (node.join_type) {
        case plan::JoinType::kInner:
          options.type = gdf::JoinType::kInner;
          break;
        case plan::JoinType::kLeft:
          options.type = gdf::JoinType::kLeft;
          break;
        case plan::JoinType::kSemi:
          options.type = gdf::JoinType::kSemi;
          break;
        case plan::JoinType::kAnti:
          options.type = gdf::JoinType::kAnti;
          break;
        case plan::JoinType::kCross:
        case plan::JoinType::kAsof:
          break;
      }
      if (node.residual != nullptr) {
        options.residual = node.residual.get();
        options.left_table = left;
        options.right_table = right;
      }
      SIRIUS_ASSIGN_OR_RETURN(pairs, gdf::HashJoin(ctx, lkeys, rkeys, options));
    }
    // uint64 <-> int32 index boundary on the join outputs (§3.2.3).
    std::vector<uint64_t> engine_left =
        BufferManager::FromGdfIndices(pairs.left_indices, ctx.sim);
    SIRIUS_ASSIGN_OR_RETURN(
        pairs.left_indices, BufferManager::ToGdfIndices(engine_left, ctx.sim));

    const bool emits_right = node.join_type == plan::JoinType::kInner ||
                             node.join_type == plan::JoinType::kLeft ||
                             node.join_type == plan::JoinType::kCross ||
                             node.join_type == plan::JoinType::kAsof;
    SIRIUS_ASSIGN_OR_RETURN(
        TablePtr lg, gdf::GatherTable(ctx, left, pairs.left_indices,
                                      sim::OpCategory::kJoin));
    std::vector<ColumnPtr> cols = lg->columns();
    if (emits_right) {
      SIRIUS_ASSIGN_OR_RETURN(
          TablePtr rg,
          gdf::GatherTable(ctx, right, pairs.right_indices, sim::OpCategory::kJoin,
                           /*nulls_for_negative=*/node.join_type ==
                                   plan::JoinType::kLeft ||
                               node.join_type == plan::JoinType::kAsof));
      for (const auto& c : rg->columns()) cols.push_back(c);
    }
    return format::Table::Make(node.output_schema, std::move(cols));
  }

  Result<TablePtr> RunSink(const Pipeline& p, TablePtr current,
                           const gdf::Context& ctx) {
    switch (p.sink) {
      case SinkKind::kMaterialize:
        return current;
      case SinkKind::kAggregate: {
        const PlanNode& node = *p.sink_node;
        std::vector<ColumnPtr> keys;
        std::vector<std::string> key_names;
        for (size_t k = 0; k < node.group_by.size(); ++k) {
          keys.push_back(current->column(node.group_by[k]));
          key_names.push_back(node.output_schema.field(k).name);
        }
        std::vector<gdf::AggRequest> aggs;
        for (size_t a = 0; a < node.aggregates.size(); ++a) {
          gdf::AggRequest req;
          req.kind = host::ToGdfAgg(node.aggregates[a].func);
          req.column = node.aggregates[a].arg_column;
          req.name = node.output_schema.field(node.group_by.size() + a).name;
          aggs.push_back(std::move(req));
        }
        return gdf::GroupByAggregate(ctx, keys, key_names, current, aggs);
      }
      case SinkKind::kSort: {
        const PlanNode& node = *p.sink_node;
        std::vector<int> cols;
        std::vector<bool> desc;
        for (const auto& k : node.sort_keys) {
          cols.push_back(k.column);
          desc.push_back(k.descending);
        }
        return gdf::SortTable(ctx, current, cols, desc);
      }
      case SinkKind::kDistinct: {
        if (current->num_columns() == 0) return current;
        SIRIUS_ASSIGN_OR_RETURN(std::vector<gdf::index_t> indices,
                                gdf::DistinctIndices(ctx, current->columns()));
        return gdf::GatherTable(ctx, current, indices,
                                sim::OpCategory::kGroupBy);
      }
      case SinkKind::kLimit: {
        const PlanNode& node = *p.sink_node;
        size_t limit = node.limit < 0 ? current->num_rows()
                                      : static_cast<size_t>(node.limit);
        return gdf::SliceTable(ctx, current, static_cast<size_t>(node.offset),
                               limit);
      }
      case SinkKind::kExchange:
        // Single-node deployments bypass the exchange layer (§3.2.4).
        return current;
    }
    return Status::Internal("unknown sink");
  }

  Status CheckProcessingFit(const TablePtr& t, const Pipeline& p,
                            const gdf::Context& ctx) const {
    return CheckProcessingFitBytes(t->MemoryUsage(), p, ctx);
  }

  /// Bytes-based fit check shared by both execution modes: materialized
  /// stages check the gathered intermediate, fused stages check the live
  /// selection-vector state (their only per-step allocation).
  Status CheckProcessingFitBytes(uint64_t raw_bytes, const Pipeline& p,
                                 const gdf::Context& ctx) const {
    const uint64_t modeled = static_cast<uint64_t>(
        static_cast<double>(raw_bytes) * ctx.sim.data_scale);
    // The injector models an allocation failing under pressure even when
    // the capacity pre-check would pass.
    Status st = injector_->Check(kSiteReserve);
    if (st.ok()) st = bm_->ReserveProcessing(modeled);
    if (st.ok() && limits_ != nullptr && limits_->reservation != nullptr) {
      // Per-query accounting: intermediates beyond the admission-time
      // estimate grow the query's reservation; refusal means the serving
      // layer's budget is exhausted, not the device.
      std::lock_guard<std::mutex> lock(reservation_mu_);
      st = limits_->reservation->EnsureAtLeast(modeled);
    }
    if (!st.ok() && st.IsOutOfMemory() && options_.out_of_core) {
      // §3.4 spilling, tiered: the overflow is staged on the first surviving
      // tier with room (pinned host, then NVMe) as an asynchronous round
      // trip on this pipeline's spill lane. Compute pays backpressure when
      // the lane is still busy, not the transfer itself; the remaining
      // drain is charged at pipeline end (DrainSpill). Each byte is charged
      // to the tenant's spill quota, and tier exhaustion is a diagnosable
      // ResourceExhausted instead of unbounded host growth.
      const uint64_t overflow = modeled > bm_->processing_capacity_bytes()
                                    ? modeled - bm_->processing_capacity_bytes()
                                    : modeled;
      const double now = start_s_[p.id] + timelines_[p.id].total_seconds();
      Result<mem::SpillSession::Ticket> trip = spill_->RoundTrip(
          p.id, overflow, now, limits_ != nullptr ? limits_->spill : nullptr,
          ctx.sim.hazards, ctx.sim.stream);
      if (!trip.ok()) return trip.status();
      const mem::SpillSession::Ticket& tk = trip.ValueOrDie();
      if (tk.stall_s > 0) {
        ctx.sim.ChargeSeconds(sim::OpCategory::kOther, tk.stall_s);
      }
      if (spill_counters_.aggregate != nullptr) spill_counters_.aggregate->Add();
      obs::Counter* per_tier = tk.tier == mem::Tier::kHost
                                   ? spill_counters_.host
                                   : spill_counters_.nvme;
      if (per_tier != nullptr) per_tier->Add();
      if (trace_ != nullptr) {
        trace_->AddCounter("engine.spill_events");
        trace_->AddCounter(std::string("engine.spill.") +
                           mem::TierName(tk.tier));
      }
      return Status::OK();
    }
    return st;
  }

  const SiriusEngine::Options& options_;
  BufferManager* bm_;
  host::Database* host_db_;
  ThreadPool* pool_;
  fault::FaultInjector* injector_;
  mem::TierManager* tiers_;
  SpillCounters spill_counters_;
  /// Per-run spill state; lanes are per-pipeline, so concurrent pipelines
  /// never share an overlap horizon (determinism).
  std::unique_ptr<mem::SpillSession> spill_;
  obs::Counter* race_violations_;
  obs::TraceRecorder* trace_;
  const ExecLimits* limits_;
  obs::Counter* deadline_cancels_;
  obs::Counter* fused_stages_;
  /// Per-pipeline fused-stage decisions for the current Run (not owned).
  const std::vector<FusedStage>* stages_ = nullptr;
  /// Reservation growth is cross-pipeline (the Reservation is per-query,
  /// not per-stream); serialize it independently of the scheduler lock.
  mutable std::mutex reservation_mu_;

  std::mutex mu_;
  std::condition_variable done_cv_;
  std::vector<TablePtr> results_;
  std::vector<sim::Timeline> timelines_;
  std::vector<sim::KernelStats> kstats_;
  std::vector<int> remaining_deps_;
  std::vector<std::vector<int>> dependents_;
  /// Trace layout: lane per pipeline, dependency-driven start/end offsets
  /// on the query-global simulated time axis.
  std::vector<obs::TrackId> track_ids_;
  std::vector<double> start_s_;
  std::vector<double> end_s_;
  double run_base_s_ = 0.0;
  size_t inflight_ = 0;
  Status error_;

  /// Race-check state (race_check option); null when checking is off.
  std::unique_ptr<sim::HazardTracker> tracker_;
  std::vector<sim::StreamId> stream_ids_;
  std::vector<sim::EventId> completion_events_;
};

/// Re-materializes `t` into default host memory. Result tables can outlive
/// the engine (and its processing pool), so they must not alias pool-backed
/// buffers. Untimed: the copy-out is not part of the modeled query.
Result<TablePtr> CopyOutResult(const TablePtr& t) {
  if (t->num_rows() > static_cast<size_t>(INT32_MAX)) return t;
  gdf::Context ctx;  // default resource, no timeline
  std::vector<gdf::index_t> idx(t->num_rows());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<gdf::index_t>(i);
  return gdf::GatherTable(ctx, t, idx, sim::OpCategory::kOther);
}

}  // namespace

Result<host::QueryResult> SiriusEngine::ExecuteSubstrait(
    const std::string& plan_text) {
  auto resolver = [this](const std::string& name) {
    return host_db_->catalog().GetTableSchema(name);
  };
  SIRIUS_ASSIGN_OR_RETURN(PlanPtr plan,
                          plan::DeserializePlan(plan_text, resolver));
  return ExecutePlan(plan);
}

Result<host::QueryResult> SiriusEngine::ExecutePlan(const PlanPtr& plan) {
  return ExecutePlan(plan, ExecLimits{});
}

Result<host::QueryResult> SiriusEngine::ExecutePlan(const PlanPtr& plan,
                                                    const ExecLimits& limits) {
  SIRIUS_RETURN_NOT_OK(options_.capabilities.Check(*plan));
  std::vector<Pipeline> pipelines;
  SIRIUS_ASSIGN_OR_RETURN(int result_id,
                          PipelineCompiler::Compile(plan, &pipelines));

  counters_.queries->Add();
  host::QueryResult result;
  result.optimized_plan = plan;
  result.timeline.Charge(sim::OpCategory::kOther,
                         options_.profile.fixed_query_overhead_s);

  std::shared_ptr<obs::TraceRecorder> recorder;
  if (options_.tracing) {
    obs::TraceRecorder::Options topt;
    topt.capacity = options_.trace_capacity;
    topt.unbounded = options_.detailed_trace;
    recorder = std::make_shared<obs::TraceRecorder>(topt);
    const obs::TrackId engine_track = recorder->RegisterTrack("engine");
    recorder->AddComplete(engine_track, "query-overhead", "engine", 0.0,
                          options_.profile.fixed_query_overhead_s);
  }

  // Fused-stage compile: one decision per pipeline. A firing fault at the
  // compile site degrades this query to materialized execution (graceful
  // fallback, counted) instead of failing it.
  bool fusion_on = options_.fusion;
  if (fusion_on) {
    Status fuse_st = injector()->Check(kSiteFuseCompile);
    if (!fuse_st.ok()) {
      fusion_on = false;
      counters_.fusion_fallbacks->Add();
      if (recorder != nullptr) {
        recorder->AddCounter("engine.fusion_fallbacks");
      }
    }
  }
  const std::vector<FusedStage> stages = FusedStageCompiler::Compile(
      pipelines, options_.device, options_.data_scale, fusion_on);

  PipelineRunner::SpillCounters spill_counters;
  spill_counters.host = counters_.spill_host;
  spill_counters.nvme = counters_.spill_nvme;
  spill_counters.aggregate = counters_.spill_events;
  PipelineRunner runner(options_, &buffer_manager_, host_db_, &task_pool_,
                        injector(), &tiers_, spill_counters,
                        counters_.race_violations, recorder.get(),
                        limits.any() ? &limits : nullptr,
                        counters_.deadline_cancels, counters_.fused_stages);
  Result<TablePtr> table = runner.Run(pipelines, stages, result_id,
                                      &result.timeline, &result.kernels,
                                      result.timeline.total_seconds());
  if (!table.ok() && table.status().IsOutOfMemory()) {
    counters_.oom_events->Add();
    if (options_.retry_after_evict) {
      // Device-memory pressure recovery: drop the caching region (base
      // columns re-load from the host) and give the pipeline set one more
      // chance before the host falls back to its CPU engine (§3.4).
      counters_.evictions_under_pressure->Add(buffer_manager_.EvictAll());
      counters_.pipeline_retries->Add();
      if (recorder != nullptr) {
        recorder->AddCounter("engine.pipeline_retries");
        recorder->AddInstant(recorder->RegisterTrack("engine"),
                             "oom-evict-retry", "engine",
                             result.timeline.total_seconds());
      }
      table = runner.Run(pipelines, stages, result_id, &result.timeline,
                         &result.kernels, result.timeline.total_seconds());
    }
  } else if (!table.ok() && table.status().IsUnavailable() &&
             runner.tier_loss_seen() && options_.retry_after_evict) {
    // Mid-spill tier loss: revive the lost tiers (a transient loss heals;
    // a persistent fault re-fires on the next placement), drop the cache,
    // and re-run once on the survivors — the same one-retry contract as the
    // OOM path. A second loss propagates, so the serving layer can re-admit
    // the query or the host can fall back to its CPU engine.
    tiers_.ReviveLostTiers();
    counters_.evictions_under_pressure->Add(buffer_manager_.EvictAll());
    counters_.pipeline_retries->Add();
    counters_.tier_loss_retries->Add();
    if (recorder != nullptr) {
      recorder->AddCounter("engine.tier_loss_retries");
      recorder->AddInstant(recorder->RegisterTrack("engine"),
                           "tier-loss-retry", "engine",
                           result.timeline.total_seconds());
    }
    table = runner.Run(pipelines, stages, result_id, &result.timeline,
                       &result.kernels, result.timeline.total_seconds());
  }
  tiers_.PublishGauges(&metrics_);
  SIRIUS_ASSIGN_OR_RETURN(result.table, std::move(table));
  SIRIUS_ASSIGN_OR_RETURN(result.table, CopyOutResult(result.table));
  result.accelerated = true;
  if (recorder != nullptr) {
    recorder->AddComplete(recorder->RegisterTrack("engine"), "query", "engine",
                          0.0, result.timeline.total_seconds());
    result.profile =
        std::make_shared<obs::QueryProfile>(recorder->Finish());
  }
  return result;
}

SiriusEngine::Stats SiriusEngine::stats() const {
  const auto snap = metrics_.Snapshot();
  auto get = [&snap](const char* name) -> uint64_t {
    auto it = snap.find(name);
    return it == snap.end() ? 0 : it->second;
  };
  Stats s;
  s.queries = get("engine.queries");
  s.oom_events = get("engine.oom_events");
  s.evictions_under_pressure = get("engine.evictions_under_pressure");
  s.pipeline_retries = get("engine.pipeline_retries");
  s.spill_events = get("engine.spill_events");
  s.spill_host = get("engine.spill.host");
  s.spill_nvme = get("engine.spill.nvme");
  s.tier_loss_retries = get("engine.tier_loss_retries");
  s.race_violations = get("engine.race_violations");
  s.deadline_cancels = get("engine.deadline_cancels");
  s.fused_stages = get("engine.fused_stages");
  s.fusion_fallbacks = get("engine.fusion_fallbacks");
  return s;
}

void SiriusEngine::ResetStats() { metrics_.Reset(); }

Result<format::TablePtr> SiriusEngine::VectorSearch(
    const std::string& table_name, const std::string& embedding_column,
    const std::vector<double>& query, size_t k, gdf::Metric metric,
    sim::Timeline* timeline) {
  SIRIUS_ASSIGN_OR_RETURN(format::TablePtr host_table,
                          host_db_->catalog().GetTable(table_name));
  const int emb_idx = host_table->schema().IndexOf(embedding_column);
  if (emb_idx < 0) {
    return Status::KeyError("no column '" + embedding_column + "' in '" +
                            table_name + "'");
  }
  gdf::Context ctx;
  ctx.mr = buffer_manager_.processing_resource();
  ctx.sim.device = options_.device;
  ctx.sim.engine = options_.profile;
  ctx.sim.timeline = timeline;
  ctx.sim.data_scale = options_.data_scale;

  // All columns participate in the result; cache them like a scan would.
  std::vector<int> all_columns;
  for (size_t c = 0; c < host_table->num_columns(); ++c) {
    all_columns.push_back(static_cast<int>(c));
  }
  SIRIUS_ASSIGN_OR_RETURN(
      format::TablePtr device_table,
      buffer_manager_.GetOrCacheColumns(table_name, host_table, all_columns,
                                        ctx.sim));
  SIRIUS_ASSIGN_OR_RETURN(
      gdf::TopKResult top,
      gdf::VectorTopK(ctx, device_table->column(emb_idx), query, k, metric));
  SIRIUS_ASSIGN_OR_RETURN(
      format::TablePtr rows,
      gdf::GatherTable(ctx, device_table, top.indices, sim::OpCategory::kOther));
  // Append the similarity scores.
  format::Schema schema = rows->schema();
  schema.AddField({"__score", format::Float64()});
  std::vector<format::ColumnPtr> cols = rows->columns();
  cols.push_back(format::Column::FromDouble(top.scores));
  SIRIUS_ASSIGN_OR_RETURN(
      format::TablePtr out,
      format::Table::Make(std::move(schema), std::move(cols)));
  return CopyOutResult(out);
}

Result<std::string> SiriusEngine::ExplainPipelines(const PlanPtr& plan) const {
  std::vector<Pipeline> pipelines;
  SIRIUS_RETURN_NOT_OK(PipelineCompiler::Compile(plan, &pipelines).status());
  const std::vector<FusedStage> stages = FusedStageCompiler::Compile(
      pipelines, options_.device, options_.data_scale, options_.fusion);
  return PipelinesToString(pipelines, &stages);
}

}  // namespace sirius::engine
