// Sirius: the GPU-native SQL engine (paper §3).
//
// Consumes Substrait-format plans from a host database, executes them
// entirely on the (simulated) GPU device through the GDF kernel library,
// with a caching/processing buffer manager and a pipeline push executor
// fed from a global task queue. Implements host::Accelerator, so plugging
// it into DuckX requires zero host changes (drop-in acceleration, §3.1).

#pragma once

#include <atomic>
#include <memory>

#include "common/result.h"
#include "mem/reservation.h"
#include "mem/tier.h"
#include "common/thread_pool.h"
#include "engine/buffer_manager.h"
#include "engine/capabilities.h"
#include "engine/pipeline.h"
#include "fault/fault_injector.h"
#include "gdf/vector_search.h"
#include "host/database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/device.h"

namespace sirius::engine {

/// \brief Per-execution limits for one query, set by callers that multiplex
/// queries onto a shared engine (the serving layer).
///
/// All limits are charged in *simulated* time: the deadline compares against
/// the query's accumulating Timeline, never a wall clock, so cancellation is
/// deterministic for a given plan and cache state.
struct ExecLimits {
  /// Cancel once the query's charged simulated time passes this many
  /// seconds (0 = no deadline). Checked between pipeline steps, so a
  /// cancellation lands mid-pipeline and surfaces as Status::Timeout with
  /// the partial work already charged.
  double deadline_s = 0;
  /// External cancel flag polled at the same sites (not owned; may be null).
  const std::atomic<bool>* cancel = nullptr;
  /// Admission-time memory reservation for this query (not owned; may be
  /// null). Grown on the fly when an intermediate exceeds the admitted
  /// estimate; growth failure surfaces as Status::ResourceExhausted.
  mem::Reservation* reservation = nullptr;
  /// Per-tenant spill quota (not owned; may be null = unlimited). Every
  /// byte the query spills to host/NVMe is charged here via
  /// Reservation::Grow; exhaustion surfaces as Status::ResourceExhausted
  /// with a "; retry-after=<s>s" hint so the serving layer can shed.
  mem::Reservation* spill = nullptr;

  bool any() const {
    return deadline_s > 0 || cancel != nullptr || reservation != nullptr ||
           spill != nullptr;
  }
};

/// \brief The GPU engine, attachable to a host database as a drop-in
/// accelerator.
class SiriusEngine : public host::Accelerator {
 public:
  struct Options {
    sim::DeviceProfile device = sim::Gh200Gpu();
    sim::EngineProfile profile = sim::SiriusProfile();
    /// Modeled SF / loaded SF, forwarded to the cost model.
    double data_scale = 1.0;
    /// Caching-region fraction of device memory (§4.1 uses 50/50).
    double cache_fraction = 0.5;
    /// Host<->device link (NVLink-C2C on GH200, PCIe4 on the A100 cluster).
    sim::Link host_link = sim::NvlinkC2c();
    /// §3.4 out-of-core extension: stream over-capacity inputs in batches
    /// instead of failing with OutOfMemory.
    bool out_of_core = false;
    /// Spill-tier hierarchy below HBM (pinned host, then simulated NVMe):
    /// capacities and links for the out-of-core overflow path. Spilled
    /// bytes live in governed tiers instead of growing the host unboundedly;
    /// exhaustion is a diagnosable ResourceExhausted.
    mem::TierManager::Options tier;
    /// Worker threads pulling pipeline tasks from the global queue.
    int num_task_threads = 4;
    Capabilities capabilities;
    /// Ablation: "custom CUDA kernels" operator implementations — modeled as
    /// hand-tuned variants with slightly better efficiency than the
    /// libcudf-class defaults (§3.2.2 modular operator design).
    bool use_custom_kernels = false;
    /// §3.4 "predicate transfer" optimization [29, 30]: build a Bloom filter
    /// on each inner-join build side and pre-filter the probe input with it
    /// when the build side is selective.
    bool predicate_transfer = false;
    /// Fused pipeline execution: compile each pipeline's streaming chain
    /// into one pass per morsel where selection vectors flow between
    /// operators and sinks are the only materialization points. Chains the
    /// selection flow cannot express (cross/asof/residual joins) fall back
    /// to materialized step-at-a-time execution per stage.
    bool fusion = true;
    /// Fault injector consulted at the device-memory sites ("engine.reserve");
    /// nullptr uses the (disarmed) global injector.
    fault::FaultInjector* injector = nullptr;
    /// On device OOM, evict the caching region and re-run the pipeline set
    /// once before giving up (the host then falls back to its CPU engine).
    bool retry_after_evict = true;
    /// Processing-region allocator override, forwarded to the buffer
    /// manager (fault tests inject a PressureMemoryResource here). Not owned.
    mem::MemoryResource* processing_override = nullptr;
    /// Debug race checking: model each pipeline as a simulated stream, its
    /// dependency edges as recorded/awaited events, and verify with a
    /// vector-clock happens-before relation that no two pipelines touch a
    /// shared resource (materialized result, cache entry) without an
    /// ordering edge. Defaults on when SIRIUS_RACE_CHECK=1 is set.
    bool race_check = sim::RaceCheckRequestedByEnv();
    /// When race_check finds a violation: abort with a diagnostic (true,
    /// the production-debug default) or record it (tests inspect counters).
    bool race_check_abort = true;
    /// Per-query tracing (spans over simulated time, exposed as
    /// host::QueryResult::profile). On by default; allocation-light — the
    /// span buffer is preallocated to `trace_capacity` and overflow spans
    /// are dropped (and counted) unless `detailed_trace` is set.
    bool tracing = true;
    /// Let the trace buffer grow without bound instead of dropping spans.
    bool detailed_trace = false;
    /// Preallocated span slots per query when not detailed.
    size_t trace_capacity = 8192;
  };

  /// \brief Memory-path recovery counters — a view over the metrics
  /// registry (snapshot; see stats()).
  struct Stats {
    uint64_t queries = 0;            ///< plans executed (attempts not counted)
    uint64_t oom_events = 0;         ///< OutOfMemory statuses seen from the device
    uint64_t evictions_under_pressure = 0;  ///< cache columns dropped to recover
    uint64_t pipeline_retries = 0;   ///< pipeline-set re-runs after eviction
    uint64_t spill_events = 0;       ///< §3.4 out-of-core spills (all tiers)
    uint64_t spill_host = 0;         ///< spill round trips to pinned host
    uint64_t spill_nvme = 0;         ///< spill round trips to simulated NVMe
    uint64_t tier_loss_retries = 0;  ///< re-runs after a mid-spill tier loss
    uint64_t race_violations = 0;    ///< hazards flagged by the race checker
    uint64_t deadline_cancels = 0;   ///< mid-pipeline ExecLimits cancellations
    uint64_t fused_stages = 0;       ///< fused single-pass stage executions
    uint64_t fusion_fallbacks = 0;   ///< fused compiles degraded to materialized
  };

  /// `host_db` supplies base tables (the paper: "Sirius relies on the host
  /// database to read data from disk", §3.2.3). Not owned.
  SiriusEngine(host::Database* host_db, Options options);
  ~SiriusEngine() override;

  /// The drop-in entry point: deserializes the Substrait plan, gates it on
  /// capabilities, and executes it on the device.
  Result<host::QueryResult> ExecuteSubstrait(const std::string& plan_text) override;

  /// Executes an already-deserialized plan.
  ///
  /// Re-entrant: any number of threads may execute plans against one engine
  /// concurrently. Pipeline tasks from every in-flight query share the
  /// global task queue (paper §3.2.2); the buffer manager and metrics are
  /// internally synchronized.
  Result<host::QueryResult> ExecutePlan(const plan::PlanPtr& plan);

  /// Executes a plan under per-query limits (deadline / cancel flag /
  /// memory reservation) — the serving-layer entry point.
  Result<host::QueryResult> ExecutePlan(const plan::PlanPtr& plan,
                                        const ExecLimits& limits);

  std::string name() const override { return "sirius"; }

  BufferManager& buffer_manager() { return buffer_manager_; }
  const Options& options() const { return options_; }

  /// The spill-tier hierarchy backing the §3.4 out-of-core path. Shared by
  /// every query on this engine; the serving layer publishes its gauges.
  mem::TierManager& tiers() { return tiers_; }
  const mem::TierManager& tiers() const { return tiers_; }

  /// Snapshot of the recovery counters. All fields are read under one lock,
  /// so the view is consistent even while pipelines are running.
  Stats stats() const;
  /// Rebases the counters so subsequent stats() start from zero. Safe to
  /// call concurrently with running queries: the underlying counters are
  /// monotone, so no increment is torn or lost.
  void ResetStats();

  /// The engine-lifetime metrics registry backing stats().
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Pipeline breakdown of the given plan (EXPLAIN-style, for tests).
  Result<std::string> ExplainPipelines(const plan::PlanPtr& plan) const;

  /// \brief Vector similarity search on the device (§3.4).
  ///
  /// Scores the LIST<FLOAT64> column `embedding_column` of `table_name`
  /// against `query` (embeddings cached in the caching region like any
  /// other column) and returns the top-k rows with a trailing
  /// "__score" FLOAT64 column. Charges the query's cost to `timeline`
  /// when provided.
  Result<format::TablePtr> VectorSearch(const std::string& table_name,
                                        const std::string& embedding_column,
                                        const std::vector<double>& query,
                                        size_t k,
                                        gdf::Metric metric = gdf::Metric::kCosine,
                                        sim::Timeline* timeline = nullptr);

 private:
  /// Cached registry handles for the hot counters (workers bump these
  /// lock-free; the registry owns the values).
  struct CounterRefs {
    obs::Counter* queries = nullptr;
    obs::Counter* oom_events = nullptr;
    obs::Counter* evictions_under_pressure = nullptr;
    obs::Counter* pipeline_retries = nullptr;
    obs::Counter* spill_events = nullptr;
    obs::Counter* spill_host = nullptr;
    obs::Counter* spill_nvme = nullptr;
    obs::Counter* tier_loss_retries = nullptr;
    obs::Counter* race_violations = nullptr;
    obs::Counter* deadline_cancels = nullptr;
    obs::Counter* fused_stages = nullptr;
    obs::Counter* fusion_fallbacks = nullptr;
  };

  fault::FaultInjector* injector() const {
    return options_.injector != nullptr ? options_.injector
                                        : fault::FaultInjector::Global();
  }

  host::Database* host_db_;
  Options options_;
  mem::TierManager tiers_;  ///< before buffer_manager_, which points at it
  BufferManager buffer_manager_;
  ThreadPool task_pool_;
  obs::MetricsRegistry metrics_;
  CounterRefs counters_;
};

}  // namespace sirius::engine
