#include "engine/capabilities.h"

namespace sirius::engine {

namespace {

Status CheckExpr(const Capabilities& caps, const expr::Expr& e) {
  if (!caps.udf && e.kind == expr::ExprKind::kUdf) {
    return Status::UnsupportedOnDevice("UDF '" + e.udf_name +
                                       "' not supported on device");
  }
  if (!caps.like && e.kind == expr::ExprKind::kFunction &&
      (e.fop == expr::FuncOp::kLike || e.fop == expr::FuncOp::kNotLike)) {
    return Status::UnsupportedOnDevice("LIKE not supported on device");
  }
  if (!caps.strings && e.type.is_string()) {
    return Status::UnsupportedOnDevice("string expressions not supported on device");
  }
  for (const auto& c : e.children) {
    SIRIUS_RETURN_NOT_OK(CheckExpr(caps, *c));
  }
  return Status::OK();
}

}  // namespace

Status Capabilities::Check(const plan::PlanNode& node) const {
  for (const auto& c : node.children) {
    SIRIUS_RETURN_NOT_OK(Check(*c));
  }
  if (!strings) {
    for (const auto& f : node.output_schema.fields()) {
      if (f.type.is_string()) {
        return Status::UnsupportedOnDevice("string columns not supported on device");
      }
    }
  }
  switch (node.kind) {
    case plan::PlanKind::kFilter:
      return CheckExpr(*this, *node.predicate);
    case plan::PlanKind::kProject:
      for (const auto& e : node.projections) {
        SIRIUS_RETURN_NOT_OK(CheckExpr(*this, *e));
      }
      return Status::OK();
    case plan::PlanKind::kJoin:
      if (!left_join && node.join_type == plan::JoinType::kLeft) {
        return Status::UnsupportedOnDevice("left join not supported on device");
      }
      if (!residual_join && node.residual != nullptr) {
        return Status::UnsupportedOnDevice(
            "non-equi join condition not supported on device");
      }
      if (node.residual != nullptr) return CheckExpr(*this, *node.residual);
      return Status::OK();
    case plan::PlanKind::kAggregate:
      for (const auto& a : node.aggregates) {
        if (!avg && a.func == plan::AggFunc::kAvg) {
          return Status::UnsupportedOnDevice("avg not supported on device");
        }
        if (!count_distinct && a.func == plan::AggFunc::kCountDistinct) {
          return Status::UnsupportedOnDevice(
              "count(distinct) not supported on device");
        }
      }
      return Status::OK();
    case plan::PlanKind::kSort:
      if (!sort) return Status::UnsupportedOnDevice("sort not supported on device");
      return Status::OK();
    default:
      return Status::OK();
  }
}

}  // namespace sirius::engine
