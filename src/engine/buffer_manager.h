// Sirius buffer manager (paper §3.2.3).
//
// Splits device memory into a pre-allocated *caching* region (input
// columns, hot across queries) and an RMM-pool *processing* region
// (intermediates). Caching is column-granular with LRU eviction, and cached
// data is held lightweight-compressed (paper §3.4 cites FastLanes-class
// compression as the capacity lever; we model its ratio). Also owns the
// format boundaries: the deep copy from the host database's format on cold
// load, and the uint64 (engine) <-> int32 (GDF/libcudf) row index
// conversion the paper calls out.

#pragma once

#include <list>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "format/encoding.h"
#include "format/table.h"
#include "gdf/context.h"
#include "mem/buffer.h"
#include "mem/memory_resource.h"
#include "mem/reservation.h"
#include "mem/tier.h"
#include "sim/cost_model.h"
#include "sim/interconnect.h"

namespace sirius::engine {

/// \brief Device-memory manager with caching/processing regions.
class BufferManager {
 public:
  struct Options {
    /// Modeled device memory, bytes (defaults from the device profile).
    uint64_t device_capacity_bytes = 92ull << 30;
    /// Fraction of device memory pre-allocated for data caching (§4.1: 50%).
    double cache_fraction = 0.5;
    /// Host<->device link used for cold loads.
    sim::Link host_link = sim::NvlinkC2c();
    /// A-priori compression-ratio estimate, used only for the out-of-core
    /// sizing pre-check; actual cache accounting uses the real encoded size.
    double compression_ratio = 2.5;
    /// Store cached columns lightweight-compressed (FOR-bitpack /
    /// dictionary, §3.4); scans decode on access at modeled bandwidth.
    bool compress_cache = true;
    /// Actual pool bytes backing the processing region allocator.
    uint64_t pool_bytes = 64ull << 20;
    /// When set, processing_resource() returns this instead of the built-in
    /// pool — the hook for injecting allocation pressure (fault tests) or an
    /// instrumented allocator. Not owned.
    mem::MemoryResource* processing_override = nullptr;
    /// Spill-tier hierarchy (not owned; may be null). Evictions under
    /// pressure are writebacks in a tiered system, so the manager reports
    /// them here for the per-tier gauges.
    mem::TierManager* tiers = nullptr;
  };

  explicit BufferManager(Options options);

  /// \brief Returns the requested columns of `name` as a device-resident
  /// table, loading missing columns from `host_table` over the host link.
  ///
  /// Cold columns charge transfer time to `sim`; hot columns charge nothing
  /// (the evaluation's "hot run" methodology, §4.1). When the caching
  /// region is full, least-recently-used columns are evicted; if the
  /// requested columns alone cannot fit, returns OutOfMemory (the
  /// out-of-core batch path or host fallback takes over, §3.4).
  Result<format::TablePtr> GetOrCacheColumns(const std::string& name,
                                             const format::TablePtr& host_table,
                                             const std::vector<int>& columns,
                                             const sim::SimContext& sim);

  /// Drops every cached column (cold-run ablations, OOM recovery). Returns
  /// the number of columns evicted. Evicting a pinned column is a diagnosed
  /// lifetime violation (a kernel may still be reading it).
  size_t EvictAll();

  /// True when column `col` of `name` is resident.
  bool IsCached(const std::string& name, int col = 0) const;

  /// \name Generation-stamped column handles (debug lifetime checking).
  ///
  /// Every cache entry carries a LifetimeTracker generation minted when the
  /// column is loaded and retired when it is evicted. A handle snapshots
  /// that generation; validating the handle after an eviction — even if the
  /// column was reloaded since — is a deterministic use-after-evict
  /// diagnostic rather than a silent read of recycled memory.
  /// @{

  /// A stamped reference to a resident cached column.
  struct ColumnHandle {
    std::string table;
    int column = 0;
    uint64_t generation = 0;
  };

  /// Handle for a currently-resident column; KeyError if not cached.
  Result<ColumnHandle> HandleFor(const std::string& name, int col) const;

  /// Validates that the handle's generation is still the resident one.
  /// Reports use-after-evict to the LifetimeTracker (which aborts in
  /// abort-on-violation mode) and returns ExecutionError.
  Status ValidateHandle(const ColumnHandle& handle) const;

  /// Pins a resident column against eviction (kernel in flight). KeyError
  /// if not cached. Balance with UnpinColumn.
  Status PinColumn(const std::string& name, int col);
  Status UnpinColumn(const std::string& name, int col);
  /// @}

  /// Modeled compressed bytes resident in the caching region.
  uint64_t cached_modeled_bytes() const;
  uint64_t cache_capacity_bytes() const { return cache_capacity_; }
  double compression_ratio() const { return options_.compression_ratio; }
  uint64_t processing_capacity_bytes() const { return processing_capacity_; }
  /// Number of LRU evictions performed (cache-pressure diagnostics).
  uint64_t eviction_count() const;

  /// Checks that an intermediate of `bytes` (modeled) fits the processing
  /// region; OutOfMemory otherwise (drives out-of-core / fallback, §3.4).
  Status ReserveProcessing(uint64_t modeled_bytes) const;

  /// Admission-time reservation budget over the processing region. The
  /// serving layer reserves a query's estimated working set here before
  /// dispatch and releases it on every exit path; the engine grows a
  /// query's reservation when an intermediate exceeds the estimate.
  mem::ReservationPool& processing_reservations() {
    return processing_reservations_;
  }

  /// The allocator backing the processing region (RMM pool equivalent), or
  /// the configured override.
  mem::MemoryResource* processing_resource() {
    return options_.processing_override != nullptr
               ? options_.processing_override
               : &pool_;
  }

  /// \brief uint64 engine row ids -> int32 GDF indices (libcudf uses int32;
  /// Sirius uses uint64 — §3.2.3). Charges the conversion copy to `sim`.
  static Result<std::vector<gdf::index_t>> ToGdfIndices(
      const std::vector<uint64_t>& rows, const sim::SimContext& sim);

  /// int32 GDF indices -> uint64 engine row ids.
  static std::vector<uint64_t> FromGdfIndices(
      const std::vector<gdf::index_t>& rows, const sim::SimContext& sim);

 private:
  struct CacheKey {
    std::string table;
    int column;
    bool operator<(const CacheKey& o) const {
      return table != o.table ? table < o.table : column < o.column;
    }
  };
  struct CacheEntry {
    /// Compressed representation (compress_cache) ...
    std::shared_ptr<format::EncodedColumn> encoded;
    /// ... or the plain column (compress_cache off).
    format::ColumnPtr plain;
    uint64_t modeled_bytes = 0;  ///< resident (compressed) bytes * data_scale
    std::list<CacheKey>::iterator lru_pos;
    /// LifetimeTracker generation minted at load, retired at eviction.
    uint64_t generation = 0;
    /// Hazard-tracker event recorded by the loading stream; readers on other
    /// streams wait on it (the ordering edge a real device inserts with a
    /// stream sync after the H2D copy). Only meaningful while the tracker
    /// whose id() == ready_tracker is the active one — entries outlive
    /// per-query trackers, and a stale EventId must not be waited on.
    sim::EventId ready_event = -1;
    uint64_t ready_tracker = 0;
    /// Pins held through PinColumn (eviction policy; the LifetimeTracker
    /// keeps the cross-checking count).
    int pins = 0;
  };

  /// Caller holds mu_. Evicts LRU entries (not in `pinned`, not pin-held)
  /// until `needed` fits. Returns false if impossible. `hazards` (may be
  /// null) forgets the evicted resources.
  bool EvictUntilFits(uint64_t needed, const std::vector<CacheKey>& pinned,
                      sim::HazardTracker* hazards);

  Options options_;
  uint64_t cache_capacity_;
  uint64_t processing_capacity_;
  mem::SystemMemoryResource device_mem_;
  mem::PoolMemoryResource pool_;
  mem::ReservationPool processing_reservations_;

  mutable std::mutex mu_;
  std::map<CacheKey, CacheEntry> cache_;
  std::list<CacheKey> lru_;  ///< front = most recent
  uint64_t cached_modeled_bytes_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace sirius::engine
