// Pipeline execution model (paper §3.2.2).
//
// A plan is divided into pipelines at pipeline breakers (join build sides,
// aggregations, sorts, distinct, limit, exchange). Each pipeline is a task
// in a global queue; idle CPU threads pull tasks and drive the GPU kernels.
// Within a pipeline execution is push-based: the executor owns all state
// and pushes data through stateless operator steps.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "opt/fusion.h"
#include "plan/plan.h"
#include "sim/device.h"

namespace sirius::engine {

enum class StepKind : uint8_t {
  kFilter,
  kProject,
  kProbeJoin,   ///< probe a materialized build side
  kCrossJoin,
};

/// One push-based operator step inside a pipeline.
struct Step {
  StepKind kind = StepKind::kFilter;
  const plan::PlanNode* node = nullptr;  ///< borrowed from the plan tree
  int build_pipeline = -1;               ///< kProbeJoin/kCrossJoin input
};

enum class SinkKind : uint8_t {
  kMaterialize,  ///< plain intermediate (e.g. a join build side)
  kAggregate,
  kSort,
  kDistinct,
  kLimit,
  kExchange,
};

/// \brief A pipeline: source -> steps -> sink.
struct Pipeline {
  int id = 0;
  /// Source: either a base-table scan node...
  const plan::PlanNode* source_scan = nullptr;
  /// ...or the materialized result of another pipeline.
  int source_pipeline = -1;

  std::vector<Step> steps;

  SinkKind sink = SinkKind::kMaterialize;
  const plan::PlanNode* sink_node = nullptr;

  /// Pipelines that must complete first (build sides + source).
  std::vector<int> dependencies;
};

/// \brief Breaks a plan into pipelines. The plan tree must outlive the
/// compiled pipelines (they borrow nodes).
class PipelineCompiler {
 public:
  /// Compiles `plan`; returns the id of the pipeline producing the final
  /// result. Pipelines are appended to `out` in creation order.
  static Result<int> Compile(const plan::PlanPtr& plan,
                             std::vector<Pipeline>* out);
};

/// How a pipeline's streaming chain executes.
enum class StageExec : uint8_t {
  kMaterialized,  ///< step-at-a-time: each step gathers its full output
  kFused,         ///< one pass per morsel: selection vectors between steps,
                  ///< sinks are the only materialization points
};

/// \brief Per-pipeline fusion plan, compiled alongside the pipeline set.
struct FusedStage {
  StageExec exec = StageExec::kMaterialized;
  /// Steps flowing through the fused pass (0 when materialized).
  int fused_ops = 0;
  /// Modeled seconds the fusion is priced to save (opt::PriceFusion).
  double credit_s = 0;
  /// HBM round-trip bytes the fusion skips (unscaled estimate).
  uint64_t saved_bytes = 0;
  /// Kernel launches skipped relative to the materialized chain.
  int saved_launches = 0;
  /// Why the stage stays materialized (empty when fused).
  std::string reason;
};

/// \brief Decides, per pipeline, whether its streaming chain runs fused.
///
/// Describes each chain abstractly (opt::FusionStepDesc, from planner
/// estimates) and lets opt::PriceFusion credit the skipped materializations
/// and launches. Chains the selection-vector machinery cannot express —
/// cross joins, ASOF joins, residual join predicates — stay materialized
/// with a recorded reason.
class FusedStageCompiler {
 public:
  /// One FusedStage per pipeline, indexed by pipeline id. With
  /// `fusion_enabled` false every stage is kMaterialized ("fusion disabled").
  static std::vector<FusedStage> Compile(const std::vector<Pipeline>& pipelines,
                                         const sim::DeviceProfile& device,
                                         double data_scale,
                                         bool fusion_enabled);
};

/// Human-readable dump of a pipeline set (tests, EXPLAIN ANALYZE).
std::string PipelinesToString(const std::vector<Pipeline>& pipelines);
/// As above, annotated with each pipeline's fused-stage decision.
std::string PipelinesToString(const std::vector<Pipeline>& pipelines,
                              const std::vector<FusedStage>* stages);

}  // namespace sirius::engine
