// Pipeline execution model (paper §3.2.2).
//
// A plan is divided into pipelines at pipeline breakers (join build sides,
// aggregations, sorts, distinct, limit, exchange). Each pipeline is a task
// in a global queue; idle CPU threads pull tasks and drive the GPU kernels.
// Within a pipeline execution is push-based: the executor owns all state
// and pushes data through stateless operator steps.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "plan/plan.h"

namespace sirius::engine {

enum class StepKind : uint8_t {
  kFilter,
  kProject,
  kProbeJoin,   ///< probe a materialized build side
  kCrossJoin,
};

/// One push-based operator step inside a pipeline.
struct Step {
  StepKind kind = StepKind::kFilter;
  const plan::PlanNode* node = nullptr;  ///< borrowed from the plan tree
  int build_pipeline = -1;               ///< kProbeJoin/kCrossJoin input
};

enum class SinkKind : uint8_t {
  kMaterialize,  ///< plain intermediate (e.g. a join build side)
  kAggregate,
  kSort,
  kDistinct,
  kLimit,
  kExchange,
};

/// \brief A pipeline: source -> steps -> sink.
struct Pipeline {
  int id = 0;
  /// Source: either a base-table scan node...
  const plan::PlanNode* source_scan = nullptr;
  /// ...or the materialized result of another pipeline.
  int source_pipeline = -1;

  std::vector<Step> steps;

  SinkKind sink = SinkKind::kMaterialize;
  const plan::PlanNode* sink_node = nullptr;

  /// Pipelines that must complete first (build sides + source).
  std::vector<int> dependencies;
};

/// \brief Breaks a plan into pipelines. The plan tree must outlive the
/// compiled pipelines (they borrow nodes).
class PipelineCompiler {
 public:
  /// Compiles `plan`; returns the id of the pipeline producing the final
  /// result. Pipelines are appended to `out` in creation order.
  static Result<int> Compile(const plan::PlanPtr& plan,
                             std::vector<Pipeline>* out);
};

/// Human-readable dump of a pipeline set (tests, EXPLAIN ANALYZE).
std::string PipelinesToString(const std::vector<Pipeline>& pipelines);

}  // namespace sirius::engine
