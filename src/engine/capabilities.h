// Capability gating for graceful CPU fallback (paper §3.2.2): Sirius checks
// a plan against the GPU engine's supported feature set before executing;
// anything unsupported routes the whole query back to the host database.

#pragma once

#include "common/status.h"
#include "plan/plan.h"

namespace sirius::engine {

/// \brief Feature switches of the GPU engine.
///
/// Everything defaults to supported; tests and the distributed mode (which
/// has narrower SQL coverage, §3.4) turn individual features off.
struct Capabilities {
  bool strings = true;
  bool count_distinct = true;
  bool left_join = true;
  bool residual_join = true;
  bool like = true;
  /// avg is unsupported in distributed Sirius (§3.4 "it does not support
  /// functions such as avg").
  bool avg = true;
  bool sort = true;
  /// Scalar UDFs run on the host CPU only until device-side UDFs land
  /// (§3.4), so plans containing them fall back by default.
  bool udf = false;

  /// OK when every operator/expression in the plan is supported; otherwise
  /// UnsupportedOnDevice with the offending feature named.
  Status Check(const plan::PlanNode& plan) const;
};

}  // namespace sirius::engine
