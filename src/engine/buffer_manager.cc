#include "engine/buffer_manager.h"

#include <algorithm>
#include <cstring>

#include "format/builder.h"

namespace sirius::engine {

using format::ColumnPtr;
using format::TablePtr;

BufferManager::BufferManager(Options options)
    : options_(options),
      cache_capacity_(static_cast<uint64_t>(
          static_cast<double>(options.device_capacity_bytes) *
          options.cache_fraction)),
      processing_capacity_(options.device_capacity_bytes - cache_capacity_),
      device_mem_(/*capacity=*/0, "device-hbm"),
      pool_(&device_mem_, options.pool_bytes),
      processing_reservations_(processing_capacity_, "processing-region") {}

namespace {

/// Deep copy of one column (host format -> Sirius caching region; both are
/// Arrow-derived, but crossing the host boundary on the cold path copies).
Result<ColumnPtr> DeepCopyColumn(const ColumnPtr& col) {
  format::ColumnBuilder b(col->type());
  b.Reserve(col->length());
  for (size_t i = 0; i < col->length(); ++i) {
    SIRIUS_RETURN_NOT_OK(b.AppendScalar(col->GetScalar(i)));
  }
  return b.Finish();
}

}  // namespace

bool BufferManager::EvictUntilFits(uint64_t needed,
                                   const std::vector<CacheKey>& pinned,
                                   sim::HazardTracker* hazards) {
  auto is_pinned = [&](const CacheKey& k) {
    for (const auto& p : pinned) {
      if (!(p < k) && !(k < p)) return true;
    }
    return cache_.find(k)->second.pins > 0;
  };
  while (cached_modeled_bytes_ + needed > cache_capacity_) {
    // Find the least-recently-used unpinned entry.
    auto victim = lru_.end();
    for (auto it = std::prev(lru_.end());; --it) {
      if (!is_pinned(*it)) {
        victim = it;
        break;
      }
      if (it == lru_.begin()) break;
    }
    if (victim == lru_.end()) return false;
    auto entry = cache_.find(*victim);
    // Retire the generation: any handle stamped with it is now stale, and
    // validating one reports use-after-evict.
    mem::LifetimeTracker::Global().OnFree(entry->second.generation);
    if (hazards != nullptr) {
      hazards->ReleaseResource(entry->second.generation);
    }
    cached_modeled_bytes_ -= entry->second.modeled_bytes;
    // In a tiered system a pressure eviction is a writeback (the column
    // re-loads from the tier below); account it for the per-tier gauges.
    if (options_.tiers != nullptr) {
      options_.tiers->NoteEvictionWriteback(entry->second.modeled_bytes);
    }
    cache_.erase(entry);
    lru_.erase(victim);
    ++evictions_;
  }
  return true;
}

Result<TablePtr> BufferManager::GetOrCacheColumns(
    const std::string& name, const TablePtr& host_table,
    const std::vector<int>& columns, const sim::SimContext& sim) {
  std::vector<CacheKey> keys;
  keys.reserve(columns.size());
  for (int c : columns) keys.push_back({name, c});

  std::vector<ColumnPtr> out;
  out.reserve(columns.size());
  format::Schema schema;
  uint64_t cold_bytes_raw = 0;

  size_t hits = 0;
  size_t misses = 0;

  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t evictions_before = evictions_;
  for (size_t i = 0; i < columns.size(); ++i) {
    const int c = columns[i];
    if (c < 0 || static_cast<size_t>(c) >= host_table->num_columns()) {
      return Status::IndexError("GetOrCacheColumns: bad column " +
                                std::to_string(c));
    }
    schema.AddField(host_table->schema().field(c));
    auto it = cache_.find(keys[i]);
    if (it == cache_.end()) {
      ++misses;
      // Cold column: load over the host link, encode into the caching
      // region (lightweight compression, §3.4).
      const ColumnPtr& host_col = host_table->column(c);
      const uint64_t raw = host_col->MemoryUsage();
      CacheEntry entry;
      if (options_.compress_cache) {
        SIRIUS_ASSIGN_OR_RETURN(format::EncodedColumn encoded,
                                format::Encode(host_col));
        entry.encoded = std::make_shared<format::EncodedColumn>(
            std::move(encoded));
        entry.modeled_bytes = static_cast<uint64_t>(
            static_cast<double>(entry.encoded->CompressedBytes()) *
            sim.data_scale);
      } else {
        SIRIUS_ASSIGN_OR_RETURN(entry.plain, DeepCopyColumn(host_col));
        entry.modeled_bytes = static_cast<uint64_t>(
            static_cast<double>(raw) * sim.data_scale);
      }
      if (!EvictUntilFits(entry.modeled_bytes, keys, sim.hazards)) {
        return Status::OutOfMemory(
            "caching region cannot fit column " + name + "." +
            std::to_string(c) + " (" + std::to_string(entry.modeled_bytes) +
            " resident bytes of " + std::to_string(cache_capacity_) + ")");
      }
      entry.generation = mem::LifetimeTracker::Global().OnAlloc(
          entry.modeled_bytes, name + "." + std::to_string(c) + " cache entry");
      // The load populates the entry on this stream; record the event that
      // readers on other streams must order after (the stream-sync a real
      // device inserts after the H2D copy + decompress).
      if (sim.hazards != nullptr) {
        sim.NoteWrite(entry.generation, "cold load " + name + "." +
                                            std::to_string(c));
        entry.ready_event = sim.hazards->RecordEvent(sim.stream);
        entry.ready_tracker = sim.hazards->id();
      }
      cold_bytes_raw += raw;
      lru_.push_front(keys[i]);
      entry.lru_pos = lru_.begin();
      cached_modeled_bytes_ += entry.modeled_bytes;
      it = cache_.emplace(keys[i], std::move(entry)).first;
    } else {
      // Hot hit: refresh LRU position.
      ++hits;
      lru_.erase(it->second.lru_pos);
      lru_.push_front(keys[i]);
      it->second.lru_pos = lru_.begin();
      mem::LifetimeTracker::Global().OnAccess(
          it->second.generation, "hot read " + name + "." + std::to_string(c));
      if (sim.hazards != nullptr) {
        // Only wait on the ready event if it belongs to the active tracker;
        // entries loaded by a previous query are ordered by the query
        // boundary itself (the runner drains all pipelines between runs).
        if (it->second.ready_event >= 0 &&
            it->second.ready_tracker == sim.hazards->id()) {
          sim.hazards->StreamWaitEvent(sim.stream, it->second.ready_event);
        }
        sim.NoteRead(it->second.generation,
                     "hot read " + name + "." + std::to_string(c));
      }
    }

    const CacheEntry& entry = it->second;
    if (entry.encoded != nullptr) {
      // Decode on access: reads the compressed bytes at device bandwidth
      // plus a per-value unpack op (FastLanes-style in-register decode).
      SIRIUS_ASSIGN_OR_RETURN(ColumnPtr decoded, format::Decode(*entry.encoded));
      sim::KernelCost cost;
      cost.seq_bytes = entry.encoded->CompressedBytes() + decoded->MemoryUsage();
      cost.rows = decoded->length();
      cost.ops_per_row = 2.0;
      sim.Charge(sim::OpCategory::kScan, cost);
      out.push_back(std::move(decoded));
    } else {
      sim::KernelCost cost;
      cost.seq_bytes = entry.plain->MemoryUsage();
      cost.rows = entry.plain->length();
      sim.Charge(sim::OpCategory::kScan, cost);
      out.push_back(entry.plain);
    }
  }
  if (cold_bytes_raw > 0) {
    // Cold-path host->device transfer, bracketed by a "buffer" span so a
    // trace distinguishes reloads from cache hits (hits emit no span).
    obs::Span load_span(sim.trace, sim.track, "load:" + name, "buffer",
                        sim.TraceClock());
    sim.ChargeSeconds(
        sim::OpCategory::kOther,
        options_.host_link.TransferSeconds(cold_bytes_raw, sim.data_scale));
    load_span.SetAttr("bytes", static_cast<double>(cold_bytes_raw));
    load_span.SetAttr("columns", static_cast<double>(misses));
  }
  if (sim.trace != nullptr) {
    if (hits > 0) sim.trace->AddCounter("buffer.hits", hits);
    if (misses > 0) sim.trace->AddCounter("buffer.misses", misses);
    if (evictions_ > evictions_before) {
      sim.trace->AddCounter("buffer.evictions", evictions_ - evictions_before);
    }
  }
  return format::Table::Make(std::move(schema), std::move(out));
}

size_t BufferManager::EvictAll() {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t evicted = cache_.size();
  for (const auto& [key, entry] : cache_) {
    // OnFree flags free-while-pinned when a kernel still holds the column.
    mem::LifetimeTracker::Global().OnFree(entry.generation);
  }
  cache_.clear();
  lru_.clear();
  cached_modeled_bytes_ = 0;
  evictions_ += evicted;
  return evicted;
}

Result<BufferManager::ColumnHandle> BufferManager::HandleFor(
    const std::string& name, int col) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find({name, col});
  if (it == cache_.end()) {
    return Status::KeyError("HandleFor: " + name + "." + std::to_string(col) +
                            " is not cached");
  }
  return ColumnHandle{name, col, it->second.generation};
}

Status BufferManager::ValidateHandle(const ColumnHandle& handle) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find({handle.table, handle.column});
    if (it != cache_.end() && it->second.generation == handle.generation) {
      return Status::OK();
    }
  }
  // Stale: the column was evicted (and possibly reloaded under a new
  // generation). Report outside mu_ — the tracker may abort.
  mem::LifetimeTracker::Global().OnAccess(
      handle.generation, "handle " + handle.table + "." +
                             std::to_string(handle.column));
  return Status::ExecutionError(
      "use-after-evict: " + handle.table + "." +
      std::to_string(handle.column) + " generation " +
      std::to_string(handle.generation) + " is no longer resident");
}

Status BufferManager::PinColumn(const std::string& name, int col) {
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find({name, col});
    if (it == cache_.end()) {
      return Status::KeyError("PinColumn: " + name + "." +
                              std::to_string(col) + " is not cached");
    }
    ++it->second.pins;
    generation = it->second.generation;
  }
  mem::LifetimeTracker::Global().OnPin(generation);
  return Status::OK();
}

Status BufferManager::UnpinColumn(const std::string& name, int col) {
  uint64_t generation = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find({name, col});
    if (it == cache_.end() || it->second.pins <= 0) {
      return Status::KeyError("UnpinColumn: " + name + "." +
                              std::to_string(col) + " has no pin to release");
    }
    --it->second.pins;
    generation = it->second.generation;
  }
  mem::LifetimeTracker::Global().OnUnpin(generation);
  return Status::OK();
}

bool BufferManager::IsCached(const std::string& name, int col) const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.count({name, col}) > 0;
}

uint64_t BufferManager::cached_modeled_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cached_modeled_bytes_;
}

uint64_t BufferManager::eviction_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

Status BufferManager::ReserveProcessing(uint64_t modeled_bytes) const {
  if (modeled_bytes > processing_capacity_) {
    return Status::OutOfMemory(
        "processing region: intermediate of " + std::to_string(modeled_bytes) +
        " bytes exceeds " + std::to_string(processing_capacity_));
  }
  return Status::OK();
}

Result<std::vector<gdf::index_t>> BufferManager::ToGdfIndices(
    const std::vector<uint64_t>& rows, const sim::SimContext& sim) {
  std::vector<gdf::index_t> out(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] > static_cast<uint64_t>(INT32_MAX)) {
      return Status::Invalid("row index " + std::to_string(rows[i]) +
                             " exceeds the GDF int32 index range");
    }
    out[i] = static_cast<gdf::index_t>(rows[i]);
  }
  // The uint64->int32 narrowing is a real copy in Sirius (§3.2.3).
  sim::KernelCost cost;
  cost.seq_bytes = rows.size() * (sizeof(uint64_t) + sizeof(gdf::index_t));
  cost.rows = rows.size();
  sim.Charge(sim::OpCategory::kOther, cost);
  return out;
}

std::vector<uint64_t> BufferManager::FromGdfIndices(
    const std::vector<gdf::index_t>& rows, const sim::SimContext& sim) {
  std::vector<uint64_t> out(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) out[i] = static_cast<uint64_t>(rows[i]);
  sim::KernelCost cost;
  cost.seq_bytes = rows.size() * (sizeof(uint64_t) + sizeof(gdf::index_t));
  cost.rows = rows.size();
  sim.Charge(sim::OpCategory::kOther, cost);
  return out;
}

}  // namespace sirius::engine
