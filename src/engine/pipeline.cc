#include "engine/pipeline.h"

#include <sstream>

namespace sirius::engine {

using plan::PlanKind;
using plan::PlanNode;
using plan::PlanPtr;

namespace {

bool IsBreaker(const PlanNode& node) {
  switch (node.kind) {
    case PlanKind::kAggregate:
    case PlanKind::kSort:
    case PlanKind::kDistinct:
    case PlanKind::kLimit:
    case PlanKind::kExchange:
      return true;
    default:
      return false;
  }
}

class Compiler {
 public:
  explicit Compiler(std::vector<Pipeline>* out) : out_(out) {}

  /// Returns the id of a pipeline that materializes `node`'s output.
  Result<int> Materialize(const PlanNode* node) {
    Pipeline p;
    p.id = static_cast<int>(out_->size());
    out_->push_back(std::move(p));
    const int id = out_->back().id;

    if (IsBreaker(*node)) {
      SIRIUS_RETURN_NOT_OK(BuildInto(node->children[0].get(), id));
      Pipeline& self = (*out_)[id];
      self.sink_node = node;
      switch (node->kind) {
        case PlanKind::kAggregate:
          self.sink = SinkKind::kAggregate;
          break;
        case PlanKind::kSort:
          self.sink = SinkKind::kSort;
          break;
        case PlanKind::kDistinct:
          self.sink = SinkKind::kDistinct;
          break;
        case PlanKind::kLimit:
          self.sink = SinkKind::kLimit;
          break;
        case PlanKind::kExchange:
          self.sink = SinkKind::kExchange;
          break;
        default:
          return Status::Internal("not a breaker");
      }
      return id;
    }
    SIRIUS_RETURN_NOT_OK(BuildInto(node, id));
    (*out_)[id].sink = SinkKind::kMaterialize;
    (*out_)[id].sink_node = node;
    return id;
  }

 private:
  /// Appends `node`'s streaming chain into pipeline `pid` (recursing into
  /// the streaming child first; breakers/scans terminate the walk).
  Status BuildInto(const PlanNode* node, int pid) {
    switch (node->kind) {
      case PlanKind::kTableScan:
        (*out_)[pid].source_scan = node;
        return Status::OK();
      case PlanKind::kFilter: {
        SIRIUS_RETURN_NOT_OK(BuildInto(node->children[0].get(), pid));
        (*out_)[pid].steps.push_back({StepKind::kFilter, node, -1});
        return Status::OK();
      }
      case PlanKind::kProject: {
        SIRIUS_RETURN_NOT_OK(BuildInto(node->children[0].get(), pid));
        (*out_)[pid].steps.push_back({StepKind::kProject, node, -1});
        return Status::OK();
      }
      case PlanKind::kJoin: {
        // The build (right) side becomes its own pipeline; the probe side
        // continues the current one.
        SIRIUS_ASSIGN_OR_RETURN(int build, Materialize(node->children[1].get()));
        SIRIUS_RETURN_NOT_OK(BuildInto(node->children[0].get(), pid));
        Pipeline& p = (*out_)[pid];
        p.steps.push_back({node->join_type == plan::JoinType::kCross
                               ? StepKind::kCrossJoin
                               : StepKind::kProbeJoin,
                           node, build});
        p.dependencies.push_back(build);
        return Status::OK();
      }
      default: {
        // Breaker in the middle of a chain: it becomes this pipeline's
        // source.
        SIRIUS_ASSIGN_OR_RETURN(int src, Materialize(node));
        Pipeline& p = (*out_)[pid];
        p.source_pipeline = src;
        p.dependencies.push_back(src);
        return Status::OK();
      }
    }
  }

  std::vector<Pipeline>* out_;
};

}  // namespace

Result<int> PipelineCompiler::Compile(const PlanPtr& plan,
                                      std::vector<Pipeline>* out) {
  Compiler compiler(out);
  return compiler.Materialize(plan.get());
}

std::string PipelinesToString(const std::vector<Pipeline>& pipelines) {
  std::ostringstream os;
  for (const auto& p : pipelines) {
    os << "pipeline " << p.id << ": ";
    if (p.source_scan != nullptr) {
      os << "scan(" << p.source_scan->table_name << ")";
    } else if (p.source_pipeline >= 0) {
      os << "from(p" << p.source_pipeline << ")";
    } else {
      os << "<no source>";
    }
    for (const auto& s : p.steps) {
      switch (s.kind) {
        case StepKind::kFilter:
          os << " -> filter";
          break;
        case StepKind::kProject:
          os << " -> project";
          break;
        case StepKind::kProbeJoin:
          os << " -> probe(p" << s.build_pipeline << ", "
             << plan::JoinTypeName(s.node->join_type) << ")";
          break;
        case StepKind::kCrossJoin:
          os << " -> cross(p" << s.build_pipeline << ")";
          break;
      }
    }
    switch (p.sink) {
      case SinkKind::kMaterialize:
        os << " => materialize";
        break;
      case SinkKind::kAggregate:
        os << " => aggregate";
        break;
      case SinkKind::kSort:
        os << " => sort";
        break;
      case SinkKind::kDistinct:
        os << " => distinct";
        break;
      case SinkKind::kLimit:
        os << " => limit";
        break;
      case SinkKind::kExchange:
        os << " => exchange";
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace sirius::engine
