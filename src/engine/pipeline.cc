#include "engine/pipeline.h"

#include <sstream>

namespace sirius::engine {

using plan::PlanKind;
using plan::PlanNode;
using plan::PlanPtr;

namespace {

bool IsBreaker(const PlanNode& node) {
  switch (node.kind) {
    case PlanKind::kAggregate:
    case PlanKind::kSort:
    case PlanKind::kDistinct:
    case PlanKind::kLimit:
    case PlanKind::kExchange:
      return true;
    default:
      return false;
  }
}

class Compiler {
 public:
  explicit Compiler(std::vector<Pipeline>* out) : out_(out) {}

  /// Returns the id of a pipeline that materializes `node`'s output.
  Result<int> Materialize(const PlanNode* node) {
    Pipeline p;
    p.id = static_cast<int>(out_->size());
    out_->push_back(std::move(p));
    const int id = out_->back().id;

    if (IsBreaker(*node)) {
      SIRIUS_RETURN_NOT_OK(BuildInto(node->children[0].get(), id));
      Pipeline& self = (*out_)[id];
      self.sink_node = node;
      switch (node->kind) {
        case PlanKind::kAggregate:
          self.sink = SinkKind::kAggregate;
          break;
        case PlanKind::kSort:
          self.sink = SinkKind::kSort;
          break;
        case PlanKind::kDistinct:
          self.sink = SinkKind::kDistinct;
          break;
        case PlanKind::kLimit:
          self.sink = SinkKind::kLimit;
          break;
        case PlanKind::kExchange:
          self.sink = SinkKind::kExchange;
          break;
        default:
          return Status::Internal("not a breaker");
      }
      return id;
    }
    SIRIUS_RETURN_NOT_OK(BuildInto(node, id));
    (*out_)[id].sink = SinkKind::kMaterialize;
    (*out_)[id].sink_node = node;
    return id;
  }

 private:
  /// Appends `node`'s streaming chain into pipeline `pid` (recursing into
  /// the streaming child first; breakers/scans terminate the walk).
  Status BuildInto(const PlanNode* node, int pid) {
    switch (node->kind) {
      case PlanKind::kTableScan:
        (*out_)[pid].source_scan = node;
        return Status::OK();
      case PlanKind::kFilter: {
        SIRIUS_RETURN_NOT_OK(BuildInto(node->children[0].get(), pid));
        (*out_)[pid].steps.push_back({StepKind::kFilter, node, -1});
        return Status::OK();
      }
      case PlanKind::kProject: {
        SIRIUS_RETURN_NOT_OK(BuildInto(node->children[0].get(), pid));
        (*out_)[pid].steps.push_back({StepKind::kProject, node, -1});
        return Status::OK();
      }
      case PlanKind::kJoin: {
        // The build (right) side becomes its own pipeline; the probe side
        // continues the current one.
        SIRIUS_ASSIGN_OR_RETURN(int build, Materialize(node->children[1].get()));
        SIRIUS_RETURN_NOT_OK(BuildInto(node->children[0].get(), pid));
        Pipeline& p = (*out_)[pid];
        p.steps.push_back({node->join_type == plan::JoinType::kCross
                               ? StepKind::kCrossJoin
                               : StepKind::kProbeJoin,
                           node, build});
        p.dependencies.push_back(build);
        return Status::OK();
      }
      default: {
        // Breaker in the middle of a chain: it becomes this pipeline's
        // source.
        SIRIUS_ASSIGN_OR_RETURN(int src, Materialize(node));
        Pipeline& p = (*out_)[pid];
        p.source_pipeline = src;
        p.dependencies.push_back(src);
        return Status::OK();
      }
    }
  }

  std::vector<Pipeline>* out_;
};

}  // namespace

Result<int> PipelineCompiler::Compile(const PlanPtr& plan,
                                      std::vector<Pipeline>* out) {
  Compiler compiler(out);
  return compiler.Materialize(plan.get());
}

namespace {

/// Nominal estimated width of one output row of `schema`, in bytes.
/// Variable-width fields (strings) count a nominal 16 bytes.
double EstimatedRowWidth(const format::Schema& schema) {
  double width = 0;
  for (size_t f = 0; f < schema.num_fields(); ++f) {
    const int w = schema.field(f).type.byte_width();
    width += w > 0 ? w : 16;
  }
  return width;
}

}  // namespace

std::vector<FusedStage> FusedStageCompiler::Compile(
    const std::vector<Pipeline>& pipelines, const sim::DeviceProfile& device,
    double data_scale, bool fusion_enabled) {
  std::vector<FusedStage> out(pipelines.size());
  for (const auto& p : pipelines) {
    FusedStage& stage = out[p.id];
    if (!fusion_enabled) {
      stage.reason = "fusion disabled";
      continue;
    }
    if (p.steps.empty()) {
      stage.reason = "no streaming steps";
      continue;
    }
    // Exclusions: chains the selection-vector flow cannot express.
    bool excluded = false;
    for (const auto& s : p.steps) {
      if (s.kind == StepKind::kCrossJoin) {
        stage.reason = "cross join";
        excluded = true;
        break;
      }
      if (s.kind == StepKind::kProbeJoin) {
        if (s.node->join_type == plan::JoinType::kAsof) {
          stage.reason = "asof join";
          excluded = true;
          break;
        }
        if (s.node->residual != nullptr) {
          stage.reason = "residual join predicate";
          excluded = true;
          break;
        }
      }
    }
    if (excluded) continue;

    std::vector<opt::FusionStepDesc> descs;
    for (const auto& s : p.steps) {
      opt::FusionStepDesc d;
      switch (s.kind) {
        case StepKind::kFilter:
          d.kind = opt::FusedOpKind::kFilter;
          // Materialized filter pays mask compaction plus a full gather.
          d.materialize_launches = 2;
          break;
        case StepKind::kProject:
          d.kind = opt::FusedOpKind::kProject;
          // Projected columns are compact either way; only the dispatch
          // differs.
          d.materialize_launches = 1;
          break;
        case StepKind::kProbeJoin:
        case StepKind::kCrossJoin:
          d.kind = opt::FusedOpKind::kProbe;
          // Materialized probe gathers both sides of the join output.
          d.materialize_launches = 2;
          break;
      }
      d.est_rows_out = s.node->estimated_rows;
      if (d.est_rows_out >= 0) {
        d.est_bytes_out =
            d.est_rows_out * EstimatedRowWidth(s.node->output_schema);
      }
      descs.push_back(d);
    }
    const opt::FusionDecision decision =
        opt::PriceFusion(device, descs, data_scale);
    if (!decision.fuse) {
      stage.reason = "not priced profitable";
      continue;
    }
    stage.exec = StageExec::kFused;
    stage.fused_ops = static_cast<int>(p.steps.size());
    stage.credit_s = decision.credit_s;
    stage.saved_bytes = decision.saved_bytes;
    stage.saved_launches = decision.saved_launches;
  }
  return out;
}

std::string PipelinesToString(const std::vector<Pipeline>& pipelines) {
  return PipelinesToString(pipelines, nullptr);
}

std::string PipelinesToString(const std::vector<Pipeline>& pipelines,
                              const std::vector<FusedStage>* stages) {
  std::ostringstream os;
  for (const auto& p : pipelines) {
    os << "pipeline " << p.id << ": ";
    if (p.source_scan != nullptr) {
      os << "scan(" << p.source_scan->table_name << ")";
    } else if (p.source_pipeline >= 0) {
      os << "from(p" << p.source_pipeline << ")";
    } else {
      os << "<no source>";
    }
    for (const auto& s : p.steps) {
      switch (s.kind) {
        case StepKind::kFilter:
          os << " -> filter";
          break;
        case StepKind::kProject:
          os << " -> project";
          break;
        case StepKind::kProbeJoin:
          os << " -> probe(p" << s.build_pipeline << ", "
             << plan::JoinTypeName(s.node->join_type) << ")";
          break;
        case StepKind::kCrossJoin:
          os << " -> cross(p" << s.build_pipeline << ")";
          break;
      }
    }
    switch (p.sink) {
      case SinkKind::kMaterialize:
        os << " => materialize";
        break;
      case SinkKind::kAggregate:
        os << " => aggregate";
        break;
      case SinkKind::kSort:
        os << " => sort";
        break;
      case SinkKind::kDistinct:
        os << " => distinct";
        break;
      case SinkKind::kLimit:
        os << " => limit";
        break;
      case SinkKind::kExchange:
        os << " => exchange";
        break;
    }
    if (stages != nullptr && static_cast<size_t>(p.id) < stages->size()) {
      const FusedStage& st = (*stages)[p.id];
      if (st.exec == StageExec::kFused) {
        os << "  [fused ops=" << st.fused_ops
           << " saved_launches=" << st.saved_launches << "]";
      } else {
        os << "  [materialized: " << st.reason << "]";
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace sirius::engine
