#include "mem/buffer.h"

namespace sirius::mem {

Result<Buffer> Buffer::Allocate(size_t size, MemoryResource* resource) {
  if (resource == nullptr) resource = DefaultResource();
  Buffer b;
  b.resource_ = resource;
  b.size_ = size;
  if (size > 0) {
    SIRIUS_RETURN_NOT_OK(resource->Allocate(size, &b.data_));
  }
  return b;
}

Result<Buffer> Buffer::AllocateZeroed(size_t size, MemoryResource* resource) {
  SIRIUS_ASSIGN_OR_RETURN(Buffer b, Allocate(size, resource));
  if (size > 0) std::memset(b.data(), 0, size);
  return b;
}

}  // namespace sirius::mem
