#include "mem/buffer.h"

#include <cstdlib>

namespace sirius::mem {

const char* LifetimeViolationKindName(LifetimeTracker::ViolationKind kind) {
  switch (kind) {
    case LifetimeTracker::ViolationKind::kUseAfterFree:
      return "use-after-free";
    case LifetimeTracker::ViolationKind::kDoubleFree:
      return "double-free";
    case LifetimeTracker::ViolationKind::kFreeWhilePinned:
      return "free-while-pinned";
    case LifetimeTracker::ViolationKind::kUnbalancedUnpin:
      return "unbalanced unpin";
    case LifetimeTracker::ViolationKind::kUnknownGeneration:
      return "unknown generation";
  }
  return "?";
}

LifetimeTracker& LifetimeTracker::Global() {
  static LifetimeTracker* tracker = [] {
    auto* t = new LifetimeTracker();
    const char* v = std::getenv("SIRIUS_RACE_CHECK");
    t->set_enabled(v != nullptr && v[0] != '\0' && v[0] != '0');
    return t;
  }();
  return *tracker;
}

bool LifetimeTracker::enabled() const {
  std::unique_lock<std::mutex> lock(mu_);
  return enabled_;
}

void LifetimeTracker::set_abort_on_violation(bool abort_on_violation) {
  std::unique_lock<std::mutex> lock(mu_);
  abort_on_violation_ = abort_on_violation;
}

void LifetimeTracker::Report(std::unique_lock<std::mutex>& lock, Violation v) {
  std::string msg = std::string("LifetimeTracker: ") +
                    LifetimeViolationKindName(v.kind) + " of generation " +
                    std::to_string(v.generation) +
                    (v.detail.empty() ? "" : ": " + v.detail);
  violations_.push_back(std::move(v));
  if (abort_on_violation_) {
    lock.unlock();
    internal::AbortWithMessage(__FILE__, __LINE__, msg);
  }
}

void LifetimeTracker::set_enabled(bool enabled) {
  std::unique_lock<std::mutex> lock(mu_);
  if (enabled && !enabled_) {
    // Generations minted before enabling were never registered; retiring or
    // accessing them must not be misread as double-free / use-after-free.
    enabled_since_ = next_generation_;
  }
  enabled_ = enabled;
}

uint64_t LifetimeTracker::OnAlloc(uint64_t bytes, const std::string& what) {
  std::unique_lock<std::mutex> lock(mu_);
  // Generations are minted even when disabled: callers use them as unique
  // resource ids (hazard-tracker keys) independent of lifetime checking.
  const uint64_t gen = next_generation_++;
  if (enabled_) live_.emplace(gen, Entry{bytes, 0, what});
  return gen;
}

void LifetimeTracker::OnFree(uint64_t generation) {
  if (generation == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  if (!enabled_ || generation < enabled_since_) return;
  auto it = live_.find(generation);
  if (it == live_.end()) {
    Violation v;
    v.kind = ViolationKind::kDoubleFree;
    v.generation = generation;
    v.detail = "generation already retired (or never allocated)";
    Report(lock, std::move(v));
    return;
  }
  if (it->second.pins > 0) {
    Violation v;
    v.kind = ViolationKind::kFreeWhilePinned;
    v.generation = generation;
    v.detail = "\"" + it->second.what + "\" freed with " +
               std::to_string(it->second.pins) + " pin(s) outstanding";
    Report(lock, std::move(v));
    // Fall through and retire anyway (the memory really is going away).
  }
  live_.erase(generation);
}

void LifetimeTracker::OnPin(uint64_t generation) {
  if (generation == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  if (!enabled_ || generation < enabled_since_) return;
  auto it = live_.find(generation);
  if (it == live_.end()) {
    Violation v;
    v.kind = ViolationKind::kUnknownGeneration;
    v.generation = generation;
    v.detail = "pin of a generation that is not live";
    Report(lock, std::move(v));
    return;
  }
  ++it->second.pins;
}

void LifetimeTracker::OnUnpin(uint64_t generation) {
  if (generation == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  if (!enabled_ || generation < enabled_since_) return;
  auto it = live_.find(generation);
  if (it == live_.end() || it->second.pins <= 0) {
    Violation v;
    v.kind = ViolationKind::kUnbalancedUnpin;
    v.generation = generation;
    v.detail = "unpin without a live matching pin";
    Report(lock, std::move(v));
    return;
  }
  --it->second.pins;
}

void LifetimeTracker::OnAccess(uint64_t generation, const std::string& what) {
  if (generation == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  if (!enabled_ || generation < enabled_since_) return;
  if (live_.find(generation) == live_.end()) {
    Violation v;
    v.kind = ViolationKind::kUseAfterFree;
    v.generation = generation;
    v.detail = "\"" + what + "\" accessed a retired generation (evicted or "
               "freed since the handle was taken)";
    Report(lock, std::move(v));
  }
}

bool LifetimeTracker::IsLive(uint64_t generation) const {
  if (generation == 0) return true;
  std::unique_lock<std::mutex> lock(mu_);
  if (!enabled_ || generation < enabled_since_) return true;
  return live_.find(generation) != live_.end();
}

size_t LifetimeTracker::violation_count() const {
  std::unique_lock<std::mutex> lock(mu_);
  return violations_.size();
}

std::vector<LifetimeTracker::Violation> LifetimeTracker::violations() const {
  std::unique_lock<std::mutex> lock(mu_);
  return violations_;
}

size_t LifetimeTracker::live_count() const {
  std::unique_lock<std::mutex> lock(mu_);
  return live_.size();
}

void LifetimeTracker::Reset() {
  std::unique_lock<std::mutex> lock(mu_);
  live_.clear();
  violations_.clear();
  enabled_since_ = next_generation_;
}

Result<Buffer> Buffer::Allocate(size_t size, MemoryResource* resource) {
  if (resource == nullptr) resource = DefaultResource();
  Buffer b;
  b.resource_ = resource;
  b.size_ = size;
  if (size > 0) {
    SIRIUS_RETURN_NOT_OK(resource->Allocate(size, &b.data_));
    b.generation_ = LifetimeTracker::Global().OnAlloc(
        size, "Buffer(" + resource->name() + ")");
  }
  return b;
}

Result<Buffer> Buffer::AllocateZeroed(size_t size, MemoryResource* resource) {
  SIRIUS_ASSIGN_OR_RETURN(Buffer b, Allocate(size, resource));
  if (size > 0) std::memset(b.data(), 0, size);
  return b;
}

}  // namespace sirius::mem
