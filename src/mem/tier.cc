#include "mem/tier.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "mem/buffer.h"

namespace sirius::mem {

SIRIUS_FAULT_DEFINE_SITE(kSiteSpillWrite, "mem.spill.write");
SIRIUS_FAULT_DEFINE_SITE(kSiteSpillRead, "mem.spill.read");
SIRIUS_FAULT_DEFINE_SITE(kSiteTierLost, "mem.tier.lost");

namespace {

/// Transient reads are retried in place up to this many attempts; the data
/// has exactly one home, so unlike writes there is no tier to fall back to.
constexpr int kMaxReadAttempts = 4;

std::atomic<uint64_t> g_pinned_host_in_use{0};

}  // namespace

const char* TierName(Tier t) {
  switch (t) {
    case Tier::kHost:
      return "host";
    case Tier::kNvme:
      return "nvme";
  }
  return "unknown";
}

uint64_t PinnedHostAlloc(uint64_t bytes) {
  return g_pinned_host_in_use.fetch_add(bytes, std::memory_order_relaxed) +
         bytes;
}

void PinnedHostFree(uint64_t bytes) {
  g_pinned_host_in_use.fetch_sub(bytes, std::memory_order_relaxed);
}

uint64_t PinnedHostInUse() {
  return g_pinned_host_in_use.load(std::memory_order_relaxed);
}

TierManager::TierManager(Options options, fault::FaultInjector* injector)
    : options_(std::move(options)),
      injector_(injector != nullptr ? injector
                                    : fault::FaultInjector::Global()) {}

uint64_t TierManager::capacity(Tier t) const {
  return t == Tier::kHost ? options_.host_capacity_bytes
                          : options_.nvme_capacity_bytes;
}

double TierManager::WriteSeconds(Tier t, uint64_t bytes) const {
  double s = options_.host_link.TransferSeconds(bytes);
  if (t == Tier::kNvme) s += options_.nvme_link.TransferSeconds(bytes);
  return s;
}

double TierManager::ReadSeconds(Tier t, uint64_t bytes) const {
  return WriteSeconds(t, bytes);  // symmetric links
}

void TierManager::MarkLost(Tier tier) {
  std::lock_guard<std::mutex> lock(mu_);
  MarkLostLocked(tier);
}

void TierManager::MarkLostLocked(Tier tier) {
  TierState& ts = tiers_[static_cast<int>(tier)];
  if (ts.lost) return;
  ts.lost = true;
  ++ts.losses;
  // Void every resident extent: its bytes are gone with the tier. Balance
  // the session's transfer pin before retiring so only extents some other
  // holder still pins (staged data borrowed by a kernel) get flagged.
  auto& tracker = LifetimeTracker::Global();
  for (auto it = extents_.begin(); it != extents_.end();) {
    if (it->second.tier != tier) {
      ++it;
      continue;
    }
    ReleaseBytesLocked(tier, it->second.bytes);
    tracker.OnUnpin(it->first);
    tracker.OnFree(it->first);
    it = extents_.erase(it);
  }
}

bool TierManager::lost(Tier t) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tiers_[static_cast<int>(t)].lost;
}

void TierManager::ReviveLostTiers() {
  std::lock_guard<std::mutex> lock(mu_);
  for (TierState& ts : tiers_) ts.lost = false;
}

TierManager::TierStats TierManager::stats(Tier t) const {
  std::lock_guard<std::mutex> lock(mu_);
  const TierState& ts = tiers_[static_cast<int>(t)];
  TierStats out;
  out.capacity_bytes = capacity(t);
  out.used_bytes = ts.used;
  out.high_water_bytes = ts.high_water;
  out.spill_writes = ts.spill_writes;
  out.spill_reads = ts.spill_reads;
  out.spilled_bytes = ts.spilled_bytes;
  out.write_retries = ts.write_retries;
  out.read_retries = ts.read_retries;
  out.losses = ts.losses;
  out.lost = ts.lost;
  return out;
}

void TierManager::NoteEvictionWriteback(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++eviction_writebacks_;
  eviction_writeback_bytes_ += bytes;
}

uint64_t TierManager::eviction_writebacks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return eviction_writebacks_;
}

void TierManager::PublishGauges(obs::MetricsRegistry* metrics) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < kTierCount; ++i) {
    const Tier t = static_cast<Tier>(i);
    const TierState& ts = tiers_[i];
    const std::string p = std::string("mem.tier.") + TierName(t) + ".";
    metrics->SetGauge(p + "capacity_bytes", static_cast<double>(capacity(t)));
    metrics->SetGauge(p + "used_bytes", static_cast<double>(ts.used));
    metrics->SetGauge(p + "high_water_bytes",
                      static_cast<double>(ts.high_water));
    metrics->SetGauge(p + "spill_writes", static_cast<double>(ts.spill_writes));
    metrics->SetGauge(p + "spill_reads", static_cast<double>(ts.spill_reads));
    metrics->SetGauge(p + "spilled_bytes",
                      static_cast<double>(ts.spilled_bytes));
    metrics->SetGauge(p + "lost", ts.lost ? 1.0 : 0.0);
  }
  metrics->SetGauge("mem.tier.eviction_writebacks",
                    static_cast<double>(eviction_writebacks_));
  metrics->SetGauge("mem.tier.eviction_writeback_bytes",
                    static_cast<double>(eviction_writeback_bytes_));
  metrics->SetGauge("mem.pinned_host.in_use_bytes",
                    static_cast<double>(PinnedHostInUse()));
}

Result<Tier> TierManager::PlaceExtent(uint64_t bytes, uint64_t generation,
                                      int* write_retries_out) {
  std::lock_guard<std::mutex> lock(mu_);
  *write_retries_out = 0;
  bool saw_loss = false;
  Status last_write_fault = Status::OK();
  std::string why;
  for (int i = 0; i < kTierCount; ++i) {
    const Tier t = static_cast<Tier>(i);
    TierState& ts = tiers_[i];
    const std::string name = TierName(t);
    if (capacity(t) == 0) {
      why += (why.empty() ? "" : ", ") + name + ": disabled";
      continue;
    }
    if (ts.lost) {
      saw_loss = true;
      why += (why.empty() ? "" : ", ") + name + ": lost";
      continue;
    }
    Status loss = injector_->Check(kSiteTierLost);
    if (!loss.ok()) {
      MarkLostLocked(t);
      saw_loss = true;
      why += (why.empty() ? "" : ", ") + name + ": lost mid-spill";
      continue;
    }
    Status wf = injector_->Check(kSiteSpillWrite);
    if (!wf.ok() && wf.IsTransient()) {
      ++ts.write_retries;
      ++*write_retries_out;
      wf = injector_->Check(kSiteSpillWrite);  // one in-place retry
    }
    if (!wf.ok()) {
      if (!wf.IsTransient()) {
        return Status(wf.code(), "spill writeback to " + name +
                                     " tier failed: " + wf.message());
      }
      last_write_fault = wf;
      why += (why.empty() ? "" : ", ") + name + ": write fault";
      continue;
    }
    if (ts.used + bytes > capacity(t)) {
      why += (why.empty() ? "" : ", ") + name + ": full (" +
             std::to_string(ts.used) + " of " + std::to_string(capacity(t)) +
             " used)";
      continue;
    }
    ts.used += bytes;
    ts.high_water = std::max(ts.high_water, ts.used);
    ++ts.spill_writes;
    ts.spilled_bytes += bytes;
    if (t == Tier::kHost) PinnedHostAlloc(bytes);
    extents_[generation] = Extent{t, bytes};
    return t;
  }
  if (saw_loss) {
    return Status::Unavailable(
        "spill tier lost mid-spill; no surviving tier could absorb " +
        std::to_string(bytes) + " bytes (" + why + ")");
  }
  if (!last_write_fault.ok()) {
    return Status(last_write_fault.code(),
                  "spill writeback failed on every tier (" + why +
                      "): " + last_write_fault.message());
  }
  return Status::ResourceExhausted(
      "spill of " + std::to_string(bytes) +
      " bytes exceeds every configured tier (" + why +
      "); raise TierManager::Options capacities or lower concurrency");
}

Result<int> TierManager::CompleteReadBack(uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = extents_.find(generation);
  if (it == extents_.end()) {
    return Status::Unavailable(
        "spill tier lost mid-spill: staged extent (generation " +
        std::to_string(generation) + ") was voided when its tier failed");
  }
  const Tier t = it->second.tier;
  TierState& ts = tiers_[static_cast<int>(t)];
  int retries = 0;
  Status st = Status::OK();
  for (int attempt = 0; attempt < kMaxReadAttempts; ++attempt) {
    st = injector_->Check(kSiteSpillRead);
    if (st.ok() || !st.IsTransient()) break;
    ++retries;
  }
  ts.read_retries += retries;
  const uint64_t bytes = it->second.bytes;
  ReleaseBytesLocked(t, bytes);
  extents_.erase(it);
  auto& tracker = LifetimeTracker::Global();
  tracker.OnUnpin(generation);
  tracker.OnFree(generation);
  if (!st.ok()) {
    return Status(st.code(), "spill read-back of " + std::to_string(bytes) +
                                 " bytes from " + TierName(t) +
                                 " tier failed: " + st.message());
  }
  ++ts.spill_reads;
  return retries;
}

void TierManager::AbandonExtent(uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = extents_.find(generation);
  if (it == extents_.end()) return;
  ReleaseBytesLocked(it->second.tier, it->second.bytes);
  extents_.erase(it);
  auto& tracker = LifetimeTracker::Global();
  tracker.OnUnpin(generation);
  tracker.OnFree(generation);
}

void TierManager::ReleaseBytesLocked(Tier t, uint64_t bytes) {
  TierState& ts = tiers_[static_cast<int>(t)];
  SIRIUS_CHECK(bytes <= ts.used);
  ts.used -= bytes;
  if (t == Tier::kHost) PinnedHostFree(bytes);
}

SpillSession::SpillSession(TierManager* tiers) : tiers_(tiers) {}

SpillSession::~SpillSession() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, lane] : lanes_) {
    for (const LaneExtent& e : lane.extents) {
      tiers_->AbandonExtent(e.generation);
      if (lane.hazards != nullptr) lane.hazards->ReleaseResource(e.generation);
    }
  }
}

Result<SpillSession::Ticket> SpillSession::RoundTrip(
    int lane, uint64_t bytes, double now_s, Reservation* quota,
    sim::HazardTracker* hazards, sim::StreamId compute_stream) {
  std::lock_guard<std::mutex> lock(mu_);
  Lane& L = lanes_[lane];
  auto& tracker = LifetimeTracker::Global();
  const uint64_t gen = tracker.OnAlloc(
      bytes, "spill extent (lane " + std::to_string(lane) + ")");

  int write_retries = 0;
  Result<Tier> placed = tiers_->PlaceExtent(bytes, gen, &write_retries);
  if (!placed.ok()) {
    tracker.OnFree(gen);  // the minted generation never held memory
    if (placed.status().IsUnavailable()) tier_loss_seen_ = true;
    return placed.status();
  }
  const Tier tier = placed.ValueOrDie();
  tracker.OnPin(gen);  // in flight on the lane until Join

  if (quota != nullptr) {
    Status q = quota->Grow(bytes);
    if (!q.ok()) {
      tiers_->AbandonExtent(gen);
      // Retry-after: the time for in-flight lanes to drain and this extent
      // to round-trip — when the tenant retries after that, its finished
      // queries have released their quota.
      const double drain =
          std::max(0.0, std::max(L.busy_until[0], L.busy_until[1]) - now_s) +
          tiers_->WriteSeconds(tier, bytes) + tiers_->ReadSeconds(tier, bytes);
      return Status::ResourceExhausted(
          "tenant spill quota exhausted while spilling " +
          std::to_string(bytes) + " bytes to " + TierName(tier) +
          " tier: " + q.message() +
          "; retry-after=" + std::to_string(drain) + "s");
    }
  }

  const int ti = static_cast<int>(tier);
  const double wait = std::max(0.0, L.busy_until[ti] - now_s);
  const double write_s =
      tiers_->WriteSeconds(tier, bytes) * (1 + write_retries);
  const double read_s = tiers_->ReadSeconds(tier, bytes);
  Ticket tk;
  tk.tier = tier;
  tk.bytes = bytes;
  tk.generation = gen;
  tk.stall_s = wait;
  tk.write_start_s = now_s + wait;
  tk.write_end_s = tk.write_start_s + write_s;
  tk.read_end_s = tk.write_end_s + read_s;
  L.busy_until[ti] = tk.read_end_s;

  if (hazards != nullptr) {
    L.hazards = hazards;
    if (L.spill_stream < 0) {
      L.spill_stream =
          hazards->CreateStream("spill-lane-" + std::to_string(lane));
    }
    // compute -> writeback -> prefetch -> compute, all visible as edges.
    sim::EventId produced = hazards->RecordEvent(compute_stream);
    hazards->StreamWaitEvent(L.spill_stream, produced);
    hazards->OnWrite(L.spill_stream, gen, "spill writeback");
    hazards->OnRead(L.spill_stream, gen, "spill prefetch");
    sim::EventId restored = hazards->RecordEvent(L.spill_stream);
    hazards->StreamWaitEvent(compute_stream, restored);
  }

  L.extents.push_back(LaneExtent{gen, bytes, tier});
  spilled_bytes_ += bytes;
  ++round_trips_;
  return tk;
}

Result<double> SpillSession::Join(int lane, double now_s) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = lanes_.find(lane);
  if (it == lanes_.end()) return 0.0;
  Lane& L = it->second;
  double extra_s = 0.0;
  Status bad = Status::OK();
  for (const LaneExtent& e : L.extents) {
    Result<int> r = tiers_->CompleteReadBack(e.generation);
    if (r.ok()) {
      extra_s += r.ValueOrDie() * tiers_->ReadSeconds(e.tier, e.bytes);
    } else {
      if (r.status().IsUnavailable()) tier_loss_seen_ = true;
      bad = r.status();
    }
    if (L.hazards != nullptr) L.hazards->ReleaseResource(e.generation);
  }
  L.extents.clear();
  const double busy = std::max(L.busy_until[0], L.busy_until[1]);
  const double drain = std::max(0.0, busy - now_s) + extra_s;
  if (!bad.ok()) return bad;
  return drain;
}

bool SpillSession::tier_loss_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tier_loss_seen_;
}

uint64_t SpillSession::spilled_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spilled_bytes_;
}

uint64_t SpillSession::round_trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return round_trips_;
}

}  // namespace sirius::mem
