#include "mem/reservation.h"

#include <algorithm>
#include <utility>

namespace sirius::mem {

ReservationPool::ReservationPool(uint64_t capacity, std::string name)
    : capacity_(capacity), name_(std::move(name)) {}

Status ReservationPool::TryReserve(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (reserved_ + bytes > capacity_) {
    ++refused_;
    return Status::ResourceExhausted(
        "reservation of " + std::to_string(bytes) + " bytes exceeds '" +
        name_ + "' budget (" + std::to_string(reserved_) + " of " +
        std::to_string(capacity_) + " reserved)");
  }
  reserved_ += bytes;
  high_water_ = std::max(high_water_, reserved_);
  ++granted_;
  return Status::OK();
}

void ReservationPool::Release(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  SIRIUS_CHECK(bytes <= reserved_);
  reserved_ -= bytes;
}

uint64_t ReservationPool::reserved() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reserved_;
}

uint64_t ReservationPool::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_ - reserved_;
}

uint64_t ReservationPool::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

uint64_t ReservationPool::total_granted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return granted_;
}

uint64_t ReservationPool::total_refused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return refused_;
}

Result<Reservation> Reservation::Take(ReservationPool* pool, uint64_t bytes) {
  SIRIUS_RETURN_NOT_OK(pool->TryReserve(bytes));
  return Reservation(pool, bytes);
}

Reservation::Reservation(Reservation&& other) noexcept
    : pool_(other.pool_), bytes_(other.bytes_) {
  other.pool_ = nullptr;
  other.bytes_ = 0;
}

Reservation& Reservation::operator=(Reservation&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    bytes_ = other.bytes_;
    other.pool_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

Status Reservation::EnsureAtLeast(uint64_t bytes) {
  if (pool_ == nullptr) {
    return Status::Internal("EnsureAtLeast on an inactive reservation");
  }
  if (bytes <= bytes_) return Status::OK();
  SIRIUS_RETURN_NOT_OK(pool_->TryReserve(bytes - bytes_));
  bytes_ = bytes;
  return Status::OK();
}

Status Reservation::Grow(uint64_t delta) {
  if (pool_ == nullptr) return Status::OK();
  SIRIUS_RETURN_NOT_OK(pool_->TryReserve(delta));
  bytes_ += delta;
  return Status::OK();
}

void Reservation::Release() {
  if (pool_ != nullptr) {
    pool_->Release(bytes_);
    pool_ = nullptr;
    bytes_ = 0;
  }
}

}  // namespace sirius::mem
