// Tiered spill memory: HBM -> pinned host -> simulated NVMe (§3.4).
//
// The engine's out-of-core mode used to round-trip overflow to pinned host
// memory unboundedly: an admitted query could exhaust the host while its
// tenant's Reservation only covered device bytes. The TierManager turns that
// path into a governed hierarchy. Each tier below HBM has a capacity; a
// spilled extent is placed on the first tier with room (host, then NVMe),
// every spilled byte is charged to the owning tenant's Reservation via
// Grow(), and tier exhaustion or quota exhaustion surfaces as a diagnosable
// ResourceExhausted instead of silent growth.
//
// Timing model: each query holds a SpillSession whose per-pipeline *lanes*
// model a dedicated DMA queue. A round trip schedules writeback + prefetch
// on the lane's own time horizon, so transfers overlap with compute; the
// compute thread only stalls on backpressure (the lane is still busy with
// the previous extent) and on the final drain at pipeline end. Horizons are
// per-lane, never shared across pipelines, so concurrent pipelines cannot
// make the modeled clock depend on thread scheduling.
//
// Failure model (fault sites, swept by the chaos harness):
//   mem.spill.write  writeback fails; one in-place retry, then fall back to
//                    the next tier.
//   mem.spill.read   prefetch fails; retried in place (the data has a single
//                    home, there is nowhere to fall back to).
//   mem.tier.lost    the tier dies mid-spill; resident extents are voided
//                    (the lifetime tracker flags any that a kernel still
//                    pins) and the query's Join reports Unavailable so the
//                    engine can revive + retry, or the serving layer can
//                    re-admit the query on the survivors.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "fault/fault_injector.h"
#include "mem/reservation.h"
#include "obs/metrics.h"
#include "sim/interconnect.h"
#include "sim/timeline.h"

namespace sirius::mem {

/// Spill tiers below HBM, in fallback order.
enum class Tier { kHost = 0, kNvme = 1 };
inline constexpr int kTierCount = 2;
const char* TierName(Tier t);

/// \name Pinned-host staging ledger
/// Process-wide accounting of pinned host memory (the cudaHostAlloc registry
/// of a real deployment). All pinned staging bytes in the repo flow through
/// here; a lint rule bans PinnedHostAlloc calls outside src/mem/ so the
/// TierManager stays the single host-spill path.
/// @{
uint64_t PinnedHostAlloc(uint64_t bytes);  ///< returns bytes now in use
void PinnedHostFree(uint64_t bytes);
uint64_t PinnedHostInUse();
/// @}

/// \brief Capacities, occupancy, and failure state of the spill tiers.
///
/// Owned by the engine (one per SiriusEngine); internally synchronized so
/// concurrent pipelines can place and release extents. Byte accounting is
/// commutative, so sharing it across pipelines does not hurt determinism.
class TierManager {
 public:
  struct Options {
    /// Pinned host staging capacity; 0 disables the tier.
    uint64_t host_capacity_bytes = 64ull << 30;
    /// Simulated NVMe capacity; 0 disables the tier.
    uint64_t nvme_capacity_bytes = 512ull << 30;
    /// Device <-> pinned host link.
    sim::Link host_link = sim::NvlinkC2c();
    /// Pinned host <-> NVMe link (NVMe extents bounce through host staging,
    /// so they pay both links).
    sim::Link nvme_link = sim::NvmeGen4();
  };

  struct TierStats {
    uint64_t capacity_bytes = 0;
    uint64_t used_bytes = 0;
    uint64_t high_water_bytes = 0;
    uint64_t spill_writes = 0;    ///< extents written into this tier
    uint64_t spill_reads = 0;     ///< extents read back out
    uint64_t spilled_bytes = 0;   ///< cumulative bytes written
    uint64_t write_retries = 0;   ///< transient write faults retried in place
    uint64_t read_retries = 0;    ///< transient read faults retried in place
    uint64_t losses = 0;          ///< times the tier was lost
    bool lost = false;            ///< currently lost (until ReviveLostTiers)
  };

  TierManager() : TierManager(Options(), nullptr) {}
  /// `injector` == nullptr uses the process-global injector.
  explicit TierManager(Options options,
                       fault::FaultInjector* injector = nullptr);

  const Options& options() const { return options_; }
  uint64_t capacity(Tier t) const;
  /// Seconds to write / read one `bytes` extent through `t`.
  double WriteSeconds(Tier t, uint64_t bytes) const;
  double ReadSeconds(Tier t, uint64_t bytes) const;

  /// Marks `tier` failed and voids every extent resident on it. A voided
  /// extent's lifetime generation is retired; the transfer pin the session
  /// holds is balanced first, so only extents some *other* holder still pins
  /// (a kernel borrowing staged data) are flagged free-while-pinned.
  void MarkLost(Tier tier);
  bool lost(Tier t) const;
  /// Clears lost flags (the transient tier came back / was remounted); the
  /// voided extents stay voided. The engine calls this before its tier-loss
  /// retry so a healed fault can succeed on the second run.
  void ReviveLostTiers();

  TierStats stats(Tier t) const;
  /// Columns the buffer manager evicted under pressure; in a tiered system
  /// these are writebacks, so the manager keeps the tally.
  void NoteEvictionWriteback(uint64_t bytes);
  uint64_t eviction_writebacks() const;

  /// Publishes mem.tier.<name>.* and mem.pinned_host.in_use_bytes gauges.
  void PublishGauges(obs::MetricsRegistry* metrics) const;

 private:
  friend class SpillSession;

  struct TierState {
    uint64_t used = 0;
    uint64_t high_water = 0;
    uint64_t spill_writes = 0;
    uint64_t spill_reads = 0;
    uint64_t spilled_bytes = 0;
    uint64_t write_retries = 0;
    uint64_t read_retries = 0;
    uint64_t losses = 0;
    bool lost = false;
  };
  struct Extent {
    Tier tier = Tier::kHost;
    uint64_t bytes = 0;
  };

  /// Places a `bytes` extent on the first surviving tier with room,
  /// consulting the mem.tier.lost and mem.spill.write fault sites per tier.
  /// `write_retries_out` counts transient write attempts absorbed (the
  /// session charges an extra write per retry). Unavailable when every tier
  /// is lost; ResourceExhausted when every configured tier is full.
  Result<Tier> PlaceExtent(uint64_t bytes, uint64_t generation,
                           int* write_retries_out);
  /// Completes the prefetch of `generation` and releases its tier bytes.
  /// Returns the transient read retries absorbed. Unavailable when the
  /// extent was voided by a tier loss.
  Result<int> CompleteReadBack(uint64_t generation);
  /// Releases an extent without a read-back (quota refusal, session abort).
  void AbandonExtent(uint64_t generation);

  void MarkLostLocked(Tier tier);
  void ReleaseBytesLocked(Tier t, uint64_t bytes);

  const Options options_;
  fault::FaultInjector* const injector_;
  mutable std::mutex mu_;
  TierState tiers_[kTierCount];
  std::map<uint64_t, Extent> extents_;  ///< lifetime generation -> extent
  uint64_t eviction_writebacks_ = 0;
  uint64_t eviction_writeback_bytes_ = 0;
};

/// \brief One query's spill state: per-pipeline DMA lanes over a shared
/// TierManager.
///
/// The engine creates a fresh session per run and calls RoundTrip from the
/// out-of-core overflow path; Join drains a lane at pipeline end. Extents
/// still registered when the session dies (a query aborted mid-run) are
/// abandoned so tier capacity and the pinned-host ledger can never leak.
class SpillSession {
 public:
  struct Ticket {
    Tier tier = Tier::kHost;
    uint64_t bytes = 0;
    uint64_t generation = 0;   ///< lifetime generation of the staged extent
    double stall_s = 0;        ///< backpressure to charge to compute now
    double write_start_s = 0;  ///< lane-clock transfer window (trace spans)
    double write_end_s = 0;
    double read_end_s = 0;
  };

  explicit SpillSession(TierManager* tiers);
  ~SpillSession();

  SpillSession(const SpillSession&) = delete;
  SpillSession& operator=(const SpillSession&) = delete;

  /// Spills `bytes` out of lane `lane` (the pipeline id) at lane-clock time
  /// `now_s` and schedules the prefetch back. Charges the bytes to `quota`
  /// (when non-null) via Reservation::Grow; on quota exhaustion returns
  /// ResourceExhausted with a "; retry-after=<s>s" hint and releases the
  /// extent. When `hazards` is non-null the writeback/prefetch are ordered
  /// on the lane's dedicated spill stream with event edges against
  /// `compute_stream`, so the hazard tracker sees the dependency.
  Result<Ticket> RoundTrip(int lane, uint64_t bytes, double now_s,
                           Reservation* quota = nullptr,
                           sim::HazardTracker* hazards = nullptr,
                           sim::StreamId compute_stream = 0);

  /// Drains `lane`: completes every outstanding read-back and returns the
  /// seconds compute must stall for the lane to go idle past `now_s`.
  /// Unavailable when a tier holding this lane's extents was lost mid-spill.
  Result<double> Join(int lane, double now_s);

  /// True once any operation failed because a tier was lost; the engine's
  /// evict-and-retry path uses this to tell tier loss apart from other
  /// Unavailable errors.
  bool tier_loss_seen() const;
  uint64_t spilled_bytes() const;
  uint64_t round_trips() const;

 private:
  struct LaneExtent {
    uint64_t generation = 0;
    uint64_t bytes = 0;
    Tier tier = Tier::kHost;
  };
  struct Lane {
    double busy_until[kTierCount] = {0.0, 0.0};
    sim::HazardTracker* hazards = nullptr;
    sim::StreamId spill_stream = -1;
    std::vector<LaneExtent> extents;
  };

  TierManager* const tiers_;
  mutable std::mutex mu_;
  std::map<int, Lane> lanes_;
  bool tier_loss_seen_ = false;
  uint64_t spilled_bytes_ = 0;
  uint64_t round_trips_ = 0;
};

}  // namespace sirius::mem
