#include "mem/memory_resource.h"

#include <cstdlib>

#include "common/bitutil.h"

namespace sirius::mem {

namespace {
constexpr size_t kAlignment = 64;
constexpr size_t kMinClass = 64;

size_t AlignUp(size_t v, size_t a) { return (v + a - 1) / a * a; }
}  // namespace

SystemMemoryResource::SystemMemoryResource(size_t capacity, std::string name)
    : capacity_(capacity), name_(std::move(name)) {}

SystemMemoryResource::~SystemMemoryResource() = default;

Status SystemMemoryResource::Allocate(size_t size, void** out) {
  if (size == 0) size = kAlignment;
  size = AlignUp(size, kAlignment);
  size_t prev = allocated_.fetch_add(size);
  if (capacity_ != 0 && prev + size > capacity_) {
    allocated_.fetch_sub(size);
    return Status::OutOfMemory(name_ + ": allocation of " + std::to_string(size) +
                               " bytes exceeds capacity " +
                               std::to_string(capacity_) + " (in use " +
                               std::to_string(prev) + ")");
  }
  void* p = std::aligned_alloc(kAlignment, size);
  if (p == nullptr) {
    allocated_.fetch_sub(size);
    return Status::OutOfMemory(name_ + ": aligned_alloc failed for " +
                               std::to_string(size) + " bytes");
  }
  *out = p;
  return Status::OK();
}

void SystemMemoryResource::Deallocate(void* ptr, size_t size) {
  if (ptr == nullptr) return;
  if (size == 0) size = kAlignment;
  std::free(ptr);
  allocated_.fetch_sub(AlignUp(size, kAlignment));
}

PoolMemoryResource::PoolMemoryResource(MemoryResource* upstream, size_t pool_size)
    : upstream_(upstream), pool_size_(pool_size) {
  void* p = nullptr;
  Status st = upstream_->Allocate(pool_size_, &p);
  SIRIUS_CHECK_OK(st);
  arena_ = static_cast<uint8_t*>(p);
}

PoolMemoryResource::~PoolMemoryResource() {
  upstream_->Deallocate(arena_, pool_size_);
}

size_t PoolMemoryResource::ClassFor(size_t size) const {
  if (size < kMinClass) size = kMinClass;
  return bit::NextPow2(size);
}

Status PoolMemoryResource::Allocate(size_t size, void** out) {
  const size_t cls = ClassFor(size);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = free_lists_.find(cls);
  if (it != free_lists_.end() && !it->second.empty()) {
    *out = it->second.back();
    it->second.pop_back();
    ++free_list_hits_;
  } else {
    if (bump_ + cls > pool_size_) {
      return Status::OutOfMemory(
          "pool: allocation of " + std::to_string(cls) +
          " bytes exceeds processing region of " + std::to_string(pool_size_) +
          " bytes (bump offset " + std::to_string(bump_) + ")");
    }
    *out = arena_ + bump_;
    bump_ += cls;
  }
  allocated_ += cls;
  high_water_ = std::max(high_water_, allocated_);
  return Status::OK();
}

void PoolMemoryResource::Deallocate(void* ptr, size_t size) {
  if (ptr == nullptr) return;
  const size_t cls = ClassFor(size);
  std::lock_guard<std::mutex> lock(mu_);
  free_lists_[cls].push_back(ptr);
  allocated_ -= cls;
}

PressureMemoryResource::PressureMemoryResource(MemoryResource* upstream,
                                               size_t fail_every_nth,
                                               size_t skip_first)
    : upstream_(upstream),
      fail_every_nth_(fail_every_nth),
      skip_first_(skip_first) {}

Status PressureMemoryResource::Allocate(size_t size, void** out) {
  const size_t request = requests_.fetch_add(1) + 1;
  if (fail_every_nth_ != 0 && request > skip_first_ &&
      (request - skip_first_) % fail_every_nth_ == 0) {
    injected_.fetch_add(1);
    return Status::OutOfMemory(name() + ": injected allocation failure (request #" +
                               std::to_string(request) + ", " +
                               std::to_string(size) + " bytes)");
  }
  return upstream_->Allocate(size, out);
}

void PressureMemoryResource::Deallocate(void* ptr, size_t size) {
  upstream_->Deallocate(ptr, size);
}

TrackingMemoryResource::TrackingMemoryResource(MemoryResource* wrapped)
    : wrapped_(wrapped) {}

Status TrackingMemoryResource::Allocate(size_t size, void** out) {
  Status st = wrapped_->Allocate(size, out);
  if (st.ok()) {
    num_allocations_.fetch_add(1);
    total_bytes_.fetch_add(size);
  }
  return st;
}

void TrackingMemoryResource::Deallocate(void* ptr, size_t size) {
  wrapped_->Deallocate(ptr, size);
  if (ptr != nullptr) num_deallocations_.fetch_add(1);
}

MemoryResource* DefaultResource() {
  static SystemMemoryResource resource(0, "host-heap");
  return &resource;
}

}  // namespace sirius::mem
