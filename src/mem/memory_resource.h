// Memory-resource hierarchy, mirroring RMM (paper §2.2, §3.2.3).
//
// Sirius' buffer manager builds two regions on top of these resources: a
// pre-allocated caching region and an RMM-pool-managed processing region.
// On this machine "device memory" is host memory owned by a resource with a
// capacity limit equal to the modeled device's HBM size.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace sirius::mem {

/// \brief Abstract allocator in the style of rmm::mr::device_memory_resource.
class MemoryResource {
 public:
  virtual ~MemoryResource() = default;

  /// Allocates `size` bytes, 64-byte aligned. On success stores the pointer
  /// in *out. Returns OutOfMemory when the resource's capacity is exhausted.
  virtual Status Allocate(size_t size, void** out) = 0;

  /// Returns memory obtained from Allocate. `size` must match.
  virtual void Deallocate(void* ptr, size_t size) = 0;

  /// Human-readable name for diagnostics.
  virtual std::string name() const = 0;

  /// Bytes currently allocated from this resource.
  virtual size_t bytes_allocated() const = 0;
};

/// \brief Heap-backed resource with an optional capacity cap.
///
/// Models raw device memory: capacity equals the device's HBM size, so
/// exceeding it surfaces the same OOM the paper's out-of-core extension
/// (§3.4) exists to handle.
class SystemMemoryResource : public MemoryResource {
 public:
  /// `capacity` = 0 means unlimited.
  explicit SystemMemoryResource(size_t capacity = 0, std::string name = "system");
  ~SystemMemoryResource() override;

  Status Allocate(size_t size, void** out) override;
  void Deallocate(void* ptr, size_t size) override;
  std::string name() const override { return name_; }
  size_t bytes_allocated() const override { return allocated_.load(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::string name_;
  std::atomic<size_t> allocated_{0};
};

/// \brief Pool (arena) resource in the style of rmm::mr::pool_memory_resource.
///
/// Carves allocations out of a pre-reserved arena using power-of-two size
/// classes with per-class free lists. Used for Sirius' data-processing
/// region, where intermediate results churn quickly (§3.2.3).
class PoolMemoryResource : public MemoryResource {
 public:
  /// Pre-reserves `pool_size` bytes from `upstream` (not owned).
  PoolMemoryResource(MemoryResource* upstream, size_t pool_size);
  ~PoolMemoryResource() override;

  Status Allocate(size_t size, void** out) override;
  void Deallocate(void* ptr, size_t size) override;
  std::string name() const override { return "pool(" + upstream_->name() + ")"; }
  size_t bytes_allocated() const override { return allocated_; }

  size_t pool_size() const { return pool_size_; }
  /// Highest concurrent allocation seen, for sizing diagnostics.
  size_t high_water_mark() const { return high_water_; }
  /// Number of allocations served from a free list (vs carved fresh).
  size_t free_list_hits() const { return free_list_hits_; }

 private:
  size_t ClassFor(size_t size) const;

  MemoryResource* upstream_;
  size_t pool_size_;
  uint8_t* arena_ = nullptr;
  size_t bump_ = 0;  // next fresh offset
  mutable std::mutex mu_;
  std::map<size_t, std::vector<void*>> free_lists_;  // size class -> blocks
  size_t allocated_ = 0;
  size_t high_water_ = 0;
  size_t free_list_hits_ = 0;
};

/// \brief Adaptor that injects allocation pressure: every Nth allocation
/// fails with OutOfMemory.
///
/// Deterministic by construction (no RNG): the Nth, 2Nth, ... requests that
/// reach it fail exactly, so chaos tests replay. Wraps the processing-region
/// resource to exercise the §3.4 out-of-core / CPU-fallback paths under real
/// allocation failures, not just capacity pre-checks.
class PressureMemoryResource : public MemoryResource {
 public:
  /// Fails allocation number `fail_every_nth`, 2*Nth, ... (1 = every
  /// request). `skip_first` requests pass untouched before counting starts;
  /// 0 for `fail_every_nth` disables injection entirely.
  PressureMemoryResource(MemoryResource* upstream, size_t fail_every_nth,
                         size_t skip_first = 0);

  Status Allocate(size_t size, void** out) override;
  void Deallocate(void* ptr, size_t size) override;
  std::string name() const override {
    return "pressure(" + upstream_->name() + ")";
  }
  size_t bytes_allocated() const override { return upstream_->bytes_allocated(); }

  /// Allocation requests seen (including injected failures).
  size_t num_requests() const { return requests_.load(); }
  /// OutOfMemory failures injected.
  size_t num_injected_failures() const { return injected_.load(); }

 private:
  MemoryResource* upstream_;
  size_t fail_every_nth_;
  size_t skip_first_;
  std::atomic<size_t> requests_{0};
  std::atomic<size_t> injected_{0};
};

/// \brief Adaptor that counts allocations flowing through it.
class TrackingMemoryResource : public MemoryResource {
 public:
  explicit TrackingMemoryResource(MemoryResource* wrapped);

  Status Allocate(size_t size, void** out) override;
  void Deallocate(void* ptr, size_t size) override;
  std::string name() const override { return "tracking(" + wrapped_->name() + ")"; }
  size_t bytes_allocated() const override { return wrapped_->bytes_allocated(); }

  size_t num_allocations() const { return num_allocations_.load(); }
  size_t num_deallocations() const { return num_deallocations_.load(); }
  size_t total_bytes_requested() const { return total_bytes_.load(); }

 private:
  MemoryResource* wrapped_;
  std::atomic<size_t> num_allocations_{0};
  std::atomic<size_t> num_deallocations_{0};
  std::atomic<size_t> total_bytes_{0};
};

/// Process-wide unlimited resource (host heap).
MemoryResource* DefaultResource();

}  // namespace sirius::mem
