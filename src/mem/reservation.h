// Memory reservations for admission control (serving layer).
//
// A ReservationPool is a thread-safe byte budget laid over a memory region
// (the buffer manager's processing region). Admission control reserves a
// query's estimated working set *before* the query is dispatched; the
// reservation is released — always, on every exit path — when the query
// finishes, times out, or is cancelled. Reservations are accounting only:
// they do not allocate, they bound how much the admission layer promises
// concurrently.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "common/result.h"

namespace sirius::mem {

/// \brief Thread-safe byte budget for admission-time reservations.
class ReservationPool {
 public:
  /// `capacity` bytes available for reservation; `name` appears in errors.
  explicit ReservationPool(uint64_t capacity, std::string name = "processing");

  /// Reserves `bytes`; ResourceExhausted when it would exceed capacity.
  Status TryReserve(uint64_t bytes);

  /// Returns bytes obtained from TryReserve. Releasing more than is
  /// currently reserved is a programmer error and aborts.
  void Release(uint64_t bytes);

  uint64_t capacity() const { return capacity_; }
  uint64_t reserved() const;
  uint64_t available() const;
  /// Highest concurrent reservation seen (sizing diagnostics).
  uint64_t high_water() const;
  /// Reservations granted / refused since construction.
  uint64_t total_granted() const;
  uint64_t total_refused() const;

 private:
  const uint64_t capacity_;
  const std::string name_;
  mutable std::mutex mu_;
  uint64_t reserved_ = 0;
  uint64_t high_water_ = 0;
  uint64_t granted_ = 0;
  uint64_t refused_ = 0;
};

/// \brief RAII handle over one query's reservation. Movable, not copyable;
/// releases its bytes on destruction, so an admitted query can never leak
/// budget regardless of how it exits (completion, timeout, cancellation,
/// engine error).
class Reservation {
 public:
  Reservation() = default;

  /// Reserves `bytes` from `pool`; ResourceExhausted when over budget.
  static Result<Reservation> Take(ReservationPool* pool, uint64_t bytes);

  ~Reservation() { Release(); }
  Reservation(const Reservation&) = delete;
  Reservation& operator=(const Reservation&) = delete;
  Reservation(Reservation&& other) noexcept;
  Reservation& operator=(Reservation&& other) noexcept;

  /// Grows the reservation so it covers at least `bytes` total (used when an
  /// intermediate exceeds the admission-time estimate). No-op when already
  /// large enough; ResourceExhausted when the pool cannot cover the growth.
  Status EnsureAtLeast(uint64_t bytes);

  /// Grows the reservation by `delta` additional bytes. Spill charging uses
  /// this cumulative form: every spilled byte is added on top of whatever is
  /// already held, not clamped to a target. An inactive (default-constructed)
  /// reservation is an unbounded budget and grows for free;
  /// ResourceExhausted when the pool cannot cover the delta.
  Status Grow(uint64_t delta);

  /// Releases the reservation now; idempotent.
  void Release();

  uint64_t bytes() const { return bytes_; }
  bool active() const { return pool_ != nullptr; }

 private:
  Reservation(ReservationPool* pool, uint64_t bytes)
      : pool_(pool), bytes_(bytes) {}

  ReservationPool* pool_ = nullptr;
  uint64_t bytes_ = 0;
};

}  // namespace sirius::mem
