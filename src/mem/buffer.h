// RAII buffer over a MemoryResource (rmm::device_buffer equivalent), plus
// the debug-mode lifetime checker for everything the device model allocates.

#pragma once

#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "mem/memory_resource.h"

namespace sirius::mem {

/// \brief Debug-mode registry detecting use-after-free / use-after-evict,
/// double-free, and unbalanced pin/unpin on device-model allocations.
///
/// Every tracked allocation (a Buffer, a buffer-manager cache entry, ...)
/// gets a *generation*: a process-unique id minted at allocation time and
/// retired exactly once when the memory is freed or evicted. Holders stamp
/// the generation when they take a reference and revalidate it on access, so
/// a stale handle — the column was evicted and possibly reloaded since — is
/// caught deterministically instead of silently reading recycled memory.
///
/// Pins mark a generation as in active kernel use: retiring a pinned
/// generation (evicting a buffer mid-kernel) is itself a violation.
///
/// Thread-safe. Disabled (default), every call is one branch.
class LifetimeTracker {
 public:
  enum class ViolationKind {
    kUseAfterFree,       ///< access to a retired generation
    kDoubleFree,         ///< generation retired twice
    kFreeWhilePinned,    ///< retired while a pin is outstanding
    kUnbalancedUnpin,    ///< unpin without a matching pin
    kUnknownGeneration,  ///< pin/access of a generation never allocated
  };

  struct Violation {
    ViolationKind kind;
    uint64_t generation = 0;
    std::string detail;
  };

  /// Process-wide tracker; enabled when SIRIUS_RACE_CHECK=1 is in the
  /// environment (the same switch as the stream hazard checker).
  static LifetimeTracker& Global();

  LifetimeTracker() = default;

  void set_enabled(bool enabled);
  bool enabled() const;

  /// When true (default) the first violation aborts with a diagnostic;
  /// tests turn this off and inspect violations().
  void set_abort_on_violation(bool abort_on_violation);

  /// Mints a generation for a fresh allocation. `what` names it in
  /// diagnostics ("lineitem.l_quantity cache entry"). A unique generation is
  /// minted even when disabled (callers also use it as a unique resource id
  /// for the hazard tracker); liveness is only tracked while enabled.
  uint64_t OnAlloc(uint64_t bytes, const std::string& what);

  /// Retires a generation (free / evict). Flags double-free and
  /// free-while-pinned. Generation 0 (untracked) is ignored.
  void OnFree(uint64_t generation);

  /// Marks the generation as in active use (kernel argument, borrow).
  void OnPin(uint64_t generation);
  void OnUnpin(uint64_t generation);

  /// Validates that the generation is still live; flags use-after-free.
  /// `what` names the accessor in diagnostics.
  void OnAccess(uint64_t generation, const std::string& what);

  /// True when `generation` is live (minted and not retired). Untracked
  /// generation 0 counts as live.
  bool IsLive(uint64_t generation) const;

  size_t violation_count() const;
  std::vector<Violation> violations() const;
  size_t live_count() const;

  /// Forgets all live generations and violations (test isolation).
  void Reset();

 private:
  struct Entry {
    uint64_t bytes = 0;
    int pins = 0;
    std::string what;
  };

  void Report(std::unique_lock<std::mutex>& lock, Violation v);

  mutable std::mutex mu_;
  bool enabled_ = false;
  bool abort_on_violation_ = true;
  uint64_t next_generation_ = 1;
  /// Generations minted before this are exempt from checks (they predate
  /// the tracker being enabled, so their alloc was never registered).
  uint64_t enabled_since_ = 1;
  std::unordered_map<uint64_t, Entry> live_;
  std::vector<Violation> violations_;
};

const char* LifetimeViolationKindName(LifetimeTracker::ViolationKind kind);

/// \brief Owning, resizable byte buffer bound to a MemoryResource.
class Buffer {
 public:
  Buffer() = default;
  ~Buffer() { Release(); }

  Buffer(Buffer&& other) noexcept { *this = std::move(other); }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      Release();
      resource_ = other.resource_;
      data_ = other.data_;
      size_ = other.size_;
      generation_ = other.generation_;
      other.resource_ = nullptr;
      other.data_ = nullptr;
      other.size_ = 0;
      other.generation_ = 0;
    }
    return *this;
  }

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  /// Allocates a buffer of `size` bytes from `resource` (DefaultResource()
  /// when null). Contents are uninitialized.
  static Result<Buffer> Allocate(size_t size, MemoryResource* resource = nullptr);

  /// Allocates and zero-fills.
  static Result<Buffer> AllocateZeroed(size_t size,
                                       MemoryResource* resource = nullptr);

  uint8_t* data() { return static_cast<uint8_t*>(data_); }
  const uint8_t* data() const { return static_cast<const uint8_t*>(data_); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Lifetime-tracker generation stamped at allocation (0 when tracking was
  /// disabled at allocation time).
  uint64_t generation() const { return generation_; }

  /// Marks this buffer as in active kernel use; eviction/free of a pinned
  /// buffer is a diagnosed violation. Balance with Unpin().
  void Pin() const { LifetimeTracker::Global().OnPin(generation_); }
  void Unpin() const { LifetimeTracker::Global().OnUnpin(generation_); }

  template <typename T>
  T* data_as() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* data_as() const {
    return reinterpret_cast<const T*>(data_);
  }

 private:
  void Release() {
    if (data_ != nullptr && resource_ != nullptr) {
      LifetimeTracker::Global().OnFree(generation_);
      resource_->Deallocate(data_, size_);
    }
    data_ = nullptr;
    size_ = 0;
    generation_ = 0;
  }

  MemoryResource* resource_ = nullptr;
  void* data_ = nullptr;
  size_t size_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace sirius::mem
