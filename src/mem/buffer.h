// RAII buffer over a MemoryResource (rmm::device_buffer equivalent).

#pragma once

#include <cstdint>
#include <cstring>
#include <utility>

#include "common/result.h"
#include "common/status.h"
#include "mem/memory_resource.h"

namespace sirius::mem {

/// \brief Owning, resizable byte buffer bound to a MemoryResource.
class Buffer {
 public:
  Buffer() = default;
  ~Buffer() { Release(); }

  Buffer(Buffer&& other) noexcept { *this = std::move(other); }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      Release();
      resource_ = other.resource_;
      data_ = other.data_;
      size_ = other.size_;
      other.resource_ = nullptr;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  /// Allocates a buffer of `size` bytes from `resource` (DefaultResource()
  /// when null). Contents are uninitialized.
  static Result<Buffer> Allocate(size_t size, MemoryResource* resource = nullptr);

  /// Allocates and zero-fills.
  static Result<Buffer> AllocateZeroed(size_t size,
                                       MemoryResource* resource = nullptr);

  uint8_t* data() { return static_cast<uint8_t*>(data_); }
  const uint8_t* data() const { return static_cast<const uint8_t*>(data_); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  template <typename T>
  T* data_as() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* data_as() const {
    return reinterpret_cast<const T*>(data_);
  }

 private:
  void Release() {
    if (data_ != nullptr && resource_ != nullptr) {
      resource_->Deallocate(data_, size_);
    }
    data_ = nullptr;
    size_ = 0;
  }

  MemoryResource* resource_ = nullptr;
  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace sirius::mem
