#include "gdf/sort.h"

#include <algorithm>
#include <cmath>

#include "gdf/copying.h"
#include "gdf/row_ops.h"

namespace sirius::gdf {

Result<std::vector<index_t>> SortIndices(const Context& ctx,
                                         const std::vector<format::ColumnPtr>& keys,
                                         const std::vector<bool>& descending) {
  if (keys.empty()) return Status::Invalid("SortIndices: no keys");
  const size_t n = keys[0]->length();
  RowOps ops(keys);
  std::vector<index_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<index_t>(i);
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return ops.Compare(static_cast<size_t>(a), static_cast<size_t>(b), descending) < 0;
  });

  uint64_t key_bytes = 0;
  for (const auto& k : keys) key_bytes += k->MemoryUsage();
  const double logn = n > 2 ? std::log2(static_cast<double>(n)) : 1.0;
  sim::KernelCost cost;
  cost.seq_bytes = static_cast<uint64_t>(key_bytes * logn);
  cost.rows = static_cast<uint64_t>(n * logn);
  cost.ops_per_row = keys.size();
  cost.launches = static_cast<int>(std::max(1.0, logn / 8));
  ctx.Charge(sim::OpCategory::kOrderBy, cost);
  return order;
}

Result<format::TablePtr> SortTable(const Context& ctx,
                                   const format::TablePtr& table,
                                   const std::vector<int>& key_columns,
                                   const std::vector<bool>& descending) {
  std::vector<format::ColumnPtr> keys;
  keys.reserve(key_columns.size());
  for (int c : key_columns) {
    if (c < 0 || static_cast<size_t>(c) >= table->num_columns()) {
      return Status::IndexError("SortTable: bad key column " + std::to_string(c));
    }
    keys.push_back(table->column(c));
  }
  SIRIUS_ASSIGN_OR_RETURN(std::vector<index_t> order,
                          SortIndices(ctx, keys, descending));
  return GatherTable(ctx, table, order, sim::OpCategory::kOrderBy);
}

}  // namespace sirius::gdf
