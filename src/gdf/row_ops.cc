#include "gdf/row_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace sirius::gdf {

using format::Column;
using format::TypeId;

namespace {
constexpr uint64_t kNullHash = 0x9ae16a3b2f90404fULL;
}

uint64_t HashValueAt(const Column& col, size_t i) {
  if (col.IsNull(i)) return kNullHash;
  switch (col.type().id) {
    case TypeId::kBool:
      return HashMix64(col.data<uint8_t>()[i]);
    case TypeId::kInt32:
    case TypeId::kDate32:
      return HashMix64(static_cast<uint64_t>(col.data<int32_t>()[i]));
    case TypeId::kInt64:
    case TypeId::kDecimal64:
      return HashMix64(static_cast<uint64_t>(col.data<int64_t>()[i]));
    case TypeId::kFloat64: {
      double d = col.data<double>()[i];
      if (d == 0) d = 0;  // normalize -0.0
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(d));
      return HashMix64(bits);
    }
    case TypeId::kString:
      return HashString(col.StringAt(i));
    case TypeId::kList: {
      uint64_t h = 0x51ed270b; 
      const int64_t* off = col.offsets();
      for (int64_t k = off[i]; k < off[i + 1]; ++k) {
        h = HashCombine(h, HashValueAt(*col.list_child(), static_cast<size_t>(k)));
      }
      return h;
    }
  }
  return kNullHash;
}

bool ValueEquals(const Column& a, size_t i, const Column& b, size_t j,
                 bool null_equal) {
  const bool an = a.IsNull(i), bn = b.IsNull(j);
  if (an || bn) return an && bn && null_equal;
  switch (a.type().id) {
    case TypeId::kBool:
      return (a.data<uint8_t>()[i] != 0) == (b.data<uint8_t>()[j] != 0);
    case TypeId::kInt32:
    case TypeId::kDate32:
      return a.data<int32_t>()[i] == b.data<int32_t>()[j];
    case TypeId::kInt64:
    case TypeId::kDecimal64:
      return a.data<int64_t>()[i] == b.data<int64_t>()[j];
    case TypeId::kFloat64:
      return a.data<double>()[i] == b.data<double>()[j];
    case TypeId::kString:
      return a.StringAt(i) == b.StringAt(j);
    case TypeId::kList: {
      if (a.ListLength(i) != b.ListLength(j)) return false;
      const int64_t ao = a.offsets()[i], bo = b.offsets()[j];
      for (size_t k = 0; k < a.ListLength(i); ++k) {
        if (!ValueEquals(*a.list_child(), static_cast<size_t>(ao) + k,
                         *b.list_child(), static_cast<size_t>(bo) + k,
                         null_equal)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

int ValueCompare(const Column& a, size_t i, const Column& b, size_t j) {
  const bool an = a.IsNull(i), bn = b.IsNull(j);
  if (an || bn) {
    if (an && bn) return 0;
    return an ? 1 : -1;  // NULLs last
  }
  auto cmp = [](auto x, auto y) { return x < y ? -1 : (x > y ? 1 : 0); };
  switch (a.type().id) {
    case TypeId::kBool:
      return cmp(a.data<uint8_t>()[i] != 0, b.data<uint8_t>()[j] != 0);
    case TypeId::kInt32:
    case TypeId::kDate32:
      return cmp(a.data<int32_t>()[i], b.data<int32_t>()[j]);
    case TypeId::kInt64:
    case TypeId::kDecimal64:
      return cmp(a.data<int64_t>()[i], b.data<int64_t>()[j]);
    case TypeId::kFloat64:
      return cmp(a.data<double>()[i], b.data<double>()[j]);
    case TypeId::kString: {
      int c = a.StringAt(i).compare(b.StringAt(j));
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case TypeId::kList: {
      // Lexicographic over elements.
      const size_t la = a.ListLength(i), lb = b.ListLength(j);
      const int64_t ao = a.offsets()[i], bo = b.offsets()[j];
      for (size_t k = 0; k < std::min(la, lb); ++k) {
        int c = ValueCompare(*a.list_child(), static_cast<size_t>(ao) + k,
                             *b.list_child(), static_cast<size_t>(bo) + k);
        if (c != 0) return c;
      }
      return la < lb ? -1 : (la > lb ? 1 : 0);
    }
  }
  return 0;
}

uint64_t RowOps::Hash(size_t i) const {
  uint64_t h = 0;
  for (const auto& k : keys_) h = HashCombine(h, HashValueAt(*k, i));
  return h;
}

bool RowOps::AnyNull(size_t i) const {
  for (const auto& k : keys_) {
    if (k->IsNull(i)) return true;
  }
  return false;
}

bool RowOps::EqualsNullEqual(size_t i, const RowOps& other, size_t j) const {
  for (size_t k = 0; k < keys_.size(); ++k) {
    if (!ValueEquals(*keys_[k], i, *other.keys_[k], j, /*null_equal=*/true)) {
      return false;
    }
  }
  return true;
}

int RowOps::Compare(size_t i, size_t j, const std::vector<bool>& descending) const {
  for (size_t k = 0; k < keys_.size(); ++k) {
    int c = ValueCompare(*keys_[k], i, *keys_[k], j);
    if (c != 0) {
      const bool null_involved = keys_[k]->IsNull(i) || keys_[k]->IsNull(j);
      if (!null_involved && k < descending.size() && descending[k]) c = -c;
      return c;
    }
  }
  return 0;
}

}  // namespace sirius::gdf
