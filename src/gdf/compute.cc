#include "gdf/compute.h"

namespace sirius::gdf {

Result<format::ColumnPtr> ComputeColumn(const Context& ctx, const expr::Expr& e,
                                        const format::TablePtr& input,
                                        sim::OpCategory cat) {
  sim::KernelCost cost;
  std::vector<int> cols;
  e.CollectColumns(&cols);
  for (int c : cols) {
    if (c >= 0 && static_cast<size_t>(c) < input->num_columns()) {
      cost.seq_bytes += input->column(c)->MemoryUsage();
    }
  }
  cost.rows = input->num_rows();
  cost.ops_per_row = e.OpCount();
  // Output write traffic.
  cost.seq_bytes += input->num_rows() * e.type.byte_width();
  ctx.Charge(cat, cost);
  return expr::Evaluate(e, *input);
}

}  // namespace sirius::gdf
