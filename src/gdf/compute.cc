#include "gdf/compute.h"

#include <string>
#include <unordered_map>

namespace sirius::gdf {

namespace {

/// Rewrites every column reference through `remap` (old index -> compact
/// index). The tree was cloned by the caller; mutation is safe.
void RemapColumnRefs(expr::Expr* e,
                     const std::unordered_map<int, int>& remap) {
  if (e->kind == expr::ExprKind::kColumnRef) {
    auto it = remap.find(e->column_index);
    if (it != remap.end()) e->column_index = it->second;
  }
  for (const auto& child : e->children) RemapColumnRefs(child.get(), remap);
}

}  // namespace

Result<format::ColumnPtr> ComputeColumn(const Context& ctx, const expr::Expr& e,
                                        const format::TablePtr& input,
                                        sim::OpCategory cat) {
  sim::KernelCost cost;
  std::vector<int> cols;
  e.CollectColumns(&cols);
  for (int c : cols) {
    if (c >= 0 && static_cast<size_t>(c) < input->num_columns()) {
      cost.seq_bytes += input->column(c)->MemoryUsage();
    }
  }
  cost.rows = input->num_rows();
  cost.ops_per_row = e.OpCount();
  // Output write traffic.
  cost.seq_bytes += input->num_rows() * e.type.byte_width();
  ctx.Charge(cat, cost);
  return expr::Evaluate(e, *input);
}

Result<format::ColumnPtr> ComputeColumnView(const Context& ctx,
                                            const expr::Expr& e,
                                            const SelectionView& view,
                                            sim::OpCategory cat) {
  std::vector<int> cols;
  e.CollectColumns(&cols);
  if (cols.empty()) {
    // Literal-only expression: the compact input still needs the view's row
    // count, so carry one column along (its read is charged like any other).
    if (view.num_columns() == 0) {
      return Status::Invalid("ComputeColumnView: empty view");
    }
    cols.push_back(0);
  }

  // Compact input: only the referenced columns, read through the selection.
  std::vector<format::ColumnPtr> compact;
  format::Schema schema;
  std::unordered_map<int, int> remap;
  for (int c : cols) {
    SIRIUS_ASSIGN_OR_RETURN(format::ColumnPtr g,
                            GatherViewColumn(ctx, view, c, cat));
    remap.emplace(c, static_cast<int>(compact.size()));
    schema.AddField({"c" + std::to_string(c), g->type()});
    compact.push_back(std::move(g));
  }
  SIRIUS_ASSIGN_OR_RETURN(format::TablePtr input,
                          format::Table::Make(std::move(schema), compact));

  expr::ExprPtr remapped = e.Clone();
  RemapColumnRefs(remapped.get(), remap);

  sim::KernelCost cost;
  cost.rows = input->num_rows();
  cost.ops_per_row = e.OpCount();
  cost.launches = 0;
  if (ctx.fused_reads == nullptr) {
    // Standalone (no fused pass active): the compact input is a real table
    // in HBM and the result is written back — price both.
    for (const auto& c : compact) cost.seq_bytes += c->MemoryUsage();
    cost.seq_bytes += input->num_rows() * e.type.byte_width();
  } else {
    // Inside a fused pass each input column is charged at its first touch
    // only (identity pass-throughs arrive unpriced from GatherViewColumn);
    // after that its values live in registers, and the result feeds the
    // next operator in the chain without an HBM round trip.
    for (const auto& c : compact) {
      if (ctx.fused_reads->insert(c.get()).second) {
        const sim::KernelCost read =
            FusedReadCost(ctx.sim, c, input->num_rows());
        cost.seq_bytes += read.seq_bytes;
        cost.rand_bytes += read.rand_bytes;
      }
    }
  }
  ctx.Charge(cat, cost);
  SIRIUS_ASSIGN_OR_RETURN(format::ColumnPtr result,
                          expr::Evaluate(*remapped, *input));
  if (ctx.fused_reads != nullptr) ctx.fused_reads->insert(result.get());
  return result;
}

}  // namespace sirius::gdf
