#include "gdf/vector_search.h"

#include <algorithm>
#include <cmath>

namespace sirius::gdf {

const char* MetricName(Metric m) {
  switch (m) {
    case Metric::kL2:
      return "l2";
    case Metric::kDot:
      return "dot";
    case Metric::kCosine:
      return "cosine";
  }
  return "?";
}

Result<TopKResult> VectorTopK(const Context& ctx,
                              const format::ColumnPtr& embeddings,
                              const std::vector<double>& query, size_t k,
                              Metric metric) {
  if (embeddings == nullptr || !embeddings->type().is_list() ||
      embeddings->type().child == nullptr ||
      embeddings->type().child->id != format::TypeId::kFloat64) {
    return Status::TypeError("VectorTopK requires a LIST<FLOAT64> column");
  }
  if (query.empty()) return Status::Invalid("VectorTopK: empty query vector");
  const size_t dim = query.size();
  const size_t n = embeddings->length();
  const int64_t* offsets = embeddings->offsets();
  const double* values = embeddings->list_child()->data<double>();

  double query_norm = 0;
  for (double q : query) query_norm += q * q;
  query_norm = std::sqrt(query_norm);
  if (metric == Metric::kCosine && query_norm == 0) {
    return Status::Invalid("VectorTopK: zero query vector under cosine");
  }

  std::vector<std::pair<double, index_t>> scored;
  scored.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (embeddings->IsNull(i) || embeddings->ListLength(i) != dim) continue;
    const double* v = values + offsets[i];
    double dot = 0, norm = 0;
    for (size_t d = 0; d < dim; ++d) {
      dot += v[d] * query[d];
      norm += v[d] * v[d];
    }
    double score = 0;
    switch (metric) {
      case Metric::kDot:
        score = dot;
        break;
      case Metric::kCosine: {
        double denom = std::sqrt(norm) * query_norm;
        score = denom == 0 ? -1.0 : dot / denom;
        break;
      }
      case Metric::kL2: {
        // ||v - q||^2 = ||v||^2 - 2 v.q + ||q||^2; negate so higher = closer.
        score = -(norm - 2 * dot + query_norm * query_norm);
        break;
      }
    }
    scored.push_back({score, static_cast<index_t>(i)});
  }

  k = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(k),
                    scored.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;  // deterministic ties
                    });

  sim::KernelCost cost;
  cost.seq_bytes = embeddings->MemoryUsage();
  cost.rows = n;
  cost.ops_per_row = 2.0 * static_cast<double>(dim);  // FMA per dimension
  cost.launches = 2;  // score kernel + top-k selection
  ctx.Charge(sim::OpCategory::kScan, cost);

  TopKResult result;
  for (size_t i = 0; i < k; ++i) {
    result.scores.push_back(scored[i].first);
    result.indices.push_back(scored[i].second);
  }
  return result;
}

}  // namespace sirius::gdf
