#include "gdf/bloom.h"

#include "common/bitutil.h"
#include "gdf/copying.h"
#include "gdf/row_ops.h"

namespace sirius::gdf {

BloomFilter::BloomFilter(size_t expected_keys) {
  // ~10 bits per key, power-of-two bytes for cheap masking.
  uint64_t bits = bit::NextPow2(std::max<uint64_t>(64, expected_keys * 10));
  bits_.assign(bits / 8, 0);
  mask_ = bits - 1;
}

void BloomFilter::Insert(uint64_t hash) {
  for (int p = 0; p < kProbes; ++p) {
    uint64_t h = HashMix64(hash + 0x9e3779b97f4a7c15ULL * p) & mask_;
    bits_[h >> 3] |= uint8_t(1u << (h & 7));
  }
}

bool BloomFilter::Test(uint64_t hash) const {
  for (int p = 0; p < kProbes; ++p) {
    uint64_t h = HashMix64(hash + 0x9e3779b97f4a7c15ULL * p) & mask_;
    if (((bits_[h >> 3] >> (h & 7)) & 1) == 0) return false;
  }
  return true;
}

void BloomFilter::InsertColumn(const format::ColumnPtr& key) {
  for (size_t i = 0; i < key->length(); ++i) {
    if (!key->IsNull(i)) Insert(HashValueAt(*key, i));
  }
}

bool BloomFilter::MightContain(const format::Column& key, size_t i) const {
  if (key.IsNull(i)) return false;  // NULL keys never join
  return Test(HashValueAt(key, i));
}

Result<format::TablePtr> BloomPrefilter(const Context& ctx,
                                        const format::TablePtr& probe_table,
                                        const std::vector<int>& probe_keys,
                                        const format::ColumnPtr& build_key) {
  if (probe_keys.size() != 1) {
    return Status::Invalid("BloomPrefilter: single-key joins only");
  }
  const format::ColumnPtr probe_key = probe_table->column(probe_keys[0]);

  BloomFilter bloom(build_key->length());
  bloom.InsertColumn(build_key);

  std::vector<index_t> keep;
  keep.reserve(probe_table->num_rows());
  for (size_t i = 0; i < probe_table->num_rows(); ++i) {
    if (bloom.MightContain(*probe_key, i)) keep.push_back(static_cast<index_t>(i));
  }

  sim::KernelCost cost;
  cost.seq_bytes = build_key->MemoryUsage() + probe_key->MemoryUsage();
  cost.rand_bytes = (build_key->length() + probe_table->num_rows()) * 4;
  cost.rows = build_key->length() + probe_table->num_rows();
  cost.ops_per_row = 4.0;  // kProbes hash probes
  cost.launches = 2;
  ctx.Charge(sim::OpCategory::kJoin, cost);

  if (keep.size() == probe_table->num_rows()) return probe_table;  // no gain
  return GatherTable(ctx, probe_table, keep, sim::OpCategory::kJoin);
}

Result<std::vector<index_t>> BloomPrefilterSelection(
    const Context& ctx, const format::ColumnPtr& probe_key,
    const format::ColumnPtr& build_key) {
  BloomFilter bloom(build_key->length());
  bloom.InsertColumn(build_key);

  std::vector<index_t> keep;
  keep.reserve(probe_key->length());
  for (size_t i = 0; i < probe_key->length(); ++i) {
    if (bloom.MightContain(*probe_key, i)) keep.push_back(static_cast<index_t>(i));
  }

  // A probe key already register-resident in the active fused pass skips
  // the sequential re-read; the bloom-bit random probes are real either way.
  const bool probe_resident =
      ctx.fused_reads != nullptr &&
      !ctx.fused_reads->insert(probe_key.get()).second;
  sim::KernelCost cost;
  cost.seq_bytes = build_key->MemoryUsage() +
                   (probe_resident ? 0 : probe_key->MemoryUsage()) +
                   keep.size() * sizeof(index_t);
  cost.rand_bytes = (build_key->length() + probe_key->length()) * 4;
  cost.rows = build_key->length() + probe_key->length();
  cost.ops_per_row = 4.0;  // kProbes hash probes
  cost.launches = 0;       // runs inside the fused stage's single pass
  ctx.Charge(sim::OpCategory::kJoin, cost);
  return keep;
}

}  // namespace sirius::gdf
