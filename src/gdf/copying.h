// Copying kernels: gather, gather-with-nulls, concatenate, slice.
// The GDF analogue of cudf::gather / cudf::concatenate.

#pragma once

#include "common/result.h"
#include "format/table.h"
#include "gdf/context.h"

namespace sirius::gdf {

/// \brief Gathers rows of `col` at `indices` into a new column.
/// All indices must be in [0, col.length).
Result<format::ColumnPtr> GatherColumn(const Context& ctx,
                                       const format::ColumnPtr& col,
                                       const std::vector<index_t>& indices);

/// Gather where a negative index produces a NULL output slot (used to
/// materialize the unmatched side of outer joins).
Result<format::ColumnPtr> GatherColumnWithNulls(const Context& ctx,
                                                const format::ColumnPtr& col,
                                                const std::vector<index_t>& indices);

/// \brief Gather without charging the cost model: the caller has already
/// priced the access (fused selected reads price the cheaper of a sequential
/// scan or random fetches — see selection.h). Bounds-checked; negative
/// indices produce NULLs only when `nulls_for_negative` is set.
Result<format::ColumnPtr> GatherColumnUncharged(const Context& ctx,
                                                const format::ColumnPtr& col,
                                                const std::vector<index_t>& indices,
                                                bool nulls_for_negative = false);

/// Gathers all columns of a table. Charges one kJoin-free "scan" pass;
/// callers that gather as part of a join/filter pass their own category.
Result<format::TablePtr> GatherTable(const Context& ctx,
                                     const format::TablePtr& table,
                                     const std::vector<index_t>& indices,
                                     sim::OpCategory charge_as = sim::OpCategory::kProject,
                                     bool nulls_for_negative = false);

/// Vertically concatenates tables with identical schemas.
Result<format::TablePtr> ConcatTables(const Context& ctx,
                                      const std::vector<format::TablePtr>& tables);

/// Rows [offset, offset+length) of a table as a new (copied) table.
Result<format::TablePtr> SliceTable(const Context& ctx,
                                    const format::TablePtr& table, size_t offset,
                                    size_t length);

}  // namespace sirius::gdf
