// Hash join kernels (cudf::inner_join / left_join / semi/anti analogues),
// with optional residual (non-equi) predicates evaluated over candidate
// pairs — needed for decorrelated TPC-H Q21-style EXISTS subqueries.

#pragma once

#include <optional>

#include "common/result.h"
#include "expr/expr.h"
#include "format/table.h"
#include "gdf/context.h"

namespace sirius::gdf {

enum class JoinType {
  kInner,
  kLeft,   ///< left outer: unmatched left rows pair with right index -1
  kSemi,   ///< left rows with >=1 match (EXISTS)
  kAnti,   ///< left rows with no match (NOT EXISTS)
};

const char* JoinTypeName(JoinType t);

/// \brief Matching row-index pairs produced by a join.
///
/// For kSemi/kAnti only `left_indices` is populated. For kLeft a right index
/// of -1 marks an unmatched left row.
struct JoinResult {
  std::vector<index_t> left_indices;
  std::vector<index_t> right_indices;
};

/// \brief Options for HashJoin.
struct JoinOptions {
  JoinType type = JoinType::kInner;
  /// Residual predicate over the concatenated (left ++ right) schema,
  /// evaluated on candidate equi-key pairs. Must be bound against
  /// that combined schema. Null = pure equi join.
  const expr::Expr* residual = nullptr;
  /// Full input tables; required when `residual` is set.
  format::TablePtr left_table;
  format::TablePtr right_table;
};

/// \brief Hash join: builds on `right_keys`, probes with `left_keys`.
///
/// Key columns must be positionally type-compatible. NULL keys never match
/// (SQL join semantics). Charges kJoin with build + probe traffic.
Result<JoinResult> HashJoin(const Context& ctx,
                            const std::vector<format::ColumnPtr>& left_keys,
                            const std::vector<format::ColumnPtr>& right_keys,
                            const JoinOptions& options);

/// Cross join (used for uncorrelated scalar-subquery plans where one side is
/// a single row). Emits every pair; intended for tiny inputs.
Result<JoinResult> CrossJoin(const Context& ctx, size_t left_rows,
                             size_t right_rows);

}  // namespace sirius::gdf
