#include "gdf/filter.h"

#include "gdf/copying.h"

namespace sirius::gdf {

namespace {

Result<std::vector<index_t>> MaskToIndicesImpl(const Context& ctx,
                                               const format::ColumnPtr& mask,
                                               int launches) {
  if (mask->type().id != format::TypeId::kBool) {
    return Status::TypeError("boolean mask required, got " +
                             mask->type().ToString());
  }
  const size_t n = mask->length();
  std::vector<index_t> out;
  out.reserve(n / 2);
  const uint8_t* vals = mask->data<uint8_t>();
  for (size_t i = 0; i < n; ++i) {
    if (vals[i] != 0 && !mask->IsNull(i)) out.push_back(static_cast<index_t>(i));
  }
  sim::KernelCost cost;
  cost.seq_bytes = n + out.size() * sizeof(index_t);
  cost.rows = n;
  cost.launches = launches;
  ctx.Charge(sim::OpCategory::kFilter, cost);
  return out;
}

}  // namespace

Result<std::vector<index_t>> MaskToIndices(const Context& ctx,
                                           const format::ColumnPtr& mask) {
  return MaskToIndicesImpl(ctx, mask, /*launches=*/1);
}

Result<std::vector<index_t>> MaskToSelection(const Context& ctx,
                                             const format::ColumnPtr& mask) {
  return MaskToIndicesImpl(ctx, mask, /*launches=*/0);
}

Result<format::TablePtr> ApplyBooleanMask(const Context& ctx,
                                          const format::TablePtr& table,
                                          const format::ColumnPtr& mask) {
  if (mask->length() != table->num_rows()) {
    return Status::Invalid("mask length != table rows");
  }
  SIRIUS_ASSIGN_OR_RETURN(std::vector<index_t> indices, MaskToIndices(ctx, mask));
  return GatherTable(ctx, table, indices, sim::OpCategory::kFilter);
}

}  // namespace sirius::gdf
