// Hash partitioning (cudf::hash_partition) — the kernel behind shuffle
// exchange in distributed Sirius (§3.2.4).

#pragma once

#include "common/result.h"
#include "format/table.h"
#include "gdf/context.h"

namespace sirius::gdf {

/// \brief Splits `table` into `num_partitions` tables by hash of the key
/// columns. Rows with NULL keys land in partition 0.
Result<std::vector<format::TablePtr>> HashPartition(
    const Context& ctx, const format::TablePtr& table,
    const std::vector<int>& key_columns, size_t num_partitions);

}  // namespace sirius::gdf
