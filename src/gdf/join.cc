#include "gdf/join.h"

#include "common/bitutil.h"
#include "expr/eval.h"
#include "gdf/copying.h"
#include "gdf/row_ops.h"

namespace sirius::gdf {

using format::ColumnPtr;
using format::TablePtr;

const char* JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner:
      return "inner";
    case JoinType::kLeft:
      return "left";
    case JoinType::kSemi:
      return "semi";
    case JoinType::kAnti:
      return "anti";
  }
  return "?";
}

namespace {

/// Chained open-addressing hash table over build-side key rows.
class BuildTable {
 public:
  BuildTable(const RowOps& keys, size_t num_rows)
      : keys_(keys),
        capacity_(bit::NextPow2(std::max<uint64_t>(16, num_rows * 2))),
        slots_(capacity_, -1),
        next_(num_rows, -1) {
    for (size_t i = 0; i < num_rows; ++i) Insert(i);
  }

  /// First build row matching probe row `j` under `probe_keys`, or -1.
  index_t FindFirst(const RowOps& probe_keys, size_t j) const {
    if (probe_keys.AnyNull(j)) return -1;
    uint64_t h = probe_keys.Hash(j);
    size_t slot = h & (capacity_ - 1);
    for (;;) {
      index_t head = slots_[slot];
      if (head < 0) return -1;
      if (probe_keys.EqualsNullEqual(j, keys_, static_cast<size_t>(head))) {
        return head;
      }
      slot = (slot + 1) & (capacity_ - 1);
    }
  }

  /// Next build row in the duplicate chain after `row`, or -1.
  index_t NextMatch(index_t row) const { return next_[static_cast<size_t>(row)]; }

 private:
  void Insert(size_t i) {
    if (keys_.AnyNull(i)) return;  // NULL keys never match
    uint64_t h = keys_.Hash(i);
    size_t slot = h & (capacity_ - 1);
    for (;;) {
      index_t head = slots_[slot];
      if (head < 0) {
        slots_[slot] = static_cast<index_t>(i);
        return;
      }
      if (keys_.EqualsNullEqual(i, keys_, static_cast<size_t>(head))) {
        // Duplicate key: chain in front, preserving the slot as the head.
        next_[i] = next_[static_cast<size_t>(head)];
        next_[static_cast<size_t>(head)] = static_cast<index_t>(i);
        return;
      }
      slot = (slot + 1) & (capacity_ - 1);
    }
  }

  const RowOps& keys_;
  uint64_t capacity_;
  std::vector<index_t> slots_;
  std::vector<index_t> next_;
};

/// Evaluates the residual predicate over candidate pairs; returns a byte
/// mask (1 = pair survives).
Result<std::vector<uint8_t>> EvalResidual(const Context& ctx,
                                          const JoinOptions& options,
                                          const std::vector<index_t>& l,
                                          const std::vector<index_t>& r) {
  if (options.left_table == nullptr || options.right_table == nullptr) {
    return Status::Invalid("residual join requires left/right tables");
  }
  SIRIUS_ASSIGN_OR_RETURN(
      TablePtr lt, GatherTable(ctx, options.left_table, l, sim::OpCategory::kJoin));
  SIRIUS_ASSIGN_OR_RETURN(
      TablePtr rt, GatherTable(ctx, options.right_table, r, sim::OpCategory::kJoin));
  // Concatenate columns into the combined (left ++ right) schema.
  format::Schema schema;
  std::vector<ColumnPtr> cols;
  for (size_t c = 0; c < lt->num_columns(); ++c) {
    schema.AddField(lt->schema().field(c));
    cols.push_back(lt->column(c));
  }
  for (size_t c = 0; c < rt->num_columns(); ++c) {
    schema.AddField(rt->schema().field(c));
    cols.push_back(rt->column(c));
  }
  SIRIUS_ASSIGN_OR_RETURN(TablePtr pairs,
                          format::Table::Make(schema, std::move(cols)));
  SIRIUS_ASSIGN_OR_RETURN(ColumnPtr mask, expr::Evaluate(*options.residual, *pairs));
  sim::KernelCost cost;
  cost.rows = l.size();
  cost.ops_per_row = options.residual->OpCount();
  cost.seq_bytes = l.size() * 16;
  ctx.Charge(sim::OpCategory::kJoin, cost);

  std::vector<uint8_t> out(l.size(), 0);
  const uint8_t* vals = mask->data<uint8_t>();
  for (size_t i = 0; i < l.size(); ++i) {
    out[i] = (vals[i] != 0 && !mask->IsNull(i)) ? 1 : 0;
  }
  return out;
}

uint64_t KeyBytesPerRow(const std::vector<ColumnPtr>& keys) {
  uint64_t w = 0;
  for (const auto& k : keys) w += k->type().byte_width();
  return w;
}

}  // namespace

Result<JoinResult> HashJoin(const Context& ctx,
                            const std::vector<ColumnPtr>& left_keys,
                            const std::vector<ColumnPtr>& right_keys,
                            const JoinOptions& options) {
  if (left_keys.size() != right_keys.size() || left_keys.empty()) {
    return Status::Invalid("HashJoin: key count mismatch or empty keys");
  }
  const size_t build_rows = right_keys[0]->length();
  const size_t probe_rows = left_keys[0]->length();

  RowOps build_ops(right_keys);
  RowOps probe_ops(left_keys);
  BuildTable ht(build_ops, build_rows);

  // Candidate generation.
  std::vector<index_t> cand_l, cand_r;
  // Probe-side rows with at least one candidate (for anti/left tracking).
  std::vector<uint8_t> has_candidate(probe_rows, 0);
  for (size_t j = 0; j < probe_rows; ++j) {
    index_t m = ht.FindFirst(probe_ops, j);
    while (m >= 0) {
      has_candidate[j] = 1;
      cand_l.push_back(static_cast<index_t>(j));
      cand_r.push_back(m);
      if (options.residual == nullptr &&
          (options.type == JoinType::kSemi || options.type == JoinType::kAnti)) {
        break;  // existence established; no need for more candidates
      }
      m = ht.NextMatch(m);
    }
  }

  // Charge build + probe + output traffic. Probe keys delivered
  // register-resident by an active fused pass skip the sequential re-read
  // (the hash-table random accesses below are real either way).
  bool probe_resident = ctx.fused_reads != nullptr && !left_keys.empty();
  for (const auto& k : left_keys) {
    probe_resident = probe_resident && ctx.fused_reads->count(k.get()) > 0;
  }
  const uint64_t key_w = KeyBytesPerRow(right_keys);
  sim::KernelCost cost;
  cost.rand_bytes = build_rows * (key_w + 8) + probe_rows * (key_w + 8);
  cost.seq_bytes = build_rows * key_w +
                   (probe_resident ? 0 : probe_rows * key_w) +
                   cand_l.size() * 2 * sizeof(index_t);
  cost.rows = build_rows + probe_rows + cand_l.size();
  cost.ops_per_row = 2.0 * right_keys.size();
  cost.launches = 2;  // build kernel + probe kernel
  ctx.Charge(sim::OpCategory::kJoin, cost);

  // Residual filtering.
  std::vector<uint8_t> pass;
  if (options.residual != nullptr) {
    SIRIUS_ASSIGN_OR_RETURN(pass, EvalResidual(ctx, options, cand_l, cand_r));
  } else {
    pass.assign(cand_l.size(), 1);
  }

  JoinResult result;
  switch (options.type) {
    case JoinType::kInner: {
      for (size_t i = 0; i < cand_l.size(); ++i) {
        if (pass[i]) {
          result.left_indices.push_back(cand_l[i]);
          result.right_indices.push_back(cand_r[i]);
        }
      }
      return result;
    }
    case JoinType::kLeft: {
      std::vector<uint8_t> matched(probe_rows, 0);
      for (size_t i = 0; i < cand_l.size(); ++i) {
        if (pass[i]) {
          matched[static_cast<size_t>(cand_l[i])] = 1;
          result.left_indices.push_back(cand_l[i]);
          result.right_indices.push_back(cand_r[i]);
        }
      }
      for (size_t j = 0; j < probe_rows; ++j) {
        if (!matched[j]) {
          result.left_indices.push_back(static_cast<index_t>(j));
          result.right_indices.push_back(-1);
        }
      }
      return result;
    }
    case JoinType::kSemi: {
      std::vector<uint8_t> keep(probe_rows, 0);
      for (size_t i = 0; i < cand_l.size(); ++i) {
        if (pass[i]) keep[static_cast<size_t>(cand_l[i])] = 1;
      }
      for (size_t j = 0; j < probe_rows; ++j) {
        if (keep[j]) result.left_indices.push_back(static_cast<index_t>(j));
      }
      return result;
    }
    case JoinType::kAnti: {
      std::vector<uint8_t> keep(probe_rows, 1);
      for (size_t i = 0; i < cand_l.size(); ++i) {
        if (pass[i]) keep[static_cast<size_t>(cand_l[i])] = 0;
      }
      for (size_t j = 0; j < probe_rows; ++j) {
        if (keep[j]) result.left_indices.push_back(static_cast<index_t>(j));
      }
      return result;
    }
  }
  return Status::Internal("unknown join type");
}

Result<JoinResult> CrossJoin(const Context& ctx, size_t left_rows,
                             size_t right_rows) {
  JoinResult result;
  result.left_indices.reserve(left_rows * right_rows);
  result.right_indices.reserve(left_rows * right_rows);
  for (size_t i = 0; i < left_rows; ++i) {
    for (size_t j = 0; j < right_rows; ++j) {
      result.left_indices.push_back(static_cast<index_t>(i));
      result.right_indices.push_back(static_cast<index_t>(j));
    }
  }
  sim::KernelCost cost;
  cost.rows = left_rows * right_rows;
  cost.seq_bytes = cost.rows * 2 * sizeof(index_t);
  ctx.Charge(sim::OpCategory::kJoin, cost);
  return result;
}

}  // namespace sirius::gdf
