// ASOF join kernel (paper §3.4 lists ASOF joins among the planned advanced
// operators). Matches each left row with the latest right row whose ordering
// key is <= the left one, optionally within equality ("by") groups — the
// trades-join-quotes pattern of time-series analytics.

#pragma once

#include "common/result.h"
#include "format/table.h"
#include "gdf/context.h"
#include "gdf/join.h"

namespace sirius::gdf {

/// \brief ASOF (backward) join.
///
/// For each left row i: among right rows j with equal "by" keys and
/// right_on[j] <= left_on[i], picks the one with the greatest right_on[j].
/// Unmatched left rows pair with -1 (left-outer semantics). `left_on` /
/// `right_on` must be orderable (numeric/date); `by` keys may be empty.
/// Charges kJoin with a sort + binary-search cost.
Result<JoinResult> AsofJoin(const Context& ctx,
                            const format::ColumnPtr& left_on,
                            const format::ColumnPtr& right_on,
                            const std::vector<format::ColumnPtr>& left_by,
                            const std::vector<format::ColumnPtr>& right_by);

}  // namespace sirius::gdf
