// Filter kernels: boolean-mask application (cudf::apply_boolean_mask).

#pragma once

#include "common/result.h"
#include "format/table.h"
#include "gdf/context.h"

namespace sirius::gdf {

/// Indices of rows where `mask` is true (NULL counts as false).
Result<std::vector<index_t>> MaskToIndices(const Context& ctx,
                                           const format::ColumnPtr& mask);

/// \brief Fused-pass variant of MaskToIndices: the same compaction, charged
/// with zero launches — the predicate compare and the compaction run inside
/// the enclosing fused stage's single pass, so only the data traffic counts.
Result<std::vector<index_t>> MaskToSelection(const Context& ctx,
                                             const format::ColumnPtr& mask);

/// \brief Keeps rows of `table` where the boolean `mask` is true.
/// Charges a kFilter pass (mask scan + compaction gather).
Result<format::TablePtr> ApplyBooleanMask(const Context& ctx,
                                          const format::TablePtr& table,
                                          const format::ColumnPtr& mask);

}  // namespace sirius::gdf
