#include "gdf/groupby.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <unordered_set>

#include "common/bitutil.h"
#include "format/builder.h"
#include "gdf/row_ops.h"

namespace sirius::gdf {

using format::Column;
using format::ColumnPtr;
using format::DataType;
using format::DecimalPow10;
using format::TablePtr;
using format::TypeId;

const char* AggKindName(AggKind k) {
  switch (k) {
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kCount:
      return "count";
    case AggKind::kCountStar:
      return "count_star";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kCountDistinct:
      return "count_distinct";
  }
  return "?";
}

format::DataType AggOutputType(AggKind kind, const DataType& in) {
  switch (kind) {
    case AggKind::kSum:
      if (in.id == TypeId::kFloat64) return format::Float64();
      if (in.is_decimal()) return in;
      return format::Int64();
    case AggKind::kMin:
    case AggKind::kMax:
      return in;
    case AggKind::kCount:
    case AggKind::kCountStar:
    case AggKind::kCountDistinct:
      return format::Int64();
    case AggKind::kAvg:
      return format::Float64();
  }
  return format::Int64();
}

namespace {

/// Maps each row to a dense group id. Returns group count; fills group_of
/// (per row) and representative row per group.
size_t AssignGroupsHash(const RowOps& keys, size_t n, std::vector<int64_t>* group_of,
                        std::vector<index_t>* rep_rows) {
  const uint64_t capacity = bit::NextPow2(std::max<uint64_t>(16, n * 2));
  std::vector<int64_t> slots(capacity, -1);  // group id stored per slot
  group_of->assign(n, -1);
  rep_rows->clear();
  for (size_t i = 0; i < n; ++i) {
    uint64_t h = keys.Hash(i);
    size_t slot = h & (capacity - 1);
    for (;;) {
      int64_t gid = slots[slot];
      if (gid < 0) {
        gid = static_cast<int64_t>(rep_rows->size());
        slots[slot] = gid;
        rep_rows->push_back(static_cast<index_t>(i));
        (*group_of)[i] = gid;
        break;
      }
      if (keys.EqualsNullEqual(i, keys, static_cast<size_t>((*rep_rows)[gid]))) {
        (*group_of)[i] = gid;
        break;
      }
      slot = (slot + 1) & (capacity - 1);
    }
  }
  return rep_rows->size();
}

/// Sort-based group assignment: stable-sorts row indices by key and segments
/// equal runs. Used for string keys (libcudf behaviour) and charged as the
/// more expensive path.
size_t AssignGroupsSort(const RowOps& keys, size_t n, std::vector<int64_t>* group_of,
                        std::vector<index_t>* rep_rows) {
  std::vector<index_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<index_t>(i);
  std::vector<bool> no_desc;
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return keys.Compare(static_cast<size_t>(a), static_cast<size_t>(b), no_desc) < 0;
  });
  group_of->assign(n, -1);
  rep_rows->clear();
  for (size_t k = 0; k < n; ++k) {
    size_t row = static_cast<size_t>(order[k]);
    if (k == 0 ||
        !keys.EqualsNullEqual(row, keys, static_cast<size_t>(order[k - 1]))) {
      rep_rows->push_back(static_cast<index_t>(row));
    }
    (*group_of)[row] = static_cast<int64_t>(rep_rows->size()) - 1;
  }
  return rep_rows->size();
}

struct NumericView {
  bool is_double = false;
  const int64_t* i64 = nullptr;
  const int32_t* i32 = nullptr;
  const double* f64 = nullptr;
  const uint8_t* b8 = nullptr;

  double AsDouble(size_t k, int scale) const {
    if (is_double) return f64[k];
    return static_cast<double>(Raw(k)) / static_cast<double>(DecimalPow10(scale));
  }
  int64_t Raw(size_t k) const {
    if (i64 != nullptr) return i64[k];
    if (i32 != nullptr) return i32[k];
    if (b8 != nullptr) return b8[k];
    return 0;
  }
};

NumericView ViewOf(const Column& col) {
  NumericView v;
  switch (col.type().id) {
    case TypeId::kFloat64:
      v.is_double = true;
      v.f64 = col.data<double>();
      break;
    case TypeId::kInt64:
    case TypeId::kDecimal64:
      v.i64 = col.data<int64_t>();
      break;
    case TypeId::kInt32:
    case TypeId::kDate32:
      v.i32 = col.data<int32_t>();
      break;
    case TypeId::kBool:
      v.b8 = col.data<uint8_t>();
      break;
    case TypeId::kString:
    case TypeId::kList:
      break;
  }
  return v;
}

}  // namespace

Result<TablePtr> GroupByAggregate(const Context& ctx,
                                  const std::vector<ColumnPtr>& keys,
                                  const std::vector<std::string>& key_names,
                                  const TablePtr& values,
                                  const std::vector<AggRequest>& aggs) {
  if (keys.size() != key_names.size()) {
    return Status::Invalid("GroupByAggregate: key/name count mismatch");
  }
  const size_t n = values->num_rows();
  for (const auto& k : keys) {
    if (k->length() != n) {
      return Status::Invalid("GroupByAggregate: key length != values rows");
    }
  }

  // --- Group assignment ---
  std::vector<int64_t> group_of;
  std::vector<index_t> rep_rows;
  size_t num_groups;
  bool has_string_key = false;
  for (const auto& k : keys) has_string_key |= k->type().is_string();

  // Columns delivered register-resident by an active fused pass cost
  // nothing to read again; the hash-table and accumulator random traffic
  // below is real either way.
  auto cold_bytes = [&ctx](const ColumnPtr& c) -> uint64_t {
    if (ctx.fused_reads != nullptr && ctx.fused_reads->count(c.get()) > 0) {
      return 0;
    }
    return c->MemoryUsage();
  };

  uint64_t key_bytes = 0;
  uint64_t key_seq_bytes = 0;
  for (const auto& k : keys) {
    key_bytes += k->MemoryUsage();
    key_seq_bytes += cold_bytes(k);
  }

  if (keys.empty()) {
    num_groups = n > 0 ? 1 : 1;  // global aggregate always yields one row
    group_of.assign(n, 0);
  } else {
    RowOps ops(keys);
    if (has_string_key) {
      // libcudf: sort-based group-by for string keys (§4.2). Charge the
      // n log n sort passes over the key data.
      num_groups = AssignGroupsSort(ops, n, &group_of, &rep_rows);
      double logn = n > 2 ? std::log2(static_cast<double>(n)) : 1.0;
      sim::KernelCost cost;
      cost.seq_bytes = static_cast<uint64_t>(key_bytes * logn);
      cost.rows = static_cast<uint64_t>(n * logn);
      cost.ops_per_row = 2.0;
      cost.launches = 4;
      ctx.Charge(sim::OpCategory::kGroupBy, cost);
    } else {
      num_groups = AssignGroupsHash(ops, n, &group_of, &rep_rows);
      sim::KernelCost cost;
      cost.rand_bytes = n * (key_bytes / std::max<size_t>(1, n) + 8);
      cost.seq_bytes = key_seq_bytes;
      cost.rows = n;
      cost.ops_per_row = 2.0;
      cost.launches = 2;
      ctx.Charge(sim::OpCategory::kGroupBy, cost);
      // GPU few-group contention: atomics on a handful of accumulator cells
      // serialize warps (§4.2, Q1). A fused sink privatizes the accumulators
      // per thread block, so the contended global atomics never happen there.
      if (ctx.sim.device.is_gpu() && num_groups > 0 && num_groups < 1024 &&
          ctx.fused_reads == nullptr) {
        double contention_ns = 0.25 * (1.0 - static_cast<double>(num_groups) / 1024.0);
        ctx.sim.ChargeSeconds(
            sim::OpCategory::kGroupBy,
            static_cast<double>(n) * ctx.sim.data_scale * contention_ns * 1e-9);
      }
    }
  }

  // --- Aggregate accumulation ---
  const size_t g = num_groups;
  struct AggState {
    std::vector<double> dsum;
    std::vector<int64_t> isum;
    std::vector<int64_t> count;
    std::vector<index_t> best_row;           // min/max representative
    std::vector<std::set<int64_t>> iset;     // count distinct (ints)
    std::vector<std::set<std::string>> sset; // count distinct (strings)
  };
  std::vector<AggState> states(aggs.size());

  uint64_t value_bytes = 0;
  for (size_t a = 0; a < aggs.size(); ++a) {
    const AggRequest& req = aggs[a];
    AggState& st = states[a];
    const bool need_col = req.kind != AggKind::kCountStar;
    if (need_col &&
        (req.column < 0 || static_cast<size_t>(req.column) >= values->num_columns())) {
      return Status::Invalid("GroupByAggregate: bad value column index");
    }
    const ColumnPtr col = need_col ? values->column(req.column) : nullptr;
    if (col != nullptr) value_bytes += cold_bytes(col);
    if ((req.kind == AggKind::kSum || req.kind == AggKind::kAvg) &&
        !col->type().is_numeric()) {
      return Status::TypeError(std::string(AggKindName(req.kind)) +
                               " requires a numeric argument, got " +
                               col->type().ToString());
    }

    switch (req.kind) {
      case AggKind::kCountStar: {
        st.count.assign(g, 0);
        for (size_t i = 0; i < n; ++i) ++st.count[group_of[i]];
        break;
      }
      case AggKind::kCount: {
        st.count.assign(g, 0);
        for (size_t i = 0; i < n; ++i) {
          if (!col->IsNull(i)) ++st.count[group_of[i]];
        }
        break;
      }
      case AggKind::kSum:
      case AggKind::kAvg: {
        st.count.assign(g, 0);
        if (col->type().id == TypeId::kFloat64 || req.kind == AggKind::kAvg) {
          st.dsum.assign(g, 0.0);
        }
        if (col->type().id != TypeId::kFloat64) st.isum.assign(g, 0);
        NumericView v = ViewOf(*col);
        const int scale = col->type().scale;
        for (size_t i = 0; i < n; ++i) {
          if (col->IsNull(i)) continue;
          int64_t gid = group_of[i];
          ++st.count[gid];
          if (!st.isum.empty()) st.isum[gid] += v.Raw(i);
          if (!st.dsum.empty()) st.dsum[gid] += v.AsDouble(i, scale);
        }
        break;
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        st.best_row.assign(g, -1);
        const bool want_min = req.kind == AggKind::kMin;
        for (size_t i = 0; i < n; ++i) {
          if (col->IsNull(i)) continue;
          int64_t gid = group_of[i];
          if (st.best_row[gid] < 0) {
            st.best_row[gid] = static_cast<index_t>(i);
            continue;
          }
          int c = ValueCompare(*col, i, *col, static_cast<size_t>(st.best_row[gid]));
          if ((want_min && c < 0) || (!want_min && c > 0)) {
            st.best_row[gid] = static_cast<index_t>(i);
          }
        }
        break;
      }
      case AggKind::kCountDistinct: {
        if (col->type().is_string()) {
          st.sset.assign(g, {});
          for (size_t i = 0; i < n; ++i) {
            if (!col->IsNull(i)) {
              st.sset[group_of[i]].insert(std::string(col->StringAt(i)));
            }
          }
        } else {
          st.iset.assign(g, {});
          NumericView v = ViewOf(*col);
          for (size_t i = 0; i < n; ++i) {
            if (!col->IsNull(i)) st.iset[group_of[i]].insert(v.Raw(i));
          }
        }
        break;
      }
    }
  }

  sim::KernelCost agg_cost;
  agg_cost.seq_bytes = value_bytes;
  const size_t naggs = std::max<size_t>(1, aggs.size());
  if (ctx.fused_reads != nullptr && g <= 1024) {
    // Fused sink with few groups: each thread block accumulates into
    // privatized registers/shared memory and flushes one partial per group,
    // so HBM sees per-block partials instead of per-row atomic updates.
    const uint64_t blocks = (n + 1023) / 1024;
    agg_cost.rand_bytes = std::max<uint64_t>(1, blocks) * g * 8 * naggs;
  } else {
    agg_cost.rand_bytes = n * 8 * naggs;
  }
  agg_cost.rows = n * std::max<size_t>(1, aggs.size());
  agg_cost.launches = static_cast<int>(aggs.size());
  ctx.Charge(keys.empty() ? sim::OpCategory::kAggregate : sim::OpCategory::kGroupBy,
             agg_cost);

  // --- Materialize output ---
  format::Schema schema;
  std::vector<ColumnPtr> out_cols;
  for (size_t k = 0; k < keys.size(); ++k) {
    schema.AddField({key_names[k], keys[k]->type()});
    format::ColumnBuilder b(keys[k]->type());
    b.Reserve(g);
    for (size_t gid = 0; gid < g; ++gid) {
      SIRIUS_RETURN_NOT_OK(
          b.AppendScalar(keys[k]->GetScalar(static_cast<size_t>(rep_rows[gid]))));
    }
    out_cols.push_back(b.Finish());
  }

  for (size_t a = 0; a < aggs.size(); ++a) {
    const AggRequest& req = aggs[a];
    const AggState& st = states[a];
    const ColumnPtr col =
        req.kind == AggKind::kCountStar ? nullptr : values->column(req.column);
    DataType out_type =
        AggOutputType(req.kind, col ? col->type() : format::Int64());
    schema.AddField({req.name, out_type});
    format::ColumnBuilder b(out_type);
    b.Reserve(g);
    for (size_t gid = 0; gid < g; ++gid) {
      switch (req.kind) {
        case AggKind::kCountStar:
        case AggKind::kCount:
          b.AppendInt(st.count[gid]);
          break;
        case AggKind::kCountDistinct:
          b.AppendInt(static_cast<int64_t>(
              col->type().is_string() ? st.sset[gid].size() : st.iset[gid].size()));
          break;
        case AggKind::kSum:
          if (st.count[gid] == 0) {
            b.AppendNull();
          } else if (out_type.id == TypeId::kFloat64) {
            b.AppendDouble(st.dsum[gid]);
          } else {
            b.AppendInt(st.isum[gid]);
          }
          break;
        case AggKind::kAvg:
          if (st.count[gid] == 0) {
            b.AppendNull();
          } else {
            b.AppendDouble(st.dsum[gid] / static_cast<double>(st.count[gid]));
          }
          break;
        case AggKind::kMin:
        case AggKind::kMax:
          if (st.best_row[gid] < 0) {
            b.AppendNull();
          } else {
            SIRIUS_RETURN_NOT_OK(b.AppendScalar(
                col->GetScalar(static_cast<size_t>(st.best_row[gid]))));
          }
          break;
      }
    }
    out_cols.push_back(b.Finish());
  }

  return format::Table::Make(std::move(schema), std::move(out_cols));
}

Result<TablePtr> GroupByAggregateView(const Context& ctx,
                                      const SelectionView& view,
                                      const std::vector<int>& key_columns,
                                      const std::vector<std::string>& key_names,
                                      const std::vector<AggRequest>& aggs) {
  std::vector<ColumnPtr> keys;
  keys.reserve(key_columns.size());
  for (int c : key_columns) {
    SIRIUS_ASSIGN_OR_RETURN(
        ColumnPtr k, GatherViewColumn(ctx, view, c, sim::OpCategory::kGroupBy));
    keys.push_back(std::move(k));
  }

  // Compact values table: each distinct aggregate argument gathered once,
  // with the requests remapped onto compact positions.
  std::vector<ColumnPtr> vals;
  format::Schema vschema;
  std::map<int, int> remap;
  std::vector<AggRequest> remapped = aggs;
  for (auto& req : remapped) {
    if (req.kind == AggKind::kCountStar || req.column < 0) {
      req.column = -1;
      continue;
    }
    auto it = remap.find(req.column);
    if (it == remap.end()) {
      SIRIUS_ASSIGN_OR_RETURN(
          ColumnPtr v,
          GatherViewColumn(ctx, view, req.column, sim::OpCategory::kGroupBy));
      it = remap.emplace(req.column, static_cast<int>(vals.size())).first;
      vschema.AddField({"v" + std::to_string(req.column), v->type()});
      vals.push_back(std::move(v));
    }
    req.column = it->second;
  }
  if (vals.empty()) {
    // count(*)-only aggregates: GroupByAggregate takes its row count from
    // the values table, so carry a zero-width-equivalent dummy along.
    vals.push_back(format::Column::FromInt64(
        std::vector<int64_t>(view.num_rows(), 0)));
    vschema.AddField({"rows", format::Int64()});
  }
  SIRIUS_ASSIGN_OR_RETURN(TablePtr values,
                          format::Table::Make(std::move(vschema), std::move(vals)));
  return GroupByAggregate(ctx, keys, key_names, values, remapped);
}

Result<std::vector<index_t>> DistinctIndices(const Context& ctx,
                                             const std::vector<ColumnPtr>& keys) {
  if (keys.empty()) return Status::Invalid("DistinctIndices: no keys");
  const size_t n = keys[0]->length();
  RowOps ops(keys);
  std::vector<int64_t> group_of;
  std::vector<index_t> rep_rows;
  AssignGroupsHash(ops, n, &group_of, &rep_rows);

  uint64_t key_bytes = 0;
  for (const auto& k : keys) key_bytes += k->MemoryUsage();
  sim::KernelCost cost;
  cost.seq_bytes = key_bytes;
  cost.rand_bytes = n * 8;
  cost.rows = n;
  ctx.Charge(sim::OpCategory::kGroupBy, cost);
  return rep_rows;
}

}  // namespace sirius::gdf
