// Vector similarity search (paper §3.4 lists vector search among the
// planned advanced operators — a natural GPU-native workload).

#pragma once

#include "common/result.h"
#include "format/table.h"
#include "gdf/context.h"

namespace sirius::gdf {

enum class Metric : uint8_t {
  kL2,      ///< negative squared Euclidean distance (higher = closer)
  kDot,     ///< inner product
  kCosine,  ///< cosine similarity
};

const char* MetricName(Metric m);

/// \brief Top-k rows of a brute-force similarity scan.
struct TopKResult {
  /// Row indices, best first.
  std::vector<index_t> indices;
  /// Matching similarity scores (higher = more similar for every metric).
  std::vector<double> scores;
};

/// \brief Scores every row of a LIST<FLOAT64> embedding column against
/// `query` and returns the k most similar rows.
///
/// Rows whose embedding is NULL or of a different dimensionality than the
/// query are skipped. Charges kScan + a compute-heavy kOther term — the
/// bandwidth*FLOP profile GPUs excel at.
Result<TopKResult> VectorTopK(const Context& ctx,
                              const format::ColumnPtr& embeddings,
                              const std::vector<double>& query, size_t k,
                              Metric metric = Metric::kCosine);

}  // namespace sirius::gdf
