// Group-by aggregation kernels.
//
// Mirrors libcudf's behaviour the paper calls out (§4.2): group-by with
// string keys takes a sort-based path (slower than hash-based), and
// GPU hash aggregation with very few distinct groups pays a memory
// contention penalty. Both effects are modeled in the charged cost.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "format/table.h"
#include "gdf/context.h"
#include "gdf/selection.h"

namespace sirius::gdf {

enum class AggKind : uint8_t {
  kSum,
  kMin,
  kMax,
  kCount,          ///< count(expr): non-null rows
  kCountStar,      ///< count(*)
  kAvg,
  kCountDistinct,  ///< count(distinct expr)
};

const char* AggKindName(AggKind k);

/// \brief One aggregate to compute.
struct AggRequest {
  AggKind kind = AggKind::kCountStar;
  /// Index of the value column in the `values` table (-1 for count(*)).
  int column = -1;
  /// Output field name.
  std::string name;
};

/// Result type of an aggregate over an input of type `in`.
format::DataType AggOutputType(AggKind kind, const format::DataType& in);

/// \brief Groups `keys` rows and computes `aggs` over `values`.
///
/// Output schema: key columns (named `key_names`) followed by one column per
/// aggregate. With empty `keys`, produces a single global-aggregate row.
/// Group-by semantics: NULL keys form their own group.
Result<format::TablePtr> GroupByAggregate(
    const Context& ctx, const std::vector<format::ColumnPtr>& keys,
    const std::vector<std::string>& key_names, const format::TablePtr& values,
    const std::vector<AggRequest>& aggs);

/// \brief Fused-sink variant of GroupByAggregate: keys and aggregate
/// arguments are read through `view`'s selection (only the referenced
/// columns are gathered, each priced as a fused read), so the group-by is
/// the chain's materialization point instead of a gathered intermediate.
/// `key_columns` and each AggRequest::column index the view's global
/// columns; aggregate columns are remapped onto the compact values table
/// internally.
Result<format::TablePtr> GroupByAggregateView(
    const Context& ctx, const SelectionView& view,
    const std::vector<int>& key_columns,
    const std::vector<std::string>& key_names,
    const std::vector<AggRequest>& aggs);

/// First-occurrence row indices of each distinct key combination, in
/// first-seen order (SELECT DISTINCT).
Result<std::vector<index_t>> DistinctIndices(
    const Context& ctx, const std::vector<format::ColumnPtr>& keys);

}  // namespace sirius::gdf
