#include "gdf/selection.h"

#include <algorithm>

#include "gdf/copying.h"

namespace sirius::gdf {

using format::ColumnPtr;
using format::TablePtr;

SelectionView SelectionView::FromTable(TablePtr table) {
  SelectionView v;
  v.num_rows_ = table->num_rows();
  ViewSegment seg;
  seg.table = std::move(table);
  v.segments_.push_back(std::move(seg));
  return v;
}

size_t SelectionView::num_columns() const {
  size_t n = 0;
  for (const auto& s : segments_) n += s.table->num_columns();
  return n;
}

bool SelectionView::IsIdentity() const {
  for (const auto& s : segments_) {
    if (!s.identity) return false;
  }
  return true;
}

Result<SelectionView::ColumnRef> SelectionView::Resolve(int column) const {
  if (column < 0) return Status::IndexError("view column < 0");
  size_t c = static_cast<size_t>(column);
  for (const auto& s : segments_) {
    if (c < s.table->num_columns()) {
      ColumnRef ref;
      ref.segment = &s;
      ref.column = s.table->column(c);
      return ref;
    }
    c -= s.table->num_columns();
  }
  return Status::IndexError("view column " + std::to_string(column) +
                            " out of range (" + std::to_string(num_columns()) +
                            " columns)");
}

Status SelectionView::Refine(const std::vector<index_t>& sel) {
  for (index_t i : sel) {
    if (i < 0 || static_cast<size_t>(i) >= num_rows_) {
      return Status::IndexError("view selection index out of range: " +
                                std::to_string(i));
    }
  }
  for (auto& s : segments_) {
    if (s.identity) {
      s.rows = sel;
      s.identity = false;
    } else {
      std::vector<index_t> composed(sel.size());
      for (size_t i = 0; i < sel.size(); ++i) composed[i] = s.rows[sel[i]];
      s.rows = std::move(composed);
    }
  }
  num_rows_ = sel.size();
  return Status::OK();
}

Status SelectionView::AppendSegment(TablePtr table, std::vector<index_t> rows,
                                    bool nullable) {
  if (segments_.empty()) {
    return Status::Invalid("AppendSegment on an empty view");
  }
  if (rows.size() != num_rows_) {
    return Status::Invalid("AppendSegment: row map length " +
                           std::to_string(rows.size()) + " != view rows " +
                           std::to_string(num_rows_));
  }
  const index_t n = static_cast<index_t>(table->num_rows());
  for (index_t r : rows) {
    if (r >= n || (r < 0 && !nullable)) {
      return Status::IndexError("AppendSegment: row map index out of range: " +
                                std::to_string(r));
    }
  }
  ViewSegment seg;
  seg.table = std::move(table);
  seg.rows = std::move(rows);
  seg.identity = false;
  seg.nullable = nullable;
  segments_.push_back(std::move(seg));
  return Status::OK();
}

void SelectionView::ResetToTable(TablePtr table) {
  num_rows_ = table->num_rows();
  segments_.clear();
  ViewSegment seg;
  seg.table = std::move(table);
  segments_.push_back(std::move(seg));
}

uint64_t SelectionView::SelectionBytes() const {
  uint64_t b = 0;
  for (const auto& s : segments_) b += s.rows.size() * sizeof(index_t);
  return b;
}

sim::KernelCost FusedReadCost(const sim::SimContext& sim, const ColumnPtr& col,
                              size_t selected) {
  const uint64_t full = col->MemoryUsage();
  const uint64_t width =
      col->length() > 0 ? std::max<uint64_t>(1, full / col->length()) : 1;
  const uint64_t picked = selected * width;

  sim::KernelCost cost;
  cost.rows = selected;
  cost.launches = 0;  // the fused stage owns the chain's single launch
  // Cheaper access pattern wins: a dense selection reads the column as a
  // predicated coalesced scan; a sparse one fetches elements through the
  // selection vector at the random-access rate.
  const double seq_s = static_cast<double>(full) / sim.device.mem_bw_gbps;
  const double rand_s = static_cast<double>(picked) /
                        (sim.device.mem_bw_gbps * sim.device.random_access_factor);
  if (seq_s <= rand_s) {
    cost.seq_bytes = full;
  } else {
    cost.rand_bytes = picked;
    cost.seq_bytes = selected * sizeof(index_t);  // the selection vector itself
  }
  return cost;
}

Result<ColumnPtr> GatherViewColumn(const Context& ctx, const SelectionView& view,
                                   int col, sim::OpCategory cat) {
  SIRIUS_ASSIGN_OR_RETURN(SelectionView::ColumnRef ref, view.Resolve(col));
  if (ref.segment->identity) {
    // All rows in order: the backing column is already the answer. No data
    // moves and nothing is charged — the consumer prices its own read.
    return ref.column;
  }
  // Inside a fused pass the column's values are loaded once and then live
  // in registers: the read is charged only on first touch and the compact
  // output is a register artifact, not an HBM write.
  const bool resident = ctx.fused_reads != nullptr &&
                        !ctx.fused_reads->insert(ref.column.get()).second;
  sim::KernelCost cost;
  if (!resident) {
    cost = FusedReadCost(ctx.sim, ref.column, view.num_rows());
  }
  if (ctx.fused_reads == nullptr) {
    const uint64_t width =
        ref.column->length() > 0
            ? std::max<uint64_t>(1,
                                 ref.column->MemoryUsage() / ref.column->length())
            : 1;
    cost.seq_bytes += view.num_rows() * width;  // compact output write
  }
  ctx.Charge(cat, cost);
  SIRIUS_ASSIGN_OR_RETURN(
      ColumnPtr out, GatherColumnUncharged(ctx, ref.column, ref.segment->rows,
                                           ref.segment->nullable));
  if (ctx.fused_reads != nullptr) ctx.fused_reads->insert(out.get());
  return out;
}

Status RefineView(const Context& ctx, SelectionView* view,
                  const std::vector<index_t>& sel, sim::OpCategory cat) {
  sim::KernelCost cost;
  cost.seq_bytes =
      sel.size() * sizeof(index_t) * (view->segments().size() + 1);
  cost.rows = sel.size();
  cost.launches = 0;
  ctx.Charge(cat, cost);
  return view->Refine(sel);
}

Status ApplyJoinToView(const Context& ctx, SelectionView* view,
                       const JoinResult& pairs, TablePtr build,
                       bool emits_right, bool nullable_right,
                       sim::OpCategory cat) {
  sim::KernelCost cost;
  cost.seq_bytes =
      pairs.left_indices.size() * sizeof(index_t) * (view->segments().size() + 1);
  if (emits_right) {
    cost.seq_bytes += pairs.right_indices.size() * sizeof(index_t);
  }
  cost.rows = pairs.left_indices.size();
  cost.launches = 0;
  ctx.Charge(cat, cost);
  SIRIUS_RETURN_NOT_OK(view->Refine(pairs.left_indices));
  if (emits_right) {
    SIRIUS_RETURN_NOT_OK(
        view->AppendSegment(std::move(build), pairs.right_indices,
                            nullable_right));
  }
  return Status::OK();
}

Result<TablePtr> MaterializeView(const Context& ctx, const SelectionView& view,
                                 const format::Schema& schema,
                                 sim::OpCategory cat) {
  if (schema.num_fields() != view.num_columns()) {
    return Status::Invalid("MaterializeView: schema has " +
                           std::to_string(schema.num_fields()) +
                           " fields, view has " +
                           std::to_string(view.num_columns()) + " columns");
  }
  std::vector<ColumnPtr> cols;
  cols.reserve(view.num_columns());
  sim::KernelCost cost;
  cost.launches = 0;
  bool gathered = false;
  for (const auto& seg : view.segments()) {
    for (size_t c = 0; c < seg.table->num_columns(); ++c) {
      const ColumnPtr& col = seg.table->column(c);
      if (seg.identity) {
        cols.push_back(col);  // zero-copy pass-through
        continue;
      }
      gathered = true;
      // Register-resident columns (already read this pass) materialize for
      // just the write; cold columns pay the fused read too.
      if (ctx.fused_reads == nullptr ||
          ctx.fused_reads->insert(col.get()).second) {
        const sim::KernelCost read =
            FusedReadCost(ctx.sim, col, view.num_rows());
        cost.seq_bytes += read.seq_bytes;
        cost.rand_bytes += read.rand_bytes;
      }
      cost.rows += view.num_rows();
      const uint64_t width =
          col->length() > 0
              ? std::max<uint64_t>(1, col->MemoryUsage() / col->length())
              : 1;
      cost.seq_bytes += view.num_rows() * width;  // output write
      SIRIUS_ASSIGN_OR_RETURN(
          ColumnPtr out,
          GatherColumnUncharged(ctx, col, seg.rows, seg.nullable));
      cols.push_back(std::move(out));
    }
  }
  if (gathered) {
    cost.launches = 1;  // the chain's single materialization kernel
    ctx.Charge(cat, cost);
  }
  return format::Table::Make(schema, std::move(cols));
}

}  // namespace sirius::gdf
