#include "gdf/copying.h"

#include <cstring>

#include "format/builder.h"

namespace sirius::gdf {

using format::Column;
using format::ColumnPtr;
using format::TablePtr;
using format::TypeId;

namespace {

// Gather output buffers come from ctx.mr — the processing region when the
// engine drives the kernel. Allocation failures (real pool exhaustion or an
// injected pressure resource) propagate as OutOfMemory; they must never
// abort, since the engine heals them by evicting/spilling or falling back
// to the CPU engine (§3.4).
template <typename T>
Result<ColumnPtr> GatherFixed(const Context& ctx, const ColumnPtr& col,
                              const std::vector<index_t>& indices,
                              bool nulls_for_negative) {
  const size_t n = indices.size();
  SIRIUS_ASSIGN_OR_RETURN(mem::Buffer data,
                          mem::Buffer::Allocate(n * sizeof(T), ctx.mr));
  T* out = data.data_as<T>();
  const T* src = col->data<T>();

  std::vector<bool> valid;
  size_t null_count = 0;
  const bool src_nulls = col->has_nulls();
  if (src_nulls || nulls_for_negative) valid.assign(n, true);

  for (size_t k = 0; k < n; ++k) {
    index_t idx = indices[k];
    if (idx < 0) {
      out[k] = T{};
      valid[k] = false;
    } else {
      out[k] = src[idx];
      if (src_nulls && col->IsNull(static_cast<size_t>(idx))) valid[k] = false;
    }
  }
  mem::Buffer validity;
  if (!valid.empty()) validity = format::ValidityFromBools(valid, &null_count);
  return Column::MakeFixed(col->type(), std::move(data), n, std::move(validity),
                           null_count);
}

Result<ColumnPtr> GatherString(const Context& ctx, const ColumnPtr& col,
                               const std::vector<index_t>& indices,
                               bool nulls_for_negative) {
  const size_t n = indices.size();
  const int64_t* src_off = col->offsets();
  const char* src_chars = col->chars();

  std::vector<int64_t> offsets(n + 1, 0);
  size_t total = 0;
  for (size_t k = 0; k < n; ++k) {
    index_t idx = indices[k];
    if (idx >= 0) total += static_cast<size_t>(src_off[idx + 1] - src_off[idx]);
    offsets[k + 1] = static_cast<int64_t>(total);
  }
  SIRIUS_ASSIGN_OR_RETURN(mem::Buffer chars,
                          mem::Buffer::Allocate(total, ctx.mr));
  char* out = chars.data_as<char>();
  size_t pos = 0;
  std::vector<bool> valid;
  size_t null_count = 0;
  const bool src_nulls = col->has_nulls();
  if (src_nulls || nulls_for_negative) valid.assign(n, true);
  for (size_t k = 0; k < n; ++k) {
    index_t idx = indices[k];
    if (idx < 0) {
      valid[k] = false;
      continue;
    }
    size_t len = static_cast<size_t>(src_off[idx + 1] - src_off[idx]);
    std::memcpy(out + pos, src_chars + src_off[idx], len);
    pos += len;
    if (src_nulls && col->IsNull(static_cast<size_t>(idx))) valid[k] = false;
  }
  SIRIUS_ASSIGN_OR_RETURN(
      mem::Buffer off_buf,
      mem::Buffer::Allocate((n + 1) * sizeof(int64_t), ctx.mr));
  std::memcpy(off_buf.data(), offsets.data(), (n + 1) * sizeof(int64_t));
  mem::Buffer validity;
  if (!valid.empty()) validity = format::ValidityFromBools(valid, &null_count);
  return Column::MakeString(std::move(off_buf), std::move(chars), n,
                            std::move(validity), null_count);
}

Result<ColumnPtr> GatherList(const Context& ctx, const ColumnPtr& col,
                             const std::vector<index_t>& indices,
                             bool nulls_for_negative);

Result<ColumnPtr> GatherImpl(const Context& ctx, const ColumnPtr& col,
                             const std::vector<index_t>& indices,
                             bool nulls_for_negative) {
  switch (col->type().id) {
    case TypeId::kBool:
      return GatherFixed<uint8_t>(ctx, col, indices, nulls_for_negative);
    case TypeId::kInt32:
    case TypeId::kDate32:
      return GatherFixed<int32_t>(ctx, col, indices, nulls_for_negative);
    case TypeId::kInt64:
    case TypeId::kDecimal64:
      return GatherFixed<int64_t>(ctx, col, indices, nulls_for_negative);
    case TypeId::kFloat64:
      return GatherFixed<double>(ctx, col, indices, nulls_for_negative);
    case TypeId::kString:
      return GatherString(ctx, col, indices, nulls_for_negative);
    case TypeId::kList:
      return GatherList(ctx, col, indices, nulls_for_negative);
  }
  return Status::Internal("gather: unhandled column type");
}

Result<ColumnPtr> GatherList(const Context& ctx, const ColumnPtr& col,
                             const std::vector<index_t>& indices,
                             bool nulls_for_negative) {
  const size_t n = indices.size();
  const int64_t* src_off = col->offsets();
  // New offsets + flattened child gather indices.
  std::vector<int64_t> offsets(n + 1, 0);
  std::vector<index_t> child_idx;
  std::vector<bool> valid;
  size_t null_count = 0;
  const bool src_nulls = col->has_nulls();
  if (src_nulls || nulls_for_negative) valid.assign(n, true);
  for (size_t k = 0; k < n; ++k) {
    index_t idx = indices[k];
    if (idx < 0) {
      valid[k] = false;
    } else {
      for (int64_t e = src_off[idx]; e < src_off[idx + 1]; ++e) {
        child_idx.push_back(static_cast<index_t>(e));
      }
      if (src_nulls && col->IsNull(static_cast<size_t>(idx))) valid[k] = false;
    }
    offsets[k + 1] = static_cast<int64_t>(child_idx.size());
  }
  SIRIUS_ASSIGN_OR_RETURN(ColumnPtr child,
                          GatherImpl(ctx, col->list_child(), child_idx,
                                     /*nulls_for_negative=*/false));
  SIRIUS_ASSIGN_OR_RETURN(
      mem::Buffer off_buf,
      mem::Buffer::Allocate((n + 1) * sizeof(int64_t), ctx.mr));
  std::memcpy(off_buf.data(), offsets.data(), (n + 1) * sizeof(int64_t));
  mem::Buffer validity;
  if (!valid.empty()) validity = format::ValidityFromBools(valid, &null_count);
  return Column::MakeList(std::move(off_buf), std::move(child), n,
                          std::move(validity), null_count);
}

}  // namespace

Result<ColumnPtr> GatherColumn(const Context& ctx, const ColumnPtr& col,
                               const std::vector<index_t>& indices) {
  for (index_t i : indices) {
    if (i < 0 || static_cast<size_t>(i) >= col->length()) {
      return Status::IndexError("gather index out of bounds: " + std::to_string(i));
    }
  }
  sim::KernelCost cost;
  cost.rand_bytes = indices.size() * col->type().byte_width();
  cost.seq_bytes = indices.size() * (sizeof(index_t) + col->type().byte_width());
  cost.rows = indices.size();
  ctx.Charge(sim::OpCategory::kProject, cost);
  return GatherImpl(ctx, col, indices, /*nulls_for_negative=*/false);
}

Result<ColumnPtr> GatherColumnWithNulls(const Context& ctx, const ColumnPtr& col,
                                        const std::vector<index_t>& indices) {
  for (index_t i : indices) {
    if (static_cast<size_t>(i) >= col->length() && i >= 0) {
      return Status::IndexError("gather index out of bounds: " + std::to_string(i));
    }
  }
  sim::KernelCost cost;
  cost.rand_bytes = indices.size() * col->type().byte_width();
  cost.seq_bytes = indices.size() * (sizeof(index_t) + col->type().byte_width());
  cost.rows = indices.size();
  ctx.Charge(sim::OpCategory::kProject, cost);
  return GatherImpl(ctx, col, indices, /*nulls_for_negative=*/true);
}

Result<ColumnPtr> GatherColumnUncharged(const Context& ctx, const ColumnPtr& col,
                                        const std::vector<index_t>& indices,
                                        bool nulls_for_negative) {
  for (index_t i : indices) {
    if (static_cast<size_t>(i) >= col->length() &&
        (i >= 0 || !nulls_for_negative)) {
      return Status::IndexError("gather index out of bounds: " + std::to_string(i));
    }
  }
  return GatherImpl(ctx, col, indices, nulls_for_negative);
}

Result<TablePtr> GatherTable(const Context& ctx, const TablePtr& table,
                             const std::vector<index_t>& indices,
                             sim::OpCategory charge_as, bool nulls_for_negative) {
  sim::KernelCost cost;
  cost.rows = indices.size() * std::max<size_t>(1, table->num_columns());
  for (size_t c = 0; c < table->num_columns(); ++c) {
    cost.rand_bytes += indices.size() * table->column(c)->type().byte_width();
    cost.seq_bytes += indices.size() * table->column(c)->type().byte_width();
  }
  ctx.Charge(charge_as, cost);

  std::vector<ColumnPtr> cols;
  cols.reserve(table->num_columns());
  for (size_t c = 0; c < table->num_columns(); ++c) {
    SIRIUS_ASSIGN_OR_RETURN(
        ColumnPtr out,
        GatherImpl(ctx, table->column(c), indices, nulls_for_negative));
    cols.push_back(std::move(out));
  }
  return format::Table::Make(table->schema(), std::move(cols));
}

Result<TablePtr> ConcatTables(const Context& ctx,
                              const std::vector<TablePtr>& tables) {
  if (tables.empty()) return Status::Invalid("ConcatTables: no inputs");
  const auto& schema = tables[0]->schema();
  uint64_t bytes = 0;
  for (const auto& t : tables) {
    if (!t->schema().Equals(schema)) {
      return Status::Invalid("ConcatTables: schema mismatch");
    }
    bytes += t->MemoryUsage();
  }
  sim::KernelCost cost;
  cost.seq_bytes = 2 * bytes;
  ctx.Charge(sim::OpCategory::kOther, cost);

  std::vector<ColumnPtr> cols;
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    format::ColumnBuilder b(schema.field(c).type);
    for (const auto& t : tables) {
      const ColumnPtr& col = t->column(c);
      for (size_t i = 0; i < col->length(); ++i) {
        SIRIUS_RETURN_NOT_OK(b.AppendScalar(col->GetScalar(i)));
      }
    }
    cols.push_back(b.Finish());
  }
  return format::Table::Make(schema, std::move(cols));
}

Result<TablePtr> SliceTable(const Context& ctx, const TablePtr& table,
                            size_t offset, size_t length) {
  length = std::min(length, table->num_rows() > offset
                                ? table->num_rows() - offset
                                : size_t{0});
  std::vector<index_t> indices(length);
  for (size_t i = 0; i < length; ++i) indices[i] = static_cast<index_t>(offset + i);
  return GatherTable(ctx, table, indices, sim::OpCategory::kOther);
}

}  // namespace sirius::gdf
