// Sort kernels (cudf::sort_by_key analogue).

#pragma once

#include "common/result.h"
#include "format/table.h"
#include "gdf/context.h"

namespace sirius::gdf {

/// \brief Stable sort order over key columns.
///
/// `descending[k]` flips key k (defaults to ascending); NULLs always sort
/// last. Returns row indices in sorted order. Charges kOrderBy with an
/// n log n pass over the key bytes.
Result<std::vector<index_t>> SortIndices(const Context& ctx,
                                         const std::vector<format::ColumnPtr>& keys,
                                         const std::vector<bool>& descending = {});

/// Sorts a whole table by the given key column indices.
Result<format::TablePtr> SortTable(const Context& ctx,
                                   const format::TablePtr& table,
                                   const std::vector<int>& key_columns,
                                   const std::vector<bool>& descending = {});

}  // namespace sirius::gdf
