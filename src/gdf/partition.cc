#include "gdf/partition.h"

#include "gdf/copying.h"
#include "gdf/row_ops.h"

namespace sirius::gdf {

Result<std::vector<format::TablePtr>> HashPartition(
    const Context& ctx, const format::TablePtr& table,
    const std::vector<int>& key_columns, size_t num_partitions) {
  if (num_partitions == 0) return Status::Invalid("HashPartition: 0 partitions");
  std::vector<format::ColumnPtr> keys;
  for (int c : key_columns) {
    if (c < 0 || static_cast<size_t>(c) >= table->num_columns()) {
      return Status::IndexError("HashPartition: bad key column");
    }
    keys.push_back(table->column(c));
  }
  RowOps ops(keys);
  const size_t n = table->num_rows();
  std::vector<std::vector<index_t>> buckets(num_partitions);
  for (size_t i = 0; i < n; ++i) {
    size_t p = ops.AnyNull(i) ? 0 : ops.Hash(i) % num_partitions;
    buckets[p].push_back(static_cast<index_t>(i));
  }

  sim::KernelCost cost;
  cost.seq_bytes = 2 * table->MemoryUsage();
  cost.rows = n;
  cost.ops_per_row = 2.0;
  cost.launches = 2;
  ctx.Charge(sim::OpCategory::kExchange, cost);

  std::vector<format::TablePtr> out;
  out.reserve(num_partitions);
  for (size_t p = 0; p < num_partitions; ++p) {
    SIRIUS_ASSIGN_OR_RETURN(
        format::TablePtr t,
        GatherTable(ctx, table, buckets[p], sim::OpCategory::kExchange));
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace sirius::gdf
