// Bloom filters for predicate transfer (paper §3.4, refs [29, 30]: Bloom
// filters built on join build sides pre-filter probe inputs before the
// expensive join).

#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "format/table.h"
#include "gdf/context.h"

namespace sirius::gdf {

/// \brief A blocked Bloom filter over the hashed values of key columns.
class BloomFilter {
 public:
  /// Sizes the filter for `expected_keys` at ~1% false-positive rate
  /// (~10 bits/key, 4 probes).
  explicit BloomFilter(size_t expected_keys);

  /// Inserts every (non-NULL) row of the key set.
  void InsertColumn(const format::ColumnPtr& key);

  /// Membership test for row `i` of `key` (false -> definitely absent).
  bool MightContain(const format::Column& key, size_t i) const;

  size_t size_bytes() const { return bits_.size(); }

 private:
  static constexpr int kProbes = 4;
  void Insert(uint64_t hash);
  bool Test(uint64_t hash) const;

  uint64_t mask_;
  std::vector<uint8_t> bits_;
};

/// \brief Builds a Bloom filter from build-side join keys and uses it to
/// pre-filter the probe table (predicate transfer). Returns the surviving
/// probe rows; false positives are fine — the join re-checks exactly.
/// Charges build + probe passes to kJoin.
Result<format::TablePtr> BloomPrefilter(const Context& ctx,
                                        const format::TablePtr& probe_table,
                                        const std::vector<int>& probe_keys,
                                        const format::ColumnPtr& build_key);

/// \brief Fused-pass predicate transfer: tests each row of `probe_key`
/// against a Bloom filter built from `build_key` and returns the surviving
/// row indices as a selection vector — no gather; the enclosing fused stage
/// refines its view with the result. Charged with zero launches.
Result<std::vector<index_t>> BloomPrefilterSelection(
    const Context& ctx, const format::ColumnPtr& probe_key,
    const format::ColumnPtr& build_key);

}  // namespace sirius::gdf
