// Expression compute kernel: evaluates bound expressions over a table,
// charging the cost model for the columns touched (cudf::compute_column).

#pragma once

#include "common/result.h"
#include "expr/eval.h"
#include "gdf/context.h"

namespace sirius::gdf {

/// \brief Evaluates `e` over `input`, charging `cat` (kFilter for predicate
/// masks, kProject for projections) with a cost proportional to the input
/// columns the expression touches plus per-row compute.
Result<format::ColumnPtr> ComputeColumn(const Context& ctx, const expr::Expr& e,
                                        const format::TablePtr& input,
                                        sim::OpCategory cat);

}  // namespace sirius::gdf
