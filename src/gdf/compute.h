// Expression compute kernel: evaluates bound expressions over a table,
// charging the cost model for the columns touched (cudf::compute_column).

#pragma once

#include "common/result.h"
#include "expr/eval.h"
#include "gdf/context.h"
#include "gdf/selection.h"

namespace sirius::gdf {

/// \brief Evaluates `e` over `input`, charging `cat` (kFilter for predicate
/// masks, kProject for projections) with a cost proportional to the input
/// columns the expression touches plus per-row compute.
Result<format::ColumnPtr> ComputeColumn(const Context& ctx, const expr::Expr& e,
                                        const format::TablePtr& input,
                                        sim::OpCategory cat);

/// \brief Fused-pass variant: evaluates `e` over the selected rows of
/// `view`, reading only the referenced columns through the selection (each
/// priced as a fused read — the cheaper of a predicated sequential scan or
/// random fetches) instead of over a gathered intermediate. The result is
/// dense: one value per view row. Charged with zero launches; the enclosing
/// fused stage owns the chain's single launch.
Result<format::ColumnPtr> ComputeColumnView(const Context& ctx,
                                            const expr::Expr& e,
                                            const SelectionView& view,
                                            sim::OpCategory cat);

}  // namespace sirius::gdf
