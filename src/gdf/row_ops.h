// Row-wise hashing, equality and comparison over sets of key columns.
// Shared by hash join, hash group-by, partitioning, distinct and sort.

#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "format/column.h"

namespace sirius::gdf {

/// \brief Hashes and compares rows across a fixed set of key columns.
///
/// NULL handling: a NULL key slot hashes to a fixed tag; two NULLs compare
/// equal under EqualsNullEqual (group-by semantics) and unequal under
/// EqualsNullUnequal (join semantics).
class RowOps {
 public:
  explicit RowOps(std::vector<format::ColumnPtr> keys) : keys_(std::move(keys)) {}

  size_t num_keys() const { return keys_.size(); }
  const std::vector<format::ColumnPtr>& keys() const { return keys_; }

  /// Combined hash of row `i`'s key values.
  uint64_t Hash(size_t i) const;

  /// True when any key of row `i` is NULL.
  bool AnyNull(size_t i) const;

  /// Row `i` of this key set vs row `j` of `other` (same key layout).
  /// NULLs compare equal (group-by / distinct semantics).
  bool EqualsNullEqual(size_t i, const RowOps& other, size_t j) const;

  /// Three-way comparison of key values for sorting: <0, 0, >0.
  /// `descending[k]` flips key k; NULLs sort last regardless of direction.
  int Compare(size_t i, size_t j, const std::vector<bool>& descending) const;

 private:
  std::vector<format::ColumnPtr> keys_;
};

/// Hashes a single column value (type-aware, NULL -> fixed tag).
uint64_t HashValueAt(const format::Column& col, size_t i);

/// Equality of two values possibly from different columns of the same type.
/// NULL == NULL yields `null_equal`.
bool ValueEquals(const format::Column& a, size_t i, const format::Column& b,
                 size_t j, bool null_equal);

/// Three-way value comparison (NULLs last).
int ValueCompare(const format::Column& a, size_t i, const format::Column& b,
                 size_t j);

}  // namespace sirius::gdf
