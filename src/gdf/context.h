// Execution context for GDF kernels (libcudf-equivalent layer).
//
// Mirrors libcudf's (stream, memory_resource) kernel arguments: every kernel
// takes a Context carrying the memory resource for allocations and the
// simulation context that models the device it "runs" on.

#pragma once

#include <unordered_set>

#include "mem/memory_resource.h"
#include "sim/cost_model.h"

namespace sirius::format {
class Column;
}  // namespace sirius::format

namespace sirius::gdf {

/// Row index type used by the GDF kernel layer. libcudf uses int32_t row
/// indices while the Sirius engine uses uint64_t (paper §3.2.3); the engine
/// converts at the boundary.
using index_t = int32_t;

/// \brief Per-invocation kernel environment.
struct Context {
  /// Allocator for kernel outputs (the processing region in Sirius).
  mem::MemoryResource* mr = nullptr;
  /// Device/engine model charged for the kernel's work. A default-constructed
  /// SimContext has a null timeline, i.e. no accounting.
  sim::SimContext sim;

  /// Register-residency set of an active fused pass (null outside one).
  /// A fused chain is one kernel: each backing column's values are loaded
  /// from HBM once per morsel and then stay live in registers across the
  /// chained operators, so kernels charge a column's read only on its first
  /// appearance here and treat later reads (and intermediate writes) as
  /// free. The engine owns the set per pass; a morsel boundary resets it.
  std::unordered_set<const format::Column*>* fused_reads = nullptr;

  /// Charges a kernel's counted work to the timeline.
  void Charge(sim::OpCategory cat, const sim::KernelCost& cost) const {
    sim.Charge(cat, cost);
  }
};

}  // namespace sirius::gdf
