// Selection-vector machinery for fused pipeline execution.
//
// A fused pass streams one morsel through a filter -> project -> probe chain
// without materializing gathered intermediates: operators exchange a
// SelectionView — shared input columns plus per-segment row maps — and only
// sink boundaries (build sides, aggregations, sorts) gather. This is the
// engine-side analogue of the data-path fusion the single-GPU breakdown
// motivates (paper §4.3; "Data Path Fusion in GPU for Analytical Query
// Processing", PAPERS.md): the HBM round trip between chained operators is
// replaced by an index indirection that stays on-chip.

#pragma once

#include <vector>

#include "common/result.h"
#include "format/table.h"
#include "gdf/context.h"
#include "gdf/join.h"

namespace sirius::gdf {

/// \brief One segment of a fused view: the columns of `table`, seen through
/// the segment's row map.
///
/// A probe join appends the build side as a new segment, so a view over a
/// join chain is a list of segments whose concatenated columns form the
/// logical output schema — none of them gathered yet.
struct ViewSegment {
  format::TablePtr table;       ///< shared input columns (never copied)
  std::vector<index_t> rows;    ///< view row -> table row; empty when identity
  bool identity = true;         ///< rows is implicitly 0..num_rows-1
  bool nullable = false;        ///< rows may contain -1 (NULL row, outer joins)
};

/// \brief A logical table flowing through a fused operator chain: shared
/// input columns plus selection vectors, materialized only at sinks.
class SelectionView {
 public:
  SelectionView() = default;

  /// A view of all rows of `table`, in order (the fused pass's source).
  static SelectionView FromTable(format::TablePtr table);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const;
  const std::vector<ViewSegment>& segments() const { return segments_; }

  /// True when the view is a single all-rows-in-order segment (materializing
  /// it is a no-op).
  bool IsIdentity() const;

  /// Resolution of a view-global column index to its backing segment.
  struct ColumnRef {
    const ViewSegment* segment = nullptr;
    format::ColumnPtr column;
  };
  Result<ColumnRef> Resolve(int column) const;

  /// Refines the view by a selection over its rows: view row `i` of the
  /// result maps to old view row `sel[i]`. Composes with every segment's
  /// existing row map; O(segments * |sel|) index writes, no column data
  /// moves.
  Status Refine(const std::vector<index_t>& sel);

  /// Appends a segment (a probed build side): `rows[i]` is the build-table
  /// row paired with view row `i` (-1 = unmatched, requires `nullable`).
  Status AppendSegment(format::TablePtr table, std::vector<index_t> rows,
                       bool nullable);

  /// Replaces the view with a single dense table (a project's output: the
  /// computed columns are already compact).
  void ResetToTable(format::TablePtr table);

  /// Bytes of selection-vector state the fused pass keeps live (the
  /// processing-fit check prices this instead of a gathered intermediate).
  uint64_t SelectionBytes() const;

 private:
  std::vector<ViewSegment> segments_;
  size_t num_rows_ = 0;
};

/// \brief Cost of reading `selected` rows of `col` inside a fused pass.
///
/// The kernel takes the cheaper access pattern: a predicated sequential scan
/// of the whole column (dense selections coalesce) or element-wise fetches
/// through the selection vector (sparse selections). launches = 0 — the
/// enclosing fused stage pays a single launch for the whole chain.
sim::KernelCost FusedReadCost(const sim::SimContext& sim,
                              const format::ColumnPtr& col, size_t selected);

/// \brief Gathers view-global column `col` into a compact column.
///
/// Identity segments return the backing column zero-copy and charge nothing
/// (the consumer prices its own read); selected segments charge a fused read
/// plus the compact output write.
Result<format::ColumnPtr> GatherViewColumn(const Context& ctx,
                                           const SelectionView& view, int col,
                                           sim::OpCategory cat);

/// Refines `view` by `sel`, charging the composed row-map writes.
Status RefineView(const Context& ctx, SelectionView* view,
                  const std::vector<index_t>& sel, sim::OpCategory cat);

/// \brief Fused join-probe composition: refines the probe-side segments by
/// `pairs.left_indices` (view-row space) and, when the join emits the build
/// side, appends `build` as a new segment mapped by `pairs.right_indices`.
/// Charges the row-map writes; no column data moves.
Status ApplyJoinToView(const Context& ctx, SelectionView* view,
                       const JoinResult& pairs, format::TablePtr build,
                       bool emits_right, bool nullable_right,
                       sim::OpCategory cat);

/// \brief Materializes the whole view with the given output schema — the
/// fused chain's single gather, paid at a sink boundary. Charges fused reads
/// plus the output writes, one launch total (zero when the view is identity).
Result<format::TablePtr> MaterializeView(const Context& ctx,
                                         const SelectionView& view,
                                         const format::Schema& schema,
                                         sim::OpCategory cat);

}  // namespace sirius::gdf
