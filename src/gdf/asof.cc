#include "gdf/asof.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "gdf/row_ops.h"

namespace sirius::gdf {

using format::ColumnPtr;

Result<JoinResult> AsofJoin(const Context& ctx, const ColumnPtr& left_on,
                            const ColumnPtr& right_on,
                            const std::vector<ColumnPtr>& left_by,
                            const std::vector<ColumnPtr>& right_by) {
  if (left_by.size() != right_by.size()) {
    return Status::Invalid("AsofJoin: by-key count mismatch");
  }
  if (left_on->type().is_string() || right_on->type().is_string()) {
    return Status::TypeError("AsofJoin: ordering keys must be orderable scalars");
  }
  const size_t nl = left_on->length();
  const size_t nr = right_on->length();

  // Group right rows by their "by" keys (hash of the key values; exactness
  // restored by comparing through RowOps when probing).
  RowOps right_ops(right_by);
  RowOps left_ops(left_by);
  std::map<uint64_t, std::vector<index_t>> right_groups;
  for (size_t j = 0; j < nr; ++j) {
    if (right_on->IsNull(j) || right_ops.AnyNull(j)) continue;
    right_groups[right_by.empty() ? 0 : right_ops.Hash(j)].push_back(
        static_cast<index_t>(j));
  }
  // Sort each group by the ordering key.
  for (auto& [h, rows] : right_groups) {
    (void)h;
    std::stable_sort(rows.begin(), rows.end(), [&](index_t a, index_t b) {
      return ValueCompare(*right_on, static_cast<size_t>(a), *right_on,
                          static_cast<size_t>(b)) < 0;
    });
  }

  JoinResult result;
  result.left_indices.reserve(nl);
  result.right_indices.reserve(nl);
  for (size_t i = 0; i < nl; ++i) {
    result.left_indices.push_back(static_cast<index_t>(i));
    index_t match = -1;
    if (!left_on->IsNull(i) && !left_ops.AnyNull(i)) {
      auto it = right_groups.find(left_by.empty() ? 0 : left_ops.Hash(i));
      if (it != right_groups.end()) {
        const auto& rows = it->second;
        // Largest j with right_on[j] <= left_on[i]: binary search.
        size_t lo = 0, hi = rows.size();
        while (lo < hi) {
          size_t mid = (lo + hi) / 2;
          if (ValueCompare(*right_on, static_cast<size_t>(rows[mid]), *left_on,
                           i) <= 0) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        // Verify by-key equality exactly (hash groups may collide).
        for (size_t k = lo; k-- > 0;) {
          if (left_by.empty() ||
              left_ops.EqualsNullEqual(i, right_ops,
                                       static_cast<size_t>(rows[k]))) {
            match = rows[k];
            break;
          }
        }
      }
    }
    result.right_indices.push_back(match);
  }

  sim::KernelCost cost;
  const double lognr = nr > 2 ? std::log2(static_cast<double>(nr)) : 1.0;
  cost.seq_bytes = left_on->MemoryUsage() + right_on->MemoryUsage();
  cost.rand_bytes = static_cast<uint64_t>(nl * lognr * 8) +
                    static_cast<uint64_t>(nr * lognr);
  cost.rows = static_cast<uint64_t>(nl + nr * lognr);
  cost.ops_per_row = 2.0;
  cost.launches = 3;
  ctx.Charge(sim::OpCategory::kJoin, cost);
  return result;
}

}  // namespace sirius::gdf
