// ColumnBuilder: append-style construction of columns of any type.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "format/column.h"
#include "format/table.h"

namespace sirius::format {

/// \brief Appends values of one DataType and finishes into a Column.
///
/// Fixed-width values go through AppendInt/AppendDouble (ints cover INT32,
/// INT64, DATE32, DECIMAL64-raw and BOOL); strings through AppendString.
class ColumnBuilder {
 public:
  explicit ColumnBuilder(DataType type) : type_(type) {}

  const DataType& type() const { return type_; }
  size_t length() const { return valid_.size(); }

  void Reserve(size_t n);

  void AppendNull();
  /// Appends a fixed-width value (raw decimal units for DECIMAL64).
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string_view v);
  void AppendBool(bool v) { AppendInt(v ? 1 : 0); }

  /// Appends any Scalar; the scalar's type must be compatible with the
  /// builder's (same TypeId; decimal scales are rescaled).
  Status AppendScalar(const Scalar& s);

  /// Produces the column and resets the builder.
  ColumnPtr Finish();

 private:
  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<int64_t> offsets_{0};
  std::string chars_;
  std::vector<bool> valid_;
  size_t null_count_ = 0;
};

/// \brief Builds a table column-by-column against a schema.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema);

  /// Builder for column `i`.
  ColumnBuilder& column(size_t i) { return builders_[i]; }
  size_t num_columns() const { return builders_.size(); }

  /// Finishes all builders; columns must have equal lengths.
  Result<TablePtr> Finish();

 private:
  Schema schema_;
  std::vector<ColumnBuilder> builders_;
};

}  // namespace sirius::format
