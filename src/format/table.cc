#include "format/table.h"

#include <algorithm>
#include <sstream>

namespace sirius::format {

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out << ", ";
    out << fields_[i].name << ": " << fields_[i].type.ToString();
  }
  return out.str();
}

Result<TablePtr> Table::Make(Schema schema, std::vector<ColumnPtr> columns) {
  if (schema.num_fields() != columns.size()) {
    return Status::Invalid("Table::Make: schema has " +
                           std::to_string(schema.num_fields()) + " fields but " +
                           std::to_string(columns.size()) + " columns given");
  }
  size_t rows = columns.empty() ? 0 : columns[0]->length();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == nullptr) return Status::Invalid("Table::Make: null column");
    if (columns[i]->length() != rows) {
      return Status::Invalid("Table::Make: column " + std::to_string(i) +
                             " length mismatch");
    }
    if (columns[i]->type() != schema.field(i).type) {
      return Status::TypeError("Table::Make: column '" + schema.field(i).name +
                               "' type " + columns[i]->type().ToString() +
                               " != schema type " +
                               schema.field(i).type.ToString());
    }
  }
  auto t = std::shared_ptr<Table>(new Table());
  t->schema_ = std::move(schema);
  t->columns_ = std::move(columns);
  t->num_rows_ = rows;
  return t;
}

TablePtr Table::Empty() {
  return Make(Schema{}, {}).ValueOrDie();
}

ColumnPtr Table::ColumnByName(const std::string& name) const {
  int idx = schema_.IndexOf(name);
  return idx < 0 ? nullptr : columns_[idx];
}

Result<TablePtr> Table::SelectColumns(const std::vector<int>& indices) const {
  std::vector<Field> fields;
  std::vector<ColumnPtr> cols;
  for (int i : indices) {
    if (i < 0 || static_cast<size_t>(i) >= columns_.size()) {
      return Status::IndexError("SelectColumns: index " + std::to_string(i) +
                                " out of range");
    }
    fields.push_back(schema_.field(i));
    cols.push_back(columns_[i]);
  }
  return Make(Schema(std::move(fields)), std::move(cols));
}

uint64_t Table::MemoryUsage() const {
  uint64_t total = 0;
  for (const auto& c : columns_) total += c->MemoryUsage();
  return total;
}

bool Table::Equals(const Table& other) const {
  if (!schema_.Equals(other.schema_) || num_rows_ != other.num_rows_) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!columns_[i]->Equals(*other.columns_[i])) return false;
  }
  return true;
}

namespace {
std::string RenderRow(const Table& t, size_t row) {
  std::string out;
  for (size_t c = 0; c < t.num_columns(); ++c) {
    if (c > 0) out += "|";
    out += t.column(c)->GetScalar(row).ToString();
  }
  return out;
}
}  // namespace

bool Table::EqualsUnordered(const Table& other) const {
  if (num_rows_ != other.num_rows_ || num_columns() != other.num_columns()) {
    return false;
  }
  std::vector<std::string> a(num_rows_), b(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) {
    a[i] = RenderRow(*this, i);
    b[i] = RenderRow(other, i);
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

std::string Table::ToString(size_t limit) const {
  std::ostringstream out;
  const size_t rows = std::min(limit, num_rows_);
  std::vector<std::vector<std::string>> cells(rows + 1);
  cells[0].reserve(num_columns());
  for (size_t c = 0; c < num_columns(); ++c) cells[0].push_back(schema_.field(c).name);
  for (size_t r = 0; r < rows; ++r) {
    cells[r + 1].reserve(num_columns());
    for (size_t c = 0; c < num_columns(); ++c) {
      cells[r + 1].push_back(columns_[c]->GetScalar(r).ToString());
    }
  }
  std::vector<size_t> widths(num_columns(), 0);
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out << " " << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  if (!cells.empty() && !cells[0].empty()) {
    emit_row(cells[0]);
    out << "|";
    for (size_t c = 0; c < num_columns(); ++c) out << std::string(widths[c] + 2, '-') << "|";
    out << "\n";
    for (size_t r = 1; r < cells.size(); ++r) emit_row(cells[r]);
  }
  if (num_rows_ > rows) {
    out << "... (" << num_rows_ - rows << " more rows)\n";
  }
  return out.str();
}

}  // namespace sirius::format
