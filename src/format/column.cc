#include "format/column.h"

#include <cstring>

namespace sirius::format {

namespace {

mem::Buffer BufferFromBytes(const void* src, size_t bytes) {
  mem::Buffer b = mem::Buffer::Allocate(bytes).ValueOrDie();
  if (bytes > 0) std::memcpy(b.data(), src, bytes);
  return b;
}

template <typename T>
mem::Buffer BufferFromVector(const std::vector<T>& v) {
  return BufferFromBytes(v.data(), v.size() * sizeof(T));
}

}  // namespace

mem::Buffer ValidityFromBools(const std::vector<bool>& valid, size_t* null_count) {
  *null_count = 0;
  for (bool b : valid) {
    if (!b) ++*null_count;
  }
  if (*null_count == 0) return {};
  mem::Buffer buf =
      mem::Buffer::AllocateZeroed(bit::BytesForBits(valid.size())).ValueOrDie();
  for (size_t i = 0; i < valid.size(); ++i) {
    if (valid[i]) bit::SetBit(buf.data(), i);
  }
  return buf;
}

ColumnPtr Column::MakeFixed(DataType type, mem::Buffer data, size_t length,
                            mem::Buffer validity, size_t null_count) {
  auto col = std::shared_ptr<Column>(new Column());
  col->type_ = type;
  col->length_ = length;
  col->data_ = std::move(data);
  col->validity_ = std::move(validity);
  col->null_count_ = null_count;
  return col;
}

ColumnPtr Column::MakeString(mem::Buffer offsets, mem::Buffer chars, size_t length,
                             mem::Buffer validity, size_t null_count) {
  auto col = std::shared_ptr<Column>(new Column());
  col->type_ = String();
  col->length_ = length;
  col->data_ = std::move(offsets);
  col->chars_ = std::move(chars);
  col->validity_ = std::move(validity);
  col->null_count_ = null_count;
  return col;
}

ColumnPtr Column::MakeList(mem::Buffer offsets, ColumnPtr child, size_t length,
                           mem::Buffer validity, size_t null_count) {
  auto col = std::shared_ptr<Column>(new Column());
  col->type_ = List(child->type());
  col->length_ = length;
  col->data_ = std::move(offsets);
  col->child_ = std::move(child);
  col->validity_ = std::move(validity);
  col->null_count_ = null_count;
  return col;
}

ColumnPtr Column::FromListsOfDoubles(
    const std::vector<std::vector<double>>& lists) {
  std::vector<int64_t> offsets(lists.size() + 1, 0);
  std::vector<double> values;
  for (size_t i = 0; i < lists.size(); ++i) {
    values.insert(values.end(), lists[i].begin(), lists[i].end());
    offsets[i + 1] = static_cast<int64_t>(values.size());
  }
  return MakeList(BufferFromVector(offsets), FromDouble(values), lists.size());
}

ColumnPtr Column::FromInt32(const std::vector<int32_t>& values) {
  return MakeFixed(Int32(), BufferFromVector(values), values.size());
}

ColumnPtr Column::FromInt64(const std::vector<int64_t>& values) {
  return MakeFixed(Int64(), BufferFromVector(values), values.size());
}

ColumnPtr Column::FromDouble(const std::vector<double>& values) {
  return MakeFixed(Float64(), BufferFromVector(values), values.size());
}

ColumnPtr Column::FromBool(const std::vector<bool>& values) {
  std::vector<uint8_t> bytes(values.size());
  for (size_t i = 0; i < values.size(); ++i) bytes[i] = values[i] ? 1 : 0;
  return MakeFixed(Bool(), BufferFromVector(bytes), values.size());
}

ColumnPtr Column::FromDecimal(const std::vector<int64_t>& raw, int scale) {
  return MakeFixed(Decimal(scale), BufferFromVector(raw), raw.size());
}

ColumnPtr Column::FromDate(const std::vector<int32_t>& days) {
  return MakeFixed(Date32(), BufferFromVector(days), days.size());
}

ColumnPtr Column::FromStrings(const std::vector<std::string>& values) {
  std::vector<int64_t> offsets(values.size() + 1, 0);
  size_t total = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    total += values[i].size();
    offsets[i + 1] = static_cast<int64_t>(total);
  }
  mem::Buffer chars = mem::Buffer::Allocate(total).ValueOrDie();
  size_t pos = 0;
  for (const auto& s : values) {
    std::memcpy(chars.data() + pos, s.data(), s.size());
    pos += s.size();
  }
  return MakeString(BufferFromVector(offsets), std::move(chars), values.size());
}

ColumnPtr Column::FromInt64(const std::vector<int64_t>& values,
                            const std::vector<bool>& valid) {
  size_t null_count = 0;
  mem::Buffer validity = ValidityFromBools(valid, &null_count);
  return MakeFixed(Int64(), BufferFromVector(values), values.size(),
                   std::move(validity), null_count);
}

ColumnPtr Column::FromStrings(const std::vector<std::string>& values,
                              const std::vector<bool>& valid) {
  ColumnPtr base = FromStrings(values);
  size_t null_count = 0;
  mem::Buffer validity = ValidityFromBools(valid, &null_count);
  auto col = std::shared_ptr<Column>(new Column());
  col->type_ = String();
  col->length_ = values.size();
  col->data_ = BufferFromBytes(base->offsets(), (values.size() + 1) * sizeof(int64_t));
  col->chars_ = BufferFromBytes(base->chars(), base->chars_size());
  col->validity_ = std::move(validity);
  col->null_count_ = null_count;
  return col;
}

Scalar Column::GetScalar(size_t i) const {
  if (IsNull(i)) return Scalar::Null(type_);
  switch (type_.id) {
    case TypeId::kBool:
      return Scalar::FromBool(data<uint8_t>()[i] != 0);
    case TypeId::kInt32:
      return Scalar::FromInt32(data<int32_t>()[i]);
    case TypeId::kInt64:
      return Scalar::FromInt64(data<int64_t>()[i]);
    case TypeId::kFloat64:
      return Scalar::FromDouble(data<double>()[i]);
    case TypeId::kDecimal64:
      return Scalar::FromDecimal(data<int64_t>()[i], type_.scale);
    case TypeId::kDate32:
      return Scalar::FromDate(data<int32_t>()[i]);
    case TypeId::kString:
      return Scalar::FromString(std::string(StringAt(i)));
    case TypeId::kList: {
      // Lists box as their rendering (no list Scalar representation).
      std::string out = "[";
      const int64_t* off = offsets();
      for (int64_t k = off[i]; k < off[i + 1]; ++k) {
        if (k > off[i]) out += ", ";
        out += child_->GetScalar(static_cast<size_t>(k)).ToString();
      }
      return Scalar::FromString(out + "]");
    }
  }
  return Scalar::Null(type_);
}

bool Column::Equals(const Column& other) const {
  if (type_ != other.type_ || length_ != other.length_ ||
      null_count_ != other.null_count_) {
    return false;
  }
  for (size_t i = 0; i < length_; ++i) {
    bool n1 = IsNull(i), n2 = other.IsNull(i);
    if (n1 != n2) return false;
    if (n1) continue;
    if (type_.id == TypeId::kString) {
      if (StringAt(i) != other.StringAt(i)) return false;
    } else if (!(GetScalar(i) == other.GetScalar(i))) {
      return false;
    }
  }
  return true;
}

}  // namespace sirius::format
