#include "format/encoding.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <string>

#include "common/bitutil.h"
#include "format/builder.h"

namespace sirius::format {

const char* CodecName(Codec c) {
  switch (c) {
    case Codec::kPlain:
      return "plain";
    case Codec::kForBitpack:
      return "for-bitpack";
    case Codec::kDict:
      return "dict";
  }
  return "?";
}

int BitsFor(uint64_t value) {
  int bits = 0;
  while (value != 0) {
    ++bits;
    value >>= 1;
  }
  return bits;
}

void BitpackInto(const uint64_t* values, size_t n, int bit_width, uint8_t* out) {
  // Dense little-endian bit stream.
  size_t bit_pos = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = values[i];
    for (int b = 0; b < bit_width; ++b) {
      if ((v >> b) & 1) out[bit_pos >> 3] |= uint8_t(1u << (bit_pos & 7));
      ++bit_pos;
    }
  }
}

uint64_t BitpackRead(const uint8_t* packed, size_t i, int bit_width) {
  uint64_t v = 0;
  size_t bit_pos = i * static_cast<size_t>(bit_width);
  for (int b = 0; b < bit_width; ++b) {
    if ((packed[bit_pos >> 3] >> (bit_pos & 7)) & 1) v |= uint64_t(1) << b;
    ++bit_pos;
  }
  return v;
}

namespace {

mem::Buffer CopyBuffer(const void* src, size_t bytes) {
  mem::Buffer b = mem::Buffer::Allocate(bytes).ValueOrDie();
  if (bytes > 0) std::memcpy(b.data(), src, bytes);
  return b;
}

mem::Buffer CopyValidity(const Column& col) {
  if (!col.has_nulls()) return {};
  return CopyBuffer(col.validity(), bit::BytesForBits(col.length()));
}

/// Packed buffer for n values at bit_width, zero-initialized.
mem::Buffer PackedBuffer(size_t n, int bit_width) {
  size_t bytes = bit::BytesForBits(n * static_cast<size_t>(bit_width));
  return mem::Buffer::AllocateZeroed(std::max<size_t>(1, bytes)).ValueOrDie();
}

/// Gathers the integer values of a fixed-width column as int64 (nulls -> 0).
void ValuesAsInt64(const Column& col, std::vector<int64_t>* out) {
  const size_t n = col.length();
  out->resize(n);
  switch (col.type().byte_width()) {
    case 8:
      std::memcpy(out->data(), col.data<int64_t>(), n * 8);
      break;
    case 4: {
      const int32_t* src = col.data<int32_t>();
      for (size_t i = 0; i < n; ++i) (*out)[i] = src[i];
      break;
    }
    default: {
      const uint8_t* src = col.data<uint8_t>();
      for (size_t i = 0; i < n; ++i) (*out)[i] = src[i];
    }
  }
  // Normalize null slots so they cannot blow up the value range.
  if (col.has_nulls()) {
    for (size_t i = 0; i < n; ++i) {
      if (col.IsNull(i)) (*out)[i] = 0;
    }
  }
}

Result<EncodedColumn> EncodeForBitpack(const ColumnPtr& col) {
  EncodedColumn e;
  e.type_ = col->type();
  e.length_ = col->length();
  e.plain_bytes_ = col->MemoryUsage();
  e.validity_ = CopyValidity(*col);
  e.null_count_ = col->null_count();

  std::vector<int64_t> values;
  ValuesAsInt64(*col, &values);
  int64_t min = 0, max = 0;
  if (!values.empty()) {
    min = *std::min_element(values.begin(), values.end());
    max = *std::max_element(values.begin(), values.end());
  }
  e.codec_ = Codec::kForBitpack;
  e.frame_of_reference_ = min;
  e.bit_width_ = BitsFor(static_cast<uint64_t>(max - min));

  std::vector<uint64_t> deltas(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    deltas[i] = static_cast<uint64_t>(values[i] - min);
  }
  e.data_ = PackedBuffer(values.size(), e.bit_width_);
  BitpackInto(deltas.data(), deltas.size(), e.bit_width_, e.data_.data());
  return e;
}

Result<EncodedColumn> EncodePlain(const ColumnPtr& col) {
  EncodedColumn e;
  e.type_ = col->type();
  e.length_ = col->length();
  e.plain_bytes_ = col->MemoryUsage();
  e.codec_ = Codec::kPlain;
  e.validity_ = CopyValidity(*col);
  e.null_count_ = col->null_count();
  if (col->type().is_string()) {
    e.aux_ = CopyBuffer(col->offsets(), (col->length() + 1) * sizeof(int64_t));
    e.chars_ = CopyBuffer(col->chars(), col->chars_size());
  } else {
    e.data_ = CopyBuffer(col->data<uint8_t>(),
                         col->length() * col->type().byte_width());
  }
  return e;
}

Result<EncodedColumn> EncodeDict(const ColumnPtr& col,
                                 const std::map<std::string_view, size_t>& dict) {
  EncodedColumn e;
  e.type_ = col->type();
  e.length_ = col->length();
  e.plain_bytes_ = col->MemoryUsage();
  e.codec_ = Codec::kDict;
  e.validity_ = CopyValidity(*col);
  e.null_count_ = col->null_count();
  e.dict_size_ = dict.size();
  e.bit_width_ = std::max(1, BitsFor(dict.size() > 0 ? dict.size() - 1 : 0));

  // Dictionary payload (offsets + chars), in code order.
  std::vector<std::string_view> by_code(dict.size());
  for (const auto& [value, code] : dict) by_code[code] = value;
  std::vector<int64_t> offsets(dict.size() + 1, 0);
  std::string chars;
  for (size_t c = 0; c < by_code.size(); ++c) {
    chars.append(by_code[c].data(), by_code[c].size());
    offsets[c + 1] = static_cast<int64_t>(chars.size());
  }
  e.aux_ = CopyBuffer(offsets.data(), offsets.size() * sizeof(int64_t));
  e.chars_ = CopyBuffer(chars.data(), chars.size());

  // Codes, bit-packed.
  std::vector<uint64_t> codes(col->length(), 0);
  for (size_t i = 0; i < col->length(); ++i) {
    if (!col->IsNull(i)) codes[i] = dict.at(col->StringAt(i));
  }
  e.data_ = PackedBuffer(col->length(), e.bit_width_);
  BitpackInto(codes.data(), codes.size(), e.bit_width_, e.data_.data());
  return e;
}

}  // namespace

Result<EncodedColumn> Encode(const ColumnPtr& column) {
  if (column == nullptr) return Status::Invalid("Encode: null column");
  switch (column->type().id) {
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDecimal64:
    case TypeId::kDate32:
    case TypeId::kBool:
      return EncodeForBitpack(column);
    case TypeId::kFloat64:
      return EncodePlain(column);
    case TypeId::kList: {
      // Nested types pass through uncompressed (future work, like the
      // paper's own compression roadmap).
      EncodedColumn e;
      e.type_ = column->type();
      e.length_ = column->length();
      e.plain_bytes_ = column->MemoryUsage();
      e.codec_ = Codec::kPlain;
      e.passthrough_ = column;
      return e;
    }
    case TypeId::kString: {
      // Dictionary-encode when the distinct count is low enough to pay off.
      std::map<std::string_view, size_t> dict;
      for (size_t i = 0; i < column->length(); ++i) {
        if (column->IsNull(i)) continue;
        auto [it, inserted] = dict.emplace(column->StringAt(i), dict.size());
        (void)it;
        if (dict.size() > column->length() / 2 + 1) {
          return EncodePlain(column);  // high cardinality: not worth it
        }
      }
      return EncodeDict(column, dict);
    }
  }
  return Status::Internal("Encode: unhandled type");
}

Result<ColumnPtr> Decode(const EncodedColumn& e) {
  const size_t n = e.length_;
  if (e.passthrough_ != nullptr) return e.passthrough_;
  switch (e.codec_) {
    case Codec::kPlain: {
      if (e.type_.is_string()) {
        mem::Buffer off = CopyBuffer(e.aux_.data(), e.aux_.size());
        mem::Buffer chars = CopyBuffer(e.chars_.data(), e.chars_.size());
        mem::Buffer validity = e.validity_.empty()
                                   ? mem::Buffer{}
                                   : CopyBuffer(e.validity_.data(),
                                                e.validity_.size());
        return Column::MakeString(std::move(off), std::move(chars), n,
                                  std::move(validity), e.null_count_);
      }
      mem::Buffer data = CopyBuffer(e.data_.data(), e.data_.size());
      mem::Buffer validity =
          e.validity_.empty()
              ? mem::Buffer{}
              : CopyBuffer(e.validity_.data(), e.validity_.size());
      return Column::MakeFixed(e.type_, std::move(data), n, std::move(validity),
                               e.null_count_);
    }
    case Codec::kForBitpack: {
      const int width = e.type_.byte_width();
      mem::Buffer data =
          mem::Buffer::Allocate(std::max<size_t>(1, n * width)).ValueOrDie();
      for (size_t i = 0; i < n; ++i) {
        int64_t v = e.frame_of_reference_ +
                    static_cast<int64_t>(
                        BitpackRead(e.data_.data(), i, e.bit_width_));
        switch (width) {
          case 8:
            data.data_as<int64_t>()[i] = v;
            break;
          case 4:
            data.data_as<int32_t>()[i] = static_cast<int32_t>(v);
            break;
          default:
            data.data_as<uint8_t>()[i] = static_cast<uint8_t>(v);
        }
      }
      mem::Buffer validity =
          e.validity_.empty()
              ? mem::Buffer{}
              : CopyBuffer(e.validity_.data(), e.validity_.size());
      return Column::MakeFixed(e.type_, std::move(data), n, std::move(validity),
                               e.null_count_);
    }
    case Codec::kDict: {
      const int64_t* dict_offsets = e.aux_.data_as<int64_t>();
      const char* dict_chars = e.chars_.data_as<char>();
      ColumnBuilder b(String());
      b.Reserve(n);
      const uint8_t* validity =
          e.validity_.empty() ? nullptr : e.validity_.data();
      for (size_t i = 0; i < n; ++i) {
        if (validity != nullptr && !bit::GetBit(validity, i)) {
          b.AppendNull();
          continue;
        }
        uint64_t code = BitpackRead(e.data_.data(), i, e.bit_width_);
        if (code >= e.dict_size_) {
          return Status::Internal("Decode: dictionary code out of range");
        }
        b.AppendString(std::string_view(
            dict_chars + dict_offsets[code],
            static_cast<size_t>(dict_offsets[code + 1] - dict_offsets[code])));
      }
      return b.Finish();
    }
  }
  return Status::Internal("Decode: unhandled codec");
}

}  // namespace sirius::format
