// Lightweight columnar compression for the GPU caching region.
//
// The paper (§3.4) names lightweight compression (FastLanes-class [18]) as
// the lever against GPU memory capacity limits; Sirius' buffer manager
// stores cached columns encoded and decodes on scan. Codecs:
//   - kForBitpack : frame-of-reference + bit packing (ints, decimals, dates)
//   - kDict       : dictionary + bit-packed codes (low-cardinality strings)
//   - kPlain      : verbatim (doubles, high-cardinality strings, bools)
// Codec choice is automatic per column.

#pragma once

#include <cstdint>

#include "common/result.h"
#include "format/column.h"

namespace sirius::format {

enum class Codec : uint8_t { kPlain, kForBitpack, kDict };

const char* CodecName(Codec c);

/// \brief A compressed column: payload buffers + enough metadata to decode.
class EncodedColumn {
 public:
  const DataType& type() const { return type_; }
  size_t length() const { return length_; }
  Codec codec() const { return codec_; }

  /// Total compressed footprint (payload + aux + validity), bytes.
  uint64_t CompressedBytes() const {
    if (passthrough_ != nullptr) return passthrough_->MemoryUsage();
    return data_.size() + aux_.size() + chars_.size() + validity_.size();
  }

  /// The uncompressed footprint of the source column, bytes.
  uint64_t PlainBytes() const { return plain_bytes_; }

  double CompressionRatio() const {
    uint64_t c = CompressedBytes();
    return c == 0 ? 1.0 : static_cast<double>(plain_bytes_) / static_cast<double>(c);
  }

  // Representation is exposed for the codec implementation and tests; treat
  // as read-only outside encoding.cc.
  DataType type_;
  size_t length_ = 0;
  Codec codec_ = Codec::kPlain;
  uint64_t plain_bytes_ = 0;

  mem::Buffer data_;   ///< packed values / codes / plain payload
  mem::Buffer aux_;    ///< dict offsets (int64) for kDict; offsets for plain strings
  mem::Buffer chars_;  ///< dict/plain string characters
  mem::Buffer validity_;
  size_t null_count_ = 0;

  // kForBitpack / kDict parameters.
  int64_t frame_of_reference_ = 0;
  int bit_width_ = 0;
  size_t dict_size_ = 0;
  /// Uncompressed passthrough for nested types.
  ColumnPtr passthrough_;
};

/// Compresses a column, picking the best applicable codec.
Result<EncodedColumn> Encode(const ColumnPtr& column);

/// Exact inverse of Encode (round-trips values, nulls, types).
Result<ColumnPtr> Decode(const EncodedColumn& encoded);

/// \name Bit-packing primitives (exposed for tests).
/// @{
/// Bits needed to represent `value` (0 -> 0 bits).
int BitsFor(uint64_t value);
/// Packs `values[i]` (each < 2^bit_width) into a dense bit stream.
void BitpackInto(const uint64_t* values, size_t n, int bit_width, uint8_t* out);
/// Reads the i-th `bit_width`-wide value from a dense bit stream.
uint64_t BitpackRead(const uint8_t* packed, size_t i, int bit_width);
/// @}

}  // namespace sirius::format
