// Column: an immutable Arrow-layout column (values + optional validity
// bitmap; strings are int64 offsets + UTF-8 chars).

#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bitutil.h"
#include "common/result.h"
#include "format/scalar.h"
#include "format/types.h"
#include "mem/buffer.h"

namespace sirius::format {

class Column;
using ColumnPtr = std::shared_ptr<Column>;

/// \brief An immutable typed column.
///
/// Fixed-width types store `length * byte_width` bytes in `data`. Strings
/// store `length + 1` int64 offsets in `data` and the character payload in
/// `chars`. A missing validity buffer means all values are valid.
class Column {
 public:
  /// Wraps buffers into a fixed-width column.
  static ColumnPtr MakeFixed(DataType type, mem::Buffer data, size_t length,
                             mem::Buffer validity = {}, size_t null_count = 0);

  /// Wraps buffers into a string column (`offsets` has length+1 int64s).
  static ColumnPtr MakeString(mem::Buffer offsets, mem::Buffer chars, size_t length,
                              mem::Buffer validity = {}, size_t null_count = 0);

  /// Wraps a list column: `offsets` (length+1 int64s) index into `child`.
  static ColumnPtr MakeList(mem::Buffer offsets, ColumnPtr child, size_t length,
                            mem::Buffer validity = {}, size_t null_count = 0);

  /// \name Convenience constructors (tests / small data).
  /// @{
  static ColumnPtr FromInt32(const std::vector<int32_t>& values);
  static ColumnPtr FromInt64(const std::vector<int64_t>& values);
  static ColumnPtr FromDouble(const std::vector<double>& values);
  static ColumnPtr FromBool(const std::vector<bool>& values);
  /// Raw decimal units with the given scale.
  static ColumnPtr FromDecimal(const std::vector<int64_t>& raw, int scale);
  static ColumnPtr FromDate(const std::vector<int32_t>& days);
  static ColumnPtr FromStrings(const std::vector<std::string>& values);
  /// As above but with a validity vector (false == NULL).
  static ColumnPtr FromInt64(const std::vector<int64_t>& values,
                             const std::vector<bool>& valid);
  static ColumnPtr FromStrings(const std::vector<std::string>& values,
                               const std::vector<bool>& valid);
  /// A LIST<FLOAT64> column (embedding vectors and similar).
  static ColumnPtr FromListsOfDoubles(
      const std::vector<std::vector<double>>& lists);
  /// @}

  const DataType& type() const { return type_; }
  size_t length() const { return length_; }
  size_t null_count() const { return null_count_; }
  bool has_nulls() const { return null_count_ > 0; }

  /// Raw value pointer, reinterpreted as T (caller matches the type).
  template <typename T>
  const T* data() const {
    return data_.data_as<T>();
  }
  template <typename T>
  T* mutable_data() {
    return data_.data_as<T>();
  }

  /// String offsets (int64, length+1 entries). String columns only.
  const int64_t* offsets() const { return data_.data_as<int64_t>(); }
  const char* chars() const { return chars_.data_as<char>(); }
  size_t chars_size() const { return chars_.size(); }

  /// Child values of a list column (nullptr otherwise).
  const ColumnPtr& list_child() const { return child_; }
  /// Number of elements in the i-th list.
  size_t ListLength(size_t i) const {
    return static_cast<size_t>(offsets()[i + 1] - offsets()[i]);
  }

  /// Validity bitmap, or nullptr when the column has no nulls.
  const uint8_t* validity() const {
    return validity_.empty() ? nullptr : validity_.data();
  }

  bool IsNull(size_t i) const {
    return null_count_ > 0 && !bit::GetBit(validity_.data(), i);
  }

  /// The i-th string value. String columns only; undefined for NULL slots.
  std::string_view StringAt(size_t i) const {
    const int64_t* off = offsets();
    return std::string_view(chars() + off[i], static_cast<size_t>(off[i + 1] - off[i]));
  }

  /// Boxes the i-th value into a Scalar (NULL-aware).
  Scalar GetScalar(size_t i) const;

  /// Total bytes across all buffers (the unit charged to the cost model).
  uint64_t MemoryUsage() const {
    return data_.size() + chars_.size() + validity_.size() +
           (child_ == nullptr ? 0 : child_->MemoryUsage());
  }

  /// Deep value equality (types, lengths, nulls, values).
  bool Equals(const Column& other) const;

 private:
  Column() = default;

  DataType type_;
  size_t length_ = 0;
  size_t null_count_ = 0;
  mem::Buffer data_;
  mem::Buffer chars_;
  mem::Buffer validity_;
  ColumnPtr child_;  ///< list element values
};

/// Builds a validity buffer from a bool vector; returns an empty buffer and
/// *null_count = 0 when everything is valid.
mem::Buffer ValidityFromBools(const std::vector<bool>& valid, size_t* null_count);

}  // namespace sirius::format
