#include "format/types.h"

#include <cstdio>

namespace sirius::format {

int DataType::byte_width() const {
  switch (id) {
    case TypeId::kBool:
      return 1;
    case TypeId::kInt32:
    case TypeId::kDate32:
      return 4;
    case TypeId::kInt64:
    case TypeId::kFloat64:
    case TypeId::kDecimal64:
      return 8;
    case TypeId::kString:
    case TypeId::kList:
      return 8;  // int64 offsets
  }
  return 8;
}

std::string DataType::ToString() const {
  switch (id) {
    case TypeId::kBool:
      return "BOOL";
    case TypeId::kInt32:
      return "INT32";
    case TypeId::kInt64:
      return "INT64";
    case TypeId::kFloat64:
      return "FLOAT64";
    case TypeId::kDecimal64:
      return "DECIMAL64(" + std::to_string(scale) + ")";
    case TypeId::kDate32:
      return "DATE32";
    case TypeId::kString:
      return "STRING";
    case TypeId::kList:
      return "LIST<" + (child == nullptr ? std::string("?") : child->ToString()) +
             ">";
  }
  return "?";
}

int64_t DecimalPow10(int scale) {
  static const int64_t kPow10[19] = {1LL,
                                     10LL,
                                     100LL,
                                     1000LL,
                                     10000LL,
                                     100000LL,
                                     1000000LL,
                                     10000000LL,
                                     100000000LL,
                                     1000000000LL,
                                     10000000000LL,
                                     100000000000LL,
                                     1000000000000LL,
                                     10000000000000LL,
                                     100000000000000LL,
                                     1000000000000000LL,
                                     10000000000000000LL,
                                     100000000000000000LL,
                                     1000000000000000000LL};
  if (scale < 0) scale = 0;
  if (scale > 18) scale = 18;
  return kPow10[scale];
}

// Howard Hinnant's algorithms for civil<->days conversion.
int32_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int>(doe) - 719468;
}

void CivilFromDays(int32_t z, int* year, int* month, int* day) {
  z += 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *year = y + (m <= 2);
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

int32_t ParseDate(const std::string& s) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(s.c_str(), "%d-%d-%d", &y, &m, &d) != 3) return INT32_MIN;
  if (m < 1 || m > 12 || d < 1 || d > 31) return INT32_MIN;
  return DaysFromCivil(y, m, d);
}

std::string FormatDate(int32_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

}  // namespace sirius::format
