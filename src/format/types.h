// Logical data types of the Sirius columnar format.
//
// Both Sirius and libcudf derive their columnar format from Apache Arrow
// (paper §3.2.3); this module is the shared in-memory representation.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace sirius::format {

enum class TypeId : uint8_t {
  kBool,
  kInt32,
  kInt64,
  kFloat64,
  kDecimal64,  ///< fixed-point int64 with a per-type scale (money columns)
  kDate32,     ///< days since 1970-01-01
  kString,     ///< UTF-8, offsets + chars (Arrow layout)
  kList,       ///< variable-length list of a child type (offsets + child)
};

/// \brief A logical type: a TypeId plus decimal scale and, for lists, the
/// element type.
struct DataType {
  TypeId id = TypeId::kInt64;
  /// Number of fractional digits for kDecimal64 (value = raw / 10^scale).
  int scale = 0;
  /// Element type for kList (null otherwise).
  std::shared_ptr<DataType> child;

  DataType() = default;
  DataType(TypeId tid) : id(tid) {}  // NOLINT(google-explicit-constructor)
  DataType(TypeId tid, int s) : id(tid), scale(s) {}

  bool operator==(const DataType& o) const {
    if (id != o.id || scale != o.scale) return false;
    if (id != TypeId::kList) return true;
    if ((child == nullptr) != (o.child == nullptr)) return false;
    return child == nullptr || *child == *o.child;
  }
  bool operator!=(const DataType& o) const { return !(*this == o); }

  bool is_string() const { return id == TypeId::kString; }
  bool is_list() const { return id == TypeId::kList; }
  bool is_decimal() const { return id == TypeId::kDecimal64; }
  bool is_numeric() const {
    return id == TypeId::kInt32 || id == TypeId::kInt64 || id == TypeId::kFloat64 ||
           id == TypeId::kDecimal64;
  }
  /// Width in bytes of the fixed-size physical representation (offsets width
  /// for strings).
  int byte_width() const;

  std::string ToString() const;
};

inline DataType Bool() { return DataType(TypeId::kBool); }
inline DataType Int32() { return DataType(TypeId::kInt32); }
inline DataType Int64() { return DataType(TypeId::kInt64); }
inline DataType Float64() { return DataType(TypeId::kFloat64); }
inline DataType Decimal(int scale) { return DataType(TypeId::kDecimal64, scale); }
inline DataType Date32() { return DataType(TypeId::kDate32); }
inline DataType String() { return DataType(TypeId::kString); }
inline DataType List(DataType element) {
  DataType t(TypeId::kList);
  t.child = std::make_shared<DataType>(std::move(element));
  return t;
}

/// 10^scale for decimal rescaling, scale in [0, 18].
int64_t DecimalPow10(int scale);

/// \name Date helpers (proleptic Gregorian, days since 1970-01-01).
/// @{
int32_t DaysFromCivil(int year, int month, int day);
void CivilFromDays(int32_t days, int* year, int* month, int* day);
/// Parses "YYYY-MM-DD"; returns INT32_MIN on malformed input.
int32_t ParseDate(const std::string& s);
std::string FormatDate(int32_t days);
/// @}

}  // namespace sirius::format
