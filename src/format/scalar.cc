#include "format/scalar.h"

#include <cmath>
#include <cstdio>

namespace sirius::format {

double Scalar::AsDouble() const {
  if (null_) return 0.0;
  switch (type_.id) {
    case TypeId::kFloat64:
      return std::get<double>(v_);
    case TypeId::kDecimal64:
      return static_cast<double>(std::get<int64_t>(v_)) /
             static_cast<double>(DecimalPow10(type_.scale));
    case TypeId::kString:
    case TypeId::kList:
      return 0.0;
    default:
      return static_cast<double>(std::get<int64_t>(v_));
  }
}

std::string Scalar::ToString() const {
  if (null_) return "NULL";
  switch (type_.id) {
    case TypeId::kBool:
      return bool_value() ? "true" : "false";
    case TypeId::kInt32:
    case TypeId::kInt64:
      return std::to_string(int_value());
    case TypeId::kFloat64: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", double_value());
      return buf;
    }
    case TypeId::kDecimal64: {
      int64_t raw = int_value();
      int64_t p = DecimalPow10(type_.scale);
      int64_t whole = raw / p;
      int64_t frac = raw % p;
      if (frac < 0) frac = -frac;
      if (type_.scale == 0) return std::to_string(whole);
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%s%lld.%0*lld",
                    (raw < 0 && whole == 0) ? "-" : "",
                    static_cast<long long>(whole), type_.scale,
                    static_cast<long long>(frac));
      return buf;
    }
    case TypeId::kDate32:
      return FormatDate(static_cast<int32_t>(int_value()));
    case TypeId::kString:
      return "'" + string_value() + "'";
    case TypeId::kList:
      return string_value();  // lists box as their rendering
  }
  return "?";
}

bool Scalar::operator==(const Scalar& o) const {
  if (null_ != o.null_) return false;
  if (null_) return true;
  if (type_.id == TypeId::kString || o.type_.id == TypeId::kString) {
    return type_.id == o.type_.id && string_value() == o.string_value();
  }
  if (type_.id == TypeId::kFloat64 || o.type_.id == TypeId::kFloat64) {
    return std::fabs(AsDouble() - o.AsDouble()) <= 1e-9 * std::max(1.0, std::fabs(AsDouble()));
  }
  if (type_.is_decimal() || o.type_.is_decimal()) {
    // Compare at the larger scale.
    int s = std::max(type_.scale, o.type_.scale);
    int64_t a = int_value() * DecimalPow10(s - type_.scale);
    int64_t b = o.int_value() * DecimalPow10(s - o.type_.scale);
    return a == b;
  }
  return int_value() == o.int_value();
}

}  // namespace sirius::format
