// Schema and Table: named, typed collections of columns.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "format/column.h"

namespace sirius::format {

/// \brief A named, typed column slot.
struct Field {
  std::string name;
  DataType type;

  Field() = default;
  Field(std::string n, DataType t) : name(std::move(n)), type(t) {}
  bool operator==(const Field& o) const { return name == o.name && type == o.type; }
};

/// \brief Ordered list of fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of a field by name, -1 when absent.
  int IndexOf(const std::string& name) const;

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  bool Equals(const Schema& other) const { return fields_ == other.fields_; }
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

class Table;
using TablePtr = std::shared_ptr<Table>;

/// \brief An immutable table: a schema plus equal-length columns.
class Table {
 public:
  /// Builds a table; column count/lengths must agree with the schema.
  static Result<TablePtr> Make(Schema schema, std::vector<ColumnPtr> columns);

  /// An empty (0-column, 0-row) table.
  static TablePtr Empty();

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }

  const ColumnPtr& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnPtr>& columns() const { return columns_; }

  /// Column by name; nullptr when absent.
  ColumnPtr ColumnByName(const std::string& name) const;

  /// Projects a subset of columns (by index) into a new table.
  Result<TablePtr> SelectColumns(const std::vector<int>& indices) const;

  /// Total bytes across all column buffers.
  uint64_t MemoryUsage() const;

  /// Deep value equality including column names.
  bool Equals(const Table& other) const;

  /// Renders up to `limit` rows as an aligned ASCII table.
  std::string ToString(size_t limit = 20) const;

  /// Compares value-by-value ignoring row order: sorts a canonical text
  /// rendering of each row on both sides. For cross-engine result checks.
  bool EqualsUnordered(const Table& other) const;

 private:
  Table() = default;
  Schema schema_;
  std::vector<ColumnPtr> columns_;
  size_t num_rows_ = 0;
};

}  // namespace sirius::format
