// Scalar: a single typed value (or NULL), used by expressions, literals,
// aggregation results and scalar subqueries.

#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "format/types.h"

namespace sirius::format {

/// \brief A dynamically typed single value.
///
/// Physical storage: bool, int64 (covers INT32/INT64/DATE32/DECIMAL64),
/// double, or string. The logical DataType disambiguates.
class Scalar {
 public:
  /// NULL of unspecified type.
  Scalar() : type_(Int64()), null_(true) {}

  static Scalar Null(DataType t = Int64()) {
    Scalar s;
    s.type_ = t;
    return s;
  }
  static Scalar FromBool(bool v) { return Scalar(Bool(), int64_t(v)); }
  static Scalar FromInt32(int32_t v) { return Scalar(Int32(), int64_t(v)); }
  static Scalar FromInt64(int64_t v) { return Scalar(Int64(), v); }
  static Scalar FromDouble(double v) { return Scalar(Float64(), v); }
  /// Raw decimal units: value = raw / 10^scale.
  static Scalar FromDecimal(int64_t raw, int scale) {
    return Scalar(Decimal(scale), raw);
  }
  static Scalar FromDate(int32_t days) { return Scalar(Date32(), int64_t(days)); }
  static Scalar FromString(std::string v) { return Scalar(String(), std::move(v)); }

  const DataType& type() const { return type_; }
  bool is_null() const { return null_; }

  bool bool_value() const { return std::get<int64_t>(v_) != 0; }
  int64_t int_value() const { return std::get<int64_t>(v_); }
  double double_value() const { return std::get<double>(v_); }
  const std::string& string_value() const { return std::get<std::string>(v_); }

  /// Numeric value as double regardless of physical storage (decimals are
  /// descaled). Returns 0 for NULL/strings.
  double AsDouble() const;

  /// Human-readable rendering ("NULL", "3.14", "'abc'", "1995-03-15").
  std::string ToString() const;

  bool operator==(const Scalar& o) const;

 private:
  Scalar(DataType t, int64_t v) : type_(t), null_(false), v_(v) {}
  Scalar(DataType t, double v) : type_(t), null_(false), v_(v) {}
  Scalar(DataType t, std::string v) : type_(t), null_(false), v_(std::move(v)) {}

  DataType type_;
  bool null_ = false;
  std::variant<int64_t, double, std::string> v_ = int64_t{0};
};

}  // namespace sirius::format
