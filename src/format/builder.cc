#include "format/builder.h"

#include <cstring>

namespace sirius::format {

void ColumnBuilder::Reserve(size_t n) {
  valid_.reserve(n);
  if (type_.id == TypeId::kString) {
    offsets_.reserve(n + 1);
  } else if (type_.id == TypeId::kFloat64) {
    doubles_.reserve(n);
  } else {
    ints_.reserve(n);
  }
}

void ColumnBuilder::AppendNull() {
  ++null_count_;
  valid_.push_back(false);
  switch (type_.id) {
    case TypeId::kString:
      offsets_.push_back(offsets_.back());
      break;
    case TypeId::kFloat64:
      doubles_.push_back(0.0);
      break;
    default:
      ints_.push_back(0);
  }
}

void ColumnBuilder::AppendInt(int64_t v) {
  valid_.push_back(true);
  if (type_.id == TypeId::kFloat64) {
    doubles_.push_back(static_cast<double>(v));
  } else {
    ints_.push_back(v);
  }
}

void ColumnBuilder::AppendDouble(double v) {
  valid_.push_back(true);
  if (type_.id == TypeId::kFloat64) {
    doubles_.push_back(v);
  } else {
    ints_.push_back(static_cast<int64_t>(v));
  }
}

void ColumnBuilder::AppendString(std::string_view v) {
  valid_.push_back(true);
  chars_.append(v.data(), v.size());
  offsets_.push_back(static_cast<int64_t>(chars_.size()));
}

Status ColumnBuilder::AppendScalar(const Scalar& s) {
  if (s.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_.id) {
    case TypeId::kString:
      if (s.type().id != TypeId::kString) {
        return Status::TypeError("AppendScalar: expected string, got " +
                                 s.type().ToString());
      }
      AppendString(s.string_value());
      return Status::OK();
    case TypeId::kFloat64:
      AppendDouble(s.AsDouble());
      return Status::OK();
    case TypeId::kDecimal64: {
      if (s.type().is_decimal()) {
        int diff = type_.scale - s.type().scale;
        if (diff >= 0) {
          AppendInt(s.int_value() * DecimalPow10(diff));
        } else {
          AppendInt(s.int_value() / DecimalPow10(-diff));
        }
      } else if (s.type().id == TypeId::kFloat64) {
        AppendInt(static_cast<int64_t>(s.double_value() *
                                       static_cast<double>(DecimalPow10(type_.scale)) +
                                       (s.double_value() >= 0 ? 0.5 : -0.5)));
      } else {
        AppendInt(s.int_value() * DecimalPow10(type_.scale));
      }
      return Status::OK();
    }
    default:
      if (s.type().id == TypeId::kString) {
        return Status::TypeError("AppendScalar: expected numeric, got string");
      }
      if (s.type().id == TypeId::kFloat64) {
        AppendInt(static_cast<int64_t>(s.double_value()));
      } else if (s.type().is_decimal()) {
        AppendInt(s.int_value() / DecimalPow10(s.type().scale));
      } else {
        AppendInt(s.int_value());
      }
      return Status::OK();
  }
}

ColumnPtr ColumnBuilder::Finish() {
  const size_t n = valid_.size();
  size_t null_count = 0;
  mem::Buffer validity;
  if (null_count_ > 0) {
    validity = ValidityFromBools(valid_, &null_count);
  }

  ColumnPtr result;
  if (type_.id == TypeId::kString) {
    mem::Buffer off =
        mem::Buffer::Allocate(offsets_.size() * sizeof(int64_t)).ValueOrDie();
    std::memcpy(off.data(), offsets_.data(), offsets_.size() * sizeof(int64_t));
    mem::Buffer chars = mem::Buffer::Allocate(chars_.size()).ValueOrDie();
    if (!chars_.empty()) std::memcpy(chars.data(), chars_.data(), chars_.size());
    result = Column::MakeString(std::move(off), std::move(chars), n,
                                std::move(validity), null_count);
  } else if (type_.id == TypeId::kFloat64) {
    mem::Buffer data = mem::Buffer::Allocate(n * sizeof(double)).ValueOrDie();
    std::memcpy(data.data(), doubles_.data(), n * sizeof(double));
    result = Column::MakeFixed(type_, std::move(data), n, std::move(validity),
                               null_count);
  } else {
    const int width = type_.byte_width();
    mem::Buffer data = mem::Buffer::Allocate(n * width).ValueOrDie();
    if (width == 8) {
      std::memcpy(data.data(), ints_.data(), n * 8);
    } else if (width == 4) {
      auto* out = data.data_as<int32_t>();
      for (size_t i = 0; i < n; ++i) out[i] = static_cast<int32_t>(ints_[i]);
    } else {  // bool, 1 byte
      auto* out = data.data_as<uint8_t>();
      for (size_t i = 0; i < n; ++i) out[i] = ints_[i] != 0 ? 1 : 0;
    }
    result = Column::MakeFixed(type_, std::move(data), n, std::move(validity),
                               null_count);
  }

  ints_.clear();
  doubles_.clear();
  offsets_.assign(1, 0);
  chars_.clear();
  valid_.clear();
  null_count_ = 0;
  return result;
}

TableBuilder::TableBuilder(Schema schema) : schema_(std::move(schema)) {
  builders_.reserve(schema_.num_fields());
  for (const auto& f : schema_.fields()) builders_.emplace_back(f.type);
}

Result<TablePtr> TableBuilder::Finish() {
  std::vector<ColumnPtr> cols;
  cols.reserve(builders_.size());
  for (auto& b : builders_) cols.push_back(b.Finish());
  return Table::Make(schema_, std::move(cols));
}

}  // namespace sirius::format
