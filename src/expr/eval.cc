#include "expr/eval.h"

#include <cmath>
#include <cstring>

#include "expr/udf.h"
#include "format/builder.h"

namespace sirius::expr {

using format::Column;
using format::ColumnPtr;
using format::DataType;
using format::DecimalPow10;
using format::Scalar;
using format::TypeId;

namespace {

/// Uniform numeric view of an evaluated column: either int64 raw values (at
/// the column's own scale) or doubles, plus validity.
struct NumVec {
  bool is_double = false;
  int scale = 0;  // for int path (0 for plain ints/dates/bools)
  std::vector<int64_t> i;
  std::vector<double> d;
  std::vector<bool> valid;

  size_t size() const { return valid.size(); }

  double AsDouble(size_t k) const {
    if (is_double) return d[k];
    return static_cast<double>(i[k]) / static_cast<double>(DecimalPow10(scale));
  }
};

Status ToNum(const ColumnPtr& col, NumVec* out) {
  const size_t n = col->length();
  out->valid.assign(n, true);
  if (col->has_nulls()) {
    for (size_t k = 0; k < n; ++k) out->valid[k] = !col->IsNull(k);
  }
  switch (col->type().id) {
    case TypeId::kFloat64:
      out->is_double = true;
      out->d.assign(col->data<double>(), col->data<double>() + n);
      return Status::OK();
    case TypeId::kInt64:
      out->i.assign(col->data<int64_t>(), col->data<int64_t>() + n);
      return Status::OK();
    case TypeId::kDecimal64:
      out->scale = col->type().scale;
      out->i.assign(col->data<int64_t>(), col->data<int64_t>() + n);
      return Status::OK();
    case TypeId::kInt32:
    case TypeId::kDate32: {
      out->i.resize(n);
      const int32_t* src = col->data<int32_t>();
      for (size_t k = 0; k < n; ++k) out->i[k] = src[k];
      return Status::OK();
    }
    case TypeId::kBool: {
      out->i.resize(n);
      const uint8_t* src = col->data<uint8_t>();
      for (size_t k = 0; k < n; ++k) out->i[k] = src[k];
      return Status::OK();
    }
    case TypeId::kString:
    case TypeId::kList:
      return Status::TypeError("numeric operation on non-numeric column");
  }
  return Status::Internal("unhandled type");
}

/// Rescales both int paths to a common scale. Returns the common scale.
int AlignScales(NumVec* a, NumVec* b) {
  int s = std::max(a->scale, b->scale);
  auto rescale = [&](NumVec* v) {
    if (v->is_double || v->scale == s) return;
    int64_t mult = DecimalPow10(s - v->scale);
    for (auto& x : v->i) x *= mult;
    v->scale = s;
  };
  rescale(a);
  rescale(b);
  return s;
}

ColumnPtr MakeBoolColumn(const std::vector<uint8_t>& vals,
                         const std::vector<bool>& valid) {
  size_t null_count = 0;
  mem::Buffer validity = format::ValidityFromBools(valid, &null_count);
  mem::Buffer data = mem::Buffer::Allocate(vals.size()).ValueOrDie();
  if (!vals.empty()) std::memcpy(data.data(), vals.data(), vals.size());
  return Column::MakeFixed(format::Bool(), std::move(data), vals.size(),
                           std::move(validity), null_count);
}

ColumnPtr MakeNumColumn(const DataType& type, const NumVec& v) {
  size_t null_count = 0;
  mem::Buffer validity = format::ValidityFromBools(v.valid, &null_count);
  const size_t n = v.size();
  if (type.id == TypeId::kFloat64) {
    mem::Buffer data = mem::Buffer::Allocate(n * 8).ValueOrDie();
    std::memcpy(data.data(), v.d.data(), n * 8);
    return Column::MakeFixed(type, std::move(data), n, std::move(validity),
                             null_count);
  }
  if (type.byte_width() == 8) {
    mem::Buffer data = mem::Buffer::Allocate(n * 8).ValueOrDie();
    std::memcpy(data.data(), v.i.data(), n * 8);
    return Column::MakeFixed(type, std::move(data), n, std::move(validity),
                             null_count);
  }
  // 4-byte (int32/date32)
  mem::Buffer data = mem::Buffer::Allocate(n * 4).ValueOrDie();
  auto* out = data.data_as<int32_t>();
  for (size_t k = 0; k < n; ++k) out[k] = static_cast<int32_t>(v.i[k]);
  return Column::MakeFixed(type, std::move(data), n, std::move(validity),
                           null_count);
}

bool IsStringType(const ColumnPtr& c) { return c->type().is_string(); }

Result<ColumnPtr> EvalArithmetic(const Expr& e, ColumnPtr lc, ColumnPtr rc) {
  NumVec a, b;
  SIRIUS_RETURN_NOT_OK(ToNum(lc, &a));
  SIRIUS_RETURN_NOT_OK(ToNum(rc, &b));
  const size_t n = a.size();
  NumVec out;
  out.valid.resize(n);
  for (size_t k = 0; k < n; ++k) out.valid[k] = a.valid[k] && b.valid[k];

  const bool as_double = e.type.id == TypeId::kFloat64;
  if (as_double) {
    out.is_double = true;
    out.d.resize(n);
    switch (e.bop) {
      case BinaryOp::kAdd:
        for (size_t k = 0; k < n; ++k) out.d[k] = a.AsDouble(k) + b.AsDouble(k);
        break;
      case BinaryOp::kSub:
        for (size_t k = 0; k < n; ++k) out.d[k] = a.AsDouble(k) - b.AsDouble(k);
        break;
      case BinaryOp::kMul:
        for (size_t k = 0; k < n; ++k) out.d[k] = a.AsDouble(k) * b.AsDouble(k);
        break;
      case BinaryOp::kDiv:
        for (size_t k = 0; k < n; ++k) {
          double denom = b.AsDouble(k);
          if (denom == 0) {
            out.valid[k] = false;
            out.d[k] = 0;
          } else {
            out.d[k] = a.AsDouble(k) / denom;
          }
        }
        break;
      default:
        return Status::Internal("not an arithmetic op");
    }
    return MakeNumColumn(e.type, out);
  }

  out.scale = e.type.scale;
  out.i.resize(n);
  switch (e.bop) {
    case BinaryOp::kAdd:
      AlignScales(&a, &b);
      for (size_t k = 0; k < n; ++k) out.i[k] = a.i[k] + b.i[k];
      break;
    case BinaryOp::kSub:
      AlignScales(&a, &b);
      for (size_t k = 0; k < n; ++k) out.i[k] = a.i[k] - b.i[k];
      break;
    case BinaryOp::kMul:
      // Output scale = sum of scales; raw values multiply directly.
      for (size_t k = 0; k < n; ++k) out.i[k] = a.i[k] * b.i[k];
      break;
    default:
      return Status::Internal("not an int arithmetic op");
  }
  return MakeNumColumn(e.type, out);
}

Result<ColumnPtr> EvalComparison(const Expr& e, ColumnPtr lc, ColumnPtr rc) {
  const size_t n = lc->length();
  std::vector<uint8_t> vals(n, 0);
  std::vector<bool> valid(n, true);

  auto cmp_result = [&](int c) -> bool {
    switch (e.bop) {
      case BinaryOp::kEq:
        return c == 0;
      case BinaryOp::kNe:
        return c != 0;
      case BinaryOp::kLt:
        return c < 0;
      case BinaryOp::kLe:
        return c <= 0;
      case BinaryOp::kGt:
        return c > 0;
      case BinaryOp::kGe:
        return c >= 0;
      default:
        return false;
    }
  };

  if (IsStringType(lc) || IsStringType(rc)) {
    if (!IsStringType(lc) || !IsStringType(rc)) {
      return Status::TypeError("comparison between string and non-string");
    }
    for (size_t k = 0; k < n; ++k) {
      if (lc->IsNull(k) || rc->IsNull(k)) {
        valid[k] = false;
        continue;
      }
      auto sv1 = lc->StringAt(k);
      auto sv2 = rc->StringAt(k);
      int c = sv1.compare(sv2);
      vals[k] = cmp_result(c < 0 ? -1 : (c > 0 ? 1 : 0)) ? 1 : 0;
    }
    return MakeBoolColumn(vals, valid);
  }

  NumVec a, b;
  SIRIUS_RETURN_NOT_OK(ToNum(lc, &a));
  SIRIUS_RETURN_NOT_OK(ToNum(rc, &b));
  if (!a.is_double && !b.is_double) {
    AlignScales(&a, &b);
    for (size_t k = 0; k < n; ++k) {
      if (!a.valid[k] || !b.valid[k]) {
        valid[k] = false;
        continue;
      }
      int c = a.i[k] < b.i[k] ? -1 : (a.i[k] > b.i[k] ? 1 : 0);
      vals[k] = cmp_result(c) ? 1 : 0;
    }
  } else {
    for (size_t k = 0; k < n; ++k) {
      if (!a.valid[k] || !b.valid[k]) {
        valid[k] = false;
        continue;
      }
      double x = a.AsDouble(k), y = b.AsDouble(k);
      int c = x < y ? -1 : (x > y ? 1 : 0);
      vals[k] = cmp_result(c) ? 1 : 0;
    }
  }
  return MakeBoolColumn(vals, valid);
}

Result<ColumnPtr> EvalLogical(const Expr& e, ColumnPtr lc, ColumnPtr rc) {
  const size_t n = lc->length();
  std::vector<uint8_t> vals(n, 0);
  std::vector<bool> valid(n, true);
  const uint8_t* a = lc->data<uint8_t>();
  const uint8_t* b = rc->data<uint8_t>();
  for (size_t k = 0; k < n; ++k) {
    bool an = lc->IsNull(k), bn = rc->IsNull(k);
    bool av = !an && a[k] != 0;
    bool bv = !bn && b[k] != 0;
    if (e.bop == BinaryOp::kAnd) {
      // Kleene: false AND x == false; true AND NULL == NULL.
      if ((!an && !av) || (!bn && !bv)) {
        vals[k] = 0;
      } else if (an || bn) {
        valid[k] = false;
      } else {
        vals[k] = 1;
      }
    } else {  // OR
      if ((!an && av) || (!bn && bv)) {
        vals[k] = 1;
      } else if (an || bn) {
        valid[k] = false;
      } else {
        vals[k] = 0;
      }
    }
  }
  return MakeBoolColumn(vals, valid);
}

}  // namespace

Result<ColumnPtr> Evaluate(const Expr& e, const format::Table& input) {
  const size_t n = input.num_rows();
  switch (e.kind) {
    case ExprKind::kColumnRef: {
      if (e.column_index < 0 ||
          static_cast<size_t>(e.column_index) >= input.num_columns()) {
        return Status::ExecutionError("unbound column reference " + e.ToString());
      }
      return input.column(e.column_index);
    }
    case ExprKind::kLiteral: {
      format::ColumnBuilder b(e.type);
      b.Reserve(n);
      for (size_t k = 0; k < n; ++k) {
        SIRIUS_RETURN_NOT_OK(b.AppendScalar(e.literal));
      }
      return b.Finish();
    }
    case ExprKind::kBinary: {
      SIRIUS_ASSIGN_OR_RETURN(ColumnPtr lc, Evaluate(*e.children[0], input));
      SIRIUS_ASSIGN_OR_RETURN(ColumnPtr rc, Evaluate(*e.children[1], input));
      switch (e.bop) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
          return EvalArithmetic(e, std::move(lc), std::move(rc));
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          return EvalLogical(e, std::move(lc), std::move(rc));
        default:
          return EvalComparison(e, std::move(lc), std::move(rc));
      }
    }
    case ExprKind::kUnary: {
      SIRIUS_ASSIGN_OR_RETURN(ColumnPtr c, Evaluate(*e.children[0], input));
      std::vector<uint8_t> vals(n, 0);
      std::vector<bool> valid(n, true);
      switch (e.uop) {
        case UnaryOp::kNot: {
          const uint8_t* src = c->data<uint8_t>();
          for (size_t k = 0; k < n; ++k) {
            if (c->IsNull(k)) {
              valid[k] = false;
            } else {
              vals[k] = src[k] != 0 ? 0 : 1;
            }
          }
          return MakeBoolColumn(vals, valid);
        }
        case UnaryOp::kIsNull: {
          for (size_t k = 0; k < n; ++k) vals[k] = c->IsNull(k) ? 1 : 0;
          return MakeBoolColumn(vals, valid);
        }
        case UnaryOp::kIsNotNull: {
          for (size_t k = 0; k < n; ++k) vals[k] = c->IsNull(k) ? 0 : 1;
          return MakeBoolColumn(vals, valid);
        }
        case UnaryOp::kNegate: {
          NumVec v;
          SIRIUS_RETURN_NOT_OK(ToNum(c, &v));
          if (v.is_double) {
            for (auto& x : v.d) x = -x;
          } else {
            for (auto& x : v.i) x = -x;
          }
          return MakeNumColumn(e.type, v);
        }
      }
      return Status::Internal("unknown unary op");
    }
    case ExprKind::kFunction: {
      SIRIUS_ASSIGN_OR_RETURN(ColumnPtr c, Evaluate(*e.children[0], input));
      switch (e.fop) {
        case FuncOp::kLike:
        case FuncOp::kNotLike: {
          if (!c->type().is_string()) {
            return Status::TypeError("LIKE input must be string");
          }
          const std::string& pattern = e.children[1]->literal.string_value();
          std::vector<uint8_t> vals(n, 0);
          std::vector<bool> valid(n, true);
          const bool negate = e.fop == FuncOp::kNotLike;
          for (size_t k = 0; k < n; ++k) {
            if (c->IsNull(k)) {
              valid[k] = false;
              continue;
            }
            bool m = LikeMatch(c->StringAt(k), pattern);
            vals[k] = (m != negate) ? 1 : 0;
          }
          return MakeBoolColumn(vals, valid);
        }
        case FuncOp::kSubstring: {
          if (!c->type().is_string()) {
            return Status::TypeError("substring input must be string");
          }
          int64_t start = e.children[1]->literal.int_value();
          int64_t len = e.children[2]->literal.int_value();
          format::ColumnBuilder b(format::String());
          b.Reserve(n);
          for (size_t k = 0; k < n; ++k) {
            if (c->IsNull(k)) {
              b.AppendNull();
              continue;
            }
            auto sv = c->StringAt(k);
            int64_t begin = std::max<int64_t>(0, start - 1);
            if (begin >= static_cast<int64_t>(sv.size()) || len <= 0) {
              b.AppendString("");
            } else {
              b.AppendString(sv.substr(
                  static_cast<size_t>(begin),
                  static_cast<size_t>(
                      std::min<int64_t>(len, static_cast<int64_t>(sv.size()) - begin))));
            }
          }
          return b.Finish();
        }
        case FuncOp::kExtractYear: {
          format::ColumnBuilder b(format::Int64());
          b.Reserve(n);
          const int32_t* days = c->data<int32_t>();
          for (size_t k = 0; k < n; ++k) {
            if (c->IsNull(k)) {
              b.AppendNull();
              continue;
            }
            int y, m, d;
            format::CivilFromDays(days[k], &y, &m, &d);
            b.AppendInt(y);
          }
          return b.Finish();
        }
        case FuncOp::kCastDouble: {
          NumVec v;
          SIRIUS_RETURN_NOT_OK(ToNum(c, &v));
          NumVec out;
          out.is_double = true;
          out.valid = v.valid;
          out.d.resize(n);
          for (size_t k = 0; k < n; ++k) out.d[k] = v.AsDouble(k);
          return MakeNumColumn(format::Float64(), out);
        }
        case FuncOp::kCastInt64: {
          NumVec v;
          SIRIUS_RETURN_NOT_OK(ToNum(c, &v));
          NumVec out;
          out.valid = v.valid;
          out.i.resize(n);
          for (size_t k = 0; k < n; ++k) {
            out.i[k] = v.is_double ? static_cast<int64_t>(v.d[k])
                                   : v.i[k] / DecimalPow10(v.scale);
          }
          return MakeNumColumn(format::Int64(), out);
        }
      }
      return Status::Internal("unknown function");
    }
    case ExprKind::kCase: {
      // Evaluate all conditions and branches, then select per row.
      const size_t num_pairs = e.children.size() / 2;
      const bool has_else = e.children.size() % 2 == 1;
      std::vector<ColumnPtr> conds(num_pairs), thens(num_pairs);
      for (size_t p = 0; p < num_pairs; ++p) {
        SIRIUS_ASSIGN_OR_RETURN(conds[p], Evaluate(*e.children[2 * p], input));
        SIRIUS_ASSIGN_OR_RETURN(thens[p], Evaluate(*e.children[2 * p + 1], input));
      }
      ColumnPtr else_col;
      if (has_else) {
        SIRIUS_ASSIGN_OR_RETURN(else_col, Evaluate(*e.children.back(), input));
      }
      format::ColumnBuilder b(e.type);
      b.Reserve(n);
      for (size_t k = 0; k < n; ++k) {
        bool done = false;
        for (size_t p = 0; p < num_pairs && !done; ++p) {
          if (!conds[p]->IsNull(k) && conds[p]->data<uint8_t>()[k] != 0) {
            SIRIUS_RETURN_NOT_OK(b.AppendScalar(thens[p]->GetScalar(k)));
            done = true;
          }
        }
        if (!done) {
          if (has_else) {
            SIRIUS_RETURN_NOT_OK(b.AppendScalar(else_col->GetScalar(k)));
          } else {
            b.AppendNull();
          }
        }
      }
      return b.Finish();
    }
    case ExprKind::kUdf: {
      SIRIUS_ASSIGN_OR_RETURN(UdfDefinition def,
                              UdfRegistry::Global()->Lookup(e.udf_name));
      std::vector<ColumnPtr> args(e.children.size());
      for (size_t a = 0; a < e.children.size(); ++a) {
        SIRIUS_ASSIGN_OR_RETURN(args[a], Evaluate(*e.children[a], input));
      }
      format::ColumnBuilder b(e.type);
      b.Reserve(n);
      std::vector<Scalar> row(args.size());
      for (size_t k = 0; k < n; ++k) {
        for (size_t a = 0; a < args.size(); ++a) row[a] = args[a]->GetScalar(k);
        SIRIUS_ASSIGN_OR_RETURN(Scalar out, def.fn(row));
        SIRIUS_RETURN_NOT_OK(b.AppendScalar(out));
      }
      return b.Finish();
    }
    case ExprKind::kInList: {
      SIRIUS_ASSIGN_OR_RETURN(ColumnPtr c, Evaluate(*e.children[0], input));
      std::vector<uint8_t> vals(n, 0);
      std::vector<bool> valid(n, true);
      for (size_t k = 0; k < n; ++k) {
        if (c->IsNull(k)) {
          valid[k] = false;
          continue;
        }
        Scalar v = c->GetScalar(k);
        for (const auto& item : e.in_list) {
          if (v == item) {
            vals[k] = 1;
            break;
          }
        }
      }
      return MakeBoolColumn(vals, valid);
    }
  }
  return Status::Internal("unknown expr kind");
}

Result<Scalar> EvaluateScalar(const Expr& e, const format::Table& input,
                              size_t row) {
  // Single-row evaluation reuses the columnar path on a 1-row slice. Rows
  // are tiny in the HAVING context, so this is fine.
  (void)row;
  SIRIUS_ASSIGN_OR_RETURN(ColumnPtr col, Evaluate(e, input));
  if (col->length() == 0) return Scalar::Null(e.type);
  return col->GetScalar(row);
}

}  // namespace sirius::expr
