#include "expr/udf.h"

#include <algorithm>

namespace sirius::expr {

UdfRegistry* UdfRegistry::Global() {
  static UdfRegistry registry;
  return &registry;
}

Status UdfRegistry::Register(UdfDefinition def) {
  if (def.name.empty() || def.fn == nullptr) {
    return Status::Invalid("UDF registration requires a name and a function");
  }
  std::transform(def.name.begin(), def.name.end(), def.name.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  std::lock_guard<std::mutex> lock(mu_);
  udfs_[def.name] = std::move(def);
  return Status::OK();
}

Status UdfRegistry::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (udfs_.erase(name) == 0) {
    return Status::KeyError("UDF '" + name + "' is not registered");
  }
  return Status::OK();
}

Result<UdfDefinition> UdfRegistry::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = udfs_.find(name);
  if (it == udfs_.end()) {
    return Status::KeyError("UDF '" + name + "' is not registered");
  }
  return it->second;
}

bool UdfRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return udfs_.count(name) > 0;
}

}  // namespace sirius::expr
