// Scalar expression AST shared by the SQL binder, the optimizer, the host
// CPU engine and the GDF compute kernels.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "format/scalar.h"
#include "format/table.h"

namespace sirius::expr {

enum class ExprKind : uint8_t {
  kColumnRef,  ///< input column, by name before binding / by index after
  kLiteral,
  kBinary,
  kUnary,
  kFunction,
  kCase,    ///< children: when1, then1, ..., [else]
  kInList,  ///< child IN (literal list)
  kUdf,     ///< registered scalar UDF call (expr::UdfRegistry)
};

enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnaryOp : uint8_t { kNot, kNegate, kIsNull, kIsNotNull };

enum class FuncOp : uint8_t {
  kLike,        ///< child0 LIKE pattern-literal(child1)
  kNotLike,
  kSubstring,   ///< substring(child0, start(child1), len(child2)), 1-based
  kExtractYear, ///< extract(year from date)
  kCastDouble,
  kCastInt64,
};

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// \brief One node of a scalar expression tree.
///
/// `type` is valid after Bind(); `column_index` is resolved from
/// `column_name` (or set directly when plans are built programmatically).
struct Expr {
  ExprKind kind = ExprKind::kLiteral;
  format::DataType type;

  // kColumnRef
  std::string column_name;
  int column_index = -1;

  // kLiteral
  format::Scalar literal;

  // operators
  BinaryOp bop = BinaryOp::kAdd;
  UnaryOp uop = UnaryOp::kNot;
  FuncOp fop = FuncOp::kLike;

  std::vector<ExprPtr> children;

  // kInList
  std::vector<format::Scalar> in_list;

  // kUdf
  std::string udf_name;

  /// Number of simple ops one row of this expression costs (cost model).
  int OpCount() const;

  /// Distinct input column indices referenced anywhere in the tree.
  void CollectColumns(std::vector<int>* indices) const;
  /// As above for unresolved column names.
  void CollectColumnNames(std::vector<std::string>* names) const;

  std::string ToString() const;

  /// Deep copy.
  ExprPtr Clone() const;
};

/// \name Factory helpers.
/// @{
ExprPtr ColRef(std::string name);
/// A pre-resolved column reference.
ExprPtr ColIdx(int index, format::DataType type);
ExprPtr Lit(format::Scalar value);
ExprPtr LitInt(int64_t v);
ExprPtr LitDouble(double v);
ExprPtr LitString(std::string v);
ExprPtr LitDate(const std::string& iso_date);
/// Decimal literal from a human value string like "0.05" with given scale.
ExprPtr LitDecimal(const std::string& text, int scale);
ExprPtr Binary(BinaryOp op, ExprPtr l, ExprPtr r);
ExprPtr Add(ExprPtr l, ExprPtr r);
ExprPtr Sub(ExprPtr l, ExprPtr r);
ExprPtr Mul(ExprPtr l, ExprPtr r);
ExprPtr Div(ExprPtr l, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Ne(ExprPtr l, ExprPtr r);
ExprPtr Lt(ExprPtr l, ExprPtr r);
ExprPtr Le(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr Ge(ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr e);
ExprPtr Negate(ExprPtr e);
ExprPtr IsNull(ExprPtr e);
ExprPtr IsNotNull(ExprPtr e);
ExprPtr Like(ExprPtr input, std::string pattern);
ExprPtr NotLike(ExprPtr input, std::string pattern);
ExprPtr Substring(ExprPtr input, int64_t start, int64_t length);
ExprPtr ExtractYear(ExprPtr input);
ExprPtr CastDouble(ExprPtr input);
ExprPtr InList(ExprPtr input, std::vector<format::Scalar> values);
ExprPtr CaseWhen(std::vector<ExprPtr> when_then_else);
/// A call to a UDF registered in UdfRegistry::Global().
ExprPtr Udf(std::string name, std::vector<ExprPtr> args);
/// Conjunction of all expressions (nullptr when empty).
ExprPtr ConjoinAll(const std::vector<ExprPtr>& preds);
/// @}

/// \brief Resolves column names to indices against `input` and infers output
/// types bottom-up (decimal scale propagation, comparison -> BOOL, ...).
/// Mutates the tree in place.
Status Bind(Expr* e, const format::Schema& input);
Status Bind(const ExprPtr& e, const format::Schema& input);

/// SQL LIKE with % and _ wildcards.
bool LikeMatch(std::string_view value, std::string_view pattern);

}  // namespace sirius::expr
