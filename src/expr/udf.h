// Scalar user-defined functions (paper §3.4 lists UDFs as planned Sirius
// coverage; until device-side UDFs exist, plans containing them gracefully
// fall back to the CPU host engine — see engine::Capabilities::udf).

#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "format/scalar.h"

namespace sirius::expr {

/// \brief A registered scalar UDF: a row-wise function over Scalars.
struct UdfDefinition {
  std::string name;
  /// Declared argument count (-1 = variadic).
  int arity = -1;
  format::DataType return_type;
  /// Row function. Receives one Scalar per argument (may be NULL); returns
  /// the result Scalar. NULL inputs are passed through to the function so
  /// UDFs can define their own NULL behaviour.
  std::function<Result<format::Scalar>(const std::vector<format::Scalar>&)> fn;
};

/// \brief Process-wide UDF registry (thread-safe).
class UdfRegistry {
 public:
  static UdfRegistry* Global();

  /// Registers (or replaces) a UDF under `def.name` (lower-case).
  Status Register(UdfDefinition def);
  /// Removes a UDF; KeyError when absent.
  Status Unregister(const std::string& name);
  /// Looks up a UDF; KeyError when absent.
  Result<UdfDefinition> Lookup(const std::string& name) const;
  bool Contains(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, UdfDefinition> udfs_;
};

}  // namespace sirius::expr
