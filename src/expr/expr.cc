#include "expr/expr.h"

#include <algorithm>

#include "expr/udf.h"

namespace sirius::expr {

using format::DataType;
using format::Scalar;
using format::TypeId;

int Expr::OpCount() const {
  int count = 1;
  for (const auto& c : children) count += c->OpCount();
  count += static_cast<int>(in_list.size());
  return count;
}

void Expr::CollectColumns(std::vector<int>* indices) const {
  if (kind == ExprKind::kColumnRef && column_index >= 0) {
    if (std::find(indices->begin(), indices->end(), column_index) ==
        indices->end()) {
      indices->push_back(column_index);
    }
  }
  for (const auto& c : children) c->CollectColumns(indices);
}

void Expr::CollectColumnNames(std::vector<std::string>* names) const {
  if (kind == ExprKind::kColumnRef && !column_name.empty()) {
    if (std::find(names->begin(), names->end(), column_name) == names->end()) {
      names->push_back(column_name);
    }
  }
  for (const auto& c : children) c->CollectColumnNames(names);
}

namespace {
const char* BinOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}
}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kColumnRef:
      if (!column_name.empty()) return column_name;
      return "#" + std::to_string(column_index);
    case ExprKind::kLiteral:
      return literal.ToString();
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " + BinOpName(bop) + " " +
             children[1]->ToString() + ")";
    case ExprKind::kUnary:
      switch (uop) {
        case UnaryOp::kNot:
          return "NOT " + children[0]->ToString();
        case UnaryOp::kNegate:
          return "-" + children[0]->ToString();
        case UnaryOp::kIsNull:
          return children[0]->ToString() + " IS NULL";
        case UnaryOp::kIsNotNull:
          return children[0]->ToString() + " IS NOT NULL";
      }
      return "?";
    case ExprKind::kFunction:
      switch (fop) {
        case FuncOp::kLike:
          return children[0]->ToString() + " LIKE " + children[1]->ToString();
        case FuncOp::kNotLike:
          return children[0]->ToString() + " NOT LIKE " + children[1]->ToString();
        case FuncOp::kSubstring:
          return "substring(" + children[0]->ToString() + "," +
                 children[1]->ToString() + "," + children[2]->ToString() + ")";
        case FuncOp::kExtractYear:
          return "extract(year from " + children[0]->ToString() + ")";
        case FuncOp::kCastDouble:
          return "cast(" + children[0]->ToString() + " as double)";
        case FuncOp::kCastInt64:
          return "cast(" + children[0]->ToString() + " as bigint)";
      }
      return "?";
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t i = 0;
      for (; i + 1 < children.size(); i += 2) {
        out += " WHEN " + children[i]->ToString() + " THEN " +
               children[i + 1]->ToString();
      }
      if (i < children.size()) out += " ELSE " + children[i]->ToString();
      return out + " END";
    }
    case ExprKind::kInList: {
      std::string out = children[0]->ToString() + " IN (";
      for (size_t i = 0; i < in_list.size(); ++i) {
        if (i > 0) out += ", ";
        out += in_list[i].ToString();
      }
      return out + ")";
    }
    case ExprKind::kUdf: {
      std::string out = udf_name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto e = std::make_shared<Expr>(*this);
  for (auto& c : e->children) c = c->Clone();
  return e;
}

ExprPtr ColRef(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column_name = std::move(name);
  return e;
}

ExprPtr ColIdx(int index, DataType type) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column_index = index;
  e->type = type;
  return e;
}

ExprPtr Lit(Scalar value) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->type = value.type();
  e->literal = std::move(value);
  return e;
}

ExprPtr LitInt(int64_t v) { return Lit(Scalar::FromInt64(v)); }
ExprPtr LitDouble(double v) { return Lit(Scalar::FromDouble(v)); }
ExprPtr LitString(std::string v) { return Lit(Scalar::FromString(std::move(v))); }

ExprPtr LitDate(const std::string& iso_date) {
  return Lit(Scalar::FromDate(format::ParseDate(iso_date)));
}

ExprPtr LitDecimal(const std::string& text, int scale) {
  // Parse "[-]intpart[.fracpart]" into raw units at `scale`.
  bool negative = !text.empty() && text[0] == '-';
  size_t pos = negative ? 1 : 0;
  int64_t whole = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    whole = whole * 10 + (text[pos] - '0');
    ++pos;
  }
  int64_t frac = 0;
  int frac_digits = 0;
  if (pos < text.size() && text[pos] == '.') {
    ++pos;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9' &&
           frac_digits < scale) {
      frac = frac * 10 + (text[pos] - '0');
      ++frac_digits;
      ++pos;
    }
  }
  int64_t raw = whole * format::DecimalPow10(scale) +
                frac * format::DecimalPow10(scale - frac_digits);
  if (negative) raw = -raw;
  return Lit(Scalar::FromDecimal(raw, scale));
}

ExprPtr Binary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->bop = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Add(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kAdd, std::move(l), std::move(r)); }
ExprPtr Sub(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kSub, std::move(l), std::move(r)); }
ExprPtr Mul(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kMul, std::move(l), std::move(r)); }
ExprPtr Div(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kDiv, std::move(l), std::move(r)); }
ExprPtr Eq(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kEq, std::move(l), std::move(r)); }
ExprPtr Ne(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kNe, std::move(l), std::move(r)); }
ExprPtr Lt(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kLt, std::move(l), std::move(r)); }
ExprPtr Le(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kLe, std::move(l), std::move(r)); }
ExprPtr Gt(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kGt, std::move(l), std::move(r)); }
ExprPtr Ge(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kGe, std::move(l), std::move(r)); }
ExprPtr And(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kAnd, std::move(l), std::move(r)); }
ExprPtr Or(ExprPtr l, ExprPtr r) { return Binary(BinaryOp::kOr, std::move(l), std::move(r)); }

ExprPtr Not(ExprPtr e) {
  auto out = std::make_shared<Expr>();
  out->kind = ExprKind::kUnary;
  out->uop = UnaryOp::kNot;
  out->children = {std::move(e)};
  return out;
}

ExprPtr Negate(ExprPtr e) {
  auto out = std::make_shared<Expr>();
  out->kind = ExprKind::kUnary;
  out->uop = UnaryOp::kNegate;
  out->children = {std::move(e)};
  return out;
}

ExprPtr IsNull(ExprPtr e) {
  auto out = std::make_shared<Expr>();
  out->kind = ExprKind::kUnary;
  out->uop = UnaryOp::kIsNull;
  out->children = {std::move(e)};
  return out;
}

ExprPtr IsNotNull(ExprPtr e) {
  auto out = std::make_shared<Expr>();
  out->kind = ExprKind::kUnary;
  out->uop = UnaryOp::kIsNotNull;
  out->children = {std::move(e)};
  return out;
}

namespace {
ExprPtr Func(FuncOp op, std::vector<ExprPtr> children) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFunction;
  e->fop = op;
  e->children = std::move(children);
  return e;
}
}  // namespace

ExprPtr Like(ExprPtr input, std::string pattern) {
  return Func(FuncOp::kLike, {std::move(input), LitString(std::move(pattern))});
}

ExprPtr NotLike(ExprPtr input, std::string pattern) {
  return Func(FuncOp::kNotLike, {std::move(input), LitString(std::move(pattern))});
}

ExprPtr Substring(ExprPtr input, int64_t start, int64_t length) {
  return Func(FuncOp::kSubstring, {std::move(input), LitInt(start), LitInt(length)});
}

ExprPtr ExtractYear(ExprPtr input) {
  return Func(FuncOp::kExtractYear, {std::move(input)});
}

ExprPtr CastDouble(ExprPtr input) {
  return Func(FuncOp::kCastDouble, {std::move(input)});
}

ExprPtr InList(ExprPtr input, std::vector<Scalar> values) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kInList;
  e->children = {std::move(input)};
  e->in_list = std::move(values);
  return e;
}

ExprPtr CaseWhen(std::vector<ExprPtr> when_then_else) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCase;
  e->children = std::move(when_then_else);
  return e;
}

ExprPtr Udf(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUdf;
  e->udf_name = std::move(name);
  e->children = std::move(args);
  return e;
}

ExprPtr ConjoinAll(const std::vector<ExprPtr>& preds) {
  ExprPtr out;
  for (const auto& p : preds) {
    out = out == nullptr ? p : And(out, p);
  }
  return out;
}

bool LikeMatch(std::string_view value, std::string_view pattern) {
  // Iterative matcher with backtracking on the last '%'.
  size_t v = 0, p = 0;
  size_t star_p = std::string_view::npos, star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == value[v])) {
      ++v;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Status Bind(const ExprPtr& e, const format::Schema& input) {
  return Bind(e.get(), input);
}

Status Bind(Expr* e, const format::Schema& input) {
  for (auto& c : e->children) {
    SIRIUS_RETURN_NOT_OK(Bind(c.get(), input));
  }
  switch (e->kind) {
    case ExprKind::kColumnRef: {
      if (e->column_index < 0) {
        int idx = input.IndexOf(e->column_name);
        if (idx < 0) {
          return Status::BindError("column '" + e->column_name +
                                   "' not found in schema [" + input.ToString() +
                                   "]");
        }
        e->column_index = idx;
      }
      if (static_cast<size_t>(e->column_index) >= input.num_fields()) {
        return Status::BindError("column index " +
                                 std::to_string(e->column_index) +
                                 " out of range");
      }
      e->type = input.field(e->column_index).type;
      return Status::OK();
    }
    case ExprKind::kLiteral:
      e->type = e->literal.type();
      return Status::OK();
    case ExprKind::kBinary: {
      const DataType& lt = e->children[0]->type;
      const DataType& rt = e->children[1]->type;
      switch (e->bop) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
          if (lt.id == TypeId::kFloat64 || rt.id == TypeId::kFloat64) {
            e->type = format::Float64();
          } else if (lt.is_decimal() || rt.is_decimal()) {
            e->type = format::Decimal(std::max(lt.scale, rt.scale));
          } else if (lt.id == TypeId::kDate32 || rt.id == TypeId::kDate32) {
            e->type = format::Date32();
          } else {
            e->type = format::Int64();
          }
          return Status::OK();
        case BinaryOp::kMul:
          if (lt.id == TypeId::kFloat64 || rt.id == TypeId::kFloat64) {
            e->type = format::Float64();
          } else if (lt.is_decimal() || rt.is_decimal()) {
            e->type = format::Decimal(lt.scale + rt.scale);
          } else {
            e->type = format::Int64();
          }
          return Status::OK();
        case BinaryOp::kDiv:
          e->type = format::Float64();
          return Status::OK();
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          if (lt.id != TypeId::kBool || rt.id != TypeId::kBool) {
            return Status::TypeError("AND/OR require BOOL operands: " +
                                     e->ToString());
          }
          e->type = format::Bool();
          return Status::OK();
        default:  // comparisons
          e->type = format::Bool();
          return Status::OK();
      }
    }
    case ExprKind::kUnary:
      switch (e->uop) {
        case UnaryOp::kNot:
          e->type = format::Bool();
          return Status::OK();
        case UnaryOp::kNegate:
          e->type = e->children[0]->type;
          return Status::OK();
        case UnaryOp::kIsNull:
        case UnaryOp::kIsNotNull:
          e->type = format::Bool();
          return Status::OK();
      }
      return Status::Internal("unknown unary op");
    case ExprKind::kFunction:
      switch (e->fop) {
        case FuncOp::kLike:
        case FuncOp::kNotLike:
          if (!e->children[0]->type.is_string()) {
            return Status::TypeError("LIKE requires string input");
          }
          e->type = format::Bool();
          return Status::OK();
        case FuncOp::kSubstring:
          e->type = format::String();
          return Status::OK();
        case FuncOp::kExtractYear:
          if (e->children[0]->type.id != TypeId::kDate32) {
            return Status::TypeError("extract(year) requires DATE input");
          }
          e->type = format::Int64();
          return Status::OK();
        case FuncOp::kCastDouble:
          e->type = format::Float64();
          return Status::OK();
        case FuncOp::kCastInt64:
          e->type = format::Int64();
          return Status::OK();
      }
      return Status::Internal("unknown function");
    case ExprKind::kCase: {
      if (e->children.size() < 2) {
        return Status::BindError("CASE requires at least WHEN/THEN");
      }
      // Result type: the first THEN branch's type.
      e->type = e->children[1]->type;
      return Status::OK();
    }
    case ExprKind::kInList:
      e->type = format::Bool();
      return Status::OK();
    case ExprKind::kUdf: {
      SIRIUS_ASSIGN_OR_RETURN(UdfDefinition def,
                              UdfRegistry::Global()->Lookup(e->udf_name));
      if (def.arity >= 0 && static_cast<size_t>(def.arity) != e->children.size()) {
        return Status::BindError("UDF '" + e->udf_name + "' expects " +
                                 std::to_string(def.arity) + " arguments, got " +
                                 std::to_string(e->children.size()));
      }
      e->type = def.return_type;
      return Status::OK();
    }
  }
  return Status::Internal("unknown expr kind");
}

}  // namespace sirius::expr
