// Columnar expression evaluation.

#pragma once

#include "common/result.h"
#include "expr/expr.h"
#include "format/table.h"

namespace sirius::expr {

/// \brief Evaluates a bound expression over every row of `input`, producing
/// a column of `e.type` with `input.num_rows()` entries.
///
/// SQL semantics: NULLs propagate through arithmetic/comparisons/functions;
/// AND/OR use Kleene three-valued logic; IS [NOT] NULL never returns NULL.
Result<format::ColumnPtr> Evaluate(const Expr& e, const format::Table& input);

/// Evaluates a bound expression against a single row, producing a Scalar.
/// Used for pre-aggregated single-row contexts (HAVING over one group).
Result<format::Scalar> EvaluateScalar(const Expr& e, const format::Table& input,
                                      size_t row);

}  // namespace sirius::expr
