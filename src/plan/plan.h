// Logical/physical plan IR — the repo's Substrait equivalent (paper §2.2,
// §3.1): host databases emit this representation, Sirius consumes it.
//
// Plans are *bound*: expressions reference child output columns by index,
// and every node carries its output schema. The serialized form
// (plan/substrait.h) is what crosses the host-DB -> Sirius boundary.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "format/table.h"

namespace sirius::plan {

enum class PlanKind : uint8_t {
  kTableScan,
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
  kLimit,
  kDistinct,
  kExchange,   ///< distributed data movement (§3.2.4)
};

enum class JoinType : uint8_t { kInner, kLeft, kSemi, kAnti, kCross, kAsof };

enum class AggFunc : uint8_t {
  kSum,
  kMin,
  kMax,
  kCount,
  kCountStar,
  kAvg,
  kCountDistinct,
};

/// Exchange patterns supported by the Sirius exchange service layer.
enum class ExchangeKind : uint8_t { kShuffle, kBroadcast, kGather, kMulticast };

const char* PlanKindName(PlanKind k);
const char* JoinTypeName(JoinType t);
const char* AggFuncName(AggFunc f);
const char* ExchangeKindName(ExchangeKind k);

/// \brief One aggregate computed by an Aggregate node.
struct AggItem {
  AggFunc func = AggFunc::kCountStar;
  /// Child output column holding the (pre-projected) argument; -1 for
  /// count(*).
  int arg_column = -1;
  /// Output field name.
  std::string name;
};

/// \brief One ORDER BY key.
struct SortKey {
  int column = 0;  ///< child output column
  bool descending = false;
};

struct PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

/// \brief A node of the bound plan tree.
struct PlanNode {
  PlanKind kind = PlanKind::kTableScan;
  std::vector<PlanPtr> children;
  /// Schema of this node's output rows.
  format::Schema output_schema;

  // kTableScan
  std::string table_name;
  /// Base-table columns read, in output order (projection pushdown).
  std::vector<int> scan_columns;

  // kFilter: predicate bound to child schema.
  expr::ExprPtr predicate;

  // kProject
  std::vector<expr::ExprPtr> projections;
  std::vector<std::string> projection_names;

  // kJoin
  JoinType join_type = JoinType::kInner;
  std::vector<int> left_keys;   ///< columns of children[0]
  std::vector<int> right_keys;  ///< columns of children[1]
  /// Extra non-equi condition over (left ++ right) schema; may be null.
  expr::ExprPtr residual;
  /// kAsof: ordering columns (left/right child schemas). Each left row takes
  /// the latest right row with asof_right_on <= asof_left_on within the
  /// equality-key group (left-outer semantics).
  int asof_left_on = -1;
  int asof_right_on = -1;

  // kAggregate
  std::vector<int> group_by;  ///< child columns
  std::vector<AggItem> aggregates;

  // kSort
  std::vector<SortKey> sort_keys;

  // kLimit
  int64_t limit = -1;
  int64_t offset = 0;

  // kExchange
  ExchangeKind exchange = ExchangeKind::kShuffle;
  std::vector<int> partition_keys;

  /// Estimated output cardinality (filled by the optimizer; <0 = unknown).
  double estimated_rows = -1;

  /// Pretty tree rendering (EXPLAIN).
  std::string ToString() const;

  /// Structural checks: child counts, column indices in range, bound
  /// expressions, schema consistency. Recursive.
  Status Validate() const;
};

/// \name Node builders. Each computes the node's output schema.
/// @{
Result<PlanPtr> MakeScan(std::string table_name, const format::Schema& table_schema,
                         std::vector<int> columns);
Result<PlanPtr> MakeFilter(PlanPtr child, expr::ExprPtr predicate);
Result<PlanPtr> MakeProject(PlanPtr child, std::vector<expr::ExprPtr> exprs,
                            std::vector<std::string> names);
Result<PlanPtr> MakeJoin(PlanPtr left, PlanPtr right, JoinType type,
                         std::vector<int> left_keys, std::vector<int> right_keys,
                         expr::ExprPtr residual = nullptr);
/// ASOF join (§3.4): `by` equality keys may be empty; `left_on`/`right_on`
/// are the ordering columns.
Result<PlanPtr> MakeAsofJoin(PlanPtr left, PlanPtr right,
                             std::vector<int> by_left, std::vector<int> by_right,
                             int left_on, int right_on);
Result<PlanPtr> MakeAggregate(PlanPtr child, std::vector<int> group_by,
                              std::vector<AggItem> aggregates);
Result<PlanPtr> MakeSort(PlanPtr child, std::vector<SortKey> keys);
Result<PlanPtr> MakeLimit(PlanPtr child, int64_t limit, int64_t offset = 0);
Result<PlanPtr> MakeDistinct(PlanPtr child);
Result<PlanPtr> MakeExchange(PlanPtr child, ExchangeKind kind,
                             std::vector<int> partition_keys);
/// @}

/// Deep copy of a plan tree.
PlanPtr ClonePlan(const PlanPtr& p);

}  // namespace sirius::plan
