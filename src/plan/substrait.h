// Substrait-equivalent plan serialization.
//
// This is the drop-in boundary of the paper (§3.1, §3.2.1): host databases
// serialize their optimized plans into this representation; Sirius
// deserializes and executes them. The wire format is JSON with the same
// information content as a (physical) Substrait plan for our operator set.

#pragma once

#include <functional>
#include <string>

#include "common/result.h"
#include "plan/json.h"
#include "plan/plan.h"

namespace sirius::plan {

/// Resolves a base-table name to its schema during deserialization
/// (the consumer's catalog).
using SchemaResolver = std::function<Result<format::Schema>(const std::string&)>;

/// Serializes a bound plan tree to the wire format.
std::string SerializePlan(const PlanPtr& plan);

/// Deserializes a plan; scans resolve their schemas through `resolver`.
Result<PlanPtr> DeserializePlan(const std::string& text,
                                const SchemaResolver& resolver);

/// \name Expression (de)serialization, exposed for tests.
/// @{
Json SerializeExpr(const expr::Expr& e);
Result<expr::ExprPtr> DeserializeExpr(const Json& j);
/// @}

}  // namespace sirius::plan
