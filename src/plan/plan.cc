#include "plan/plan.h"

#include <sstream>

namespace sirius::plan {

using format::DataType;
using format::Field;
using format::Schema;

const char* PlanKindName(PlanKind k) {
  switch (k) {
    case PlanKind::kTableScan:
      return "TableScan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kLimit:
      return "Limit";
    case PlanKind::kDistinct:
      return "Distinct";
    case PlanKind::kExchange:
      return "Exchange";
  }
  return "?";
}

const char* JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner:
      return "inner";
    case JoinType::kLeft:
      return "left";
    case JoinType::kSemi:
      return "semi";
    case JoinType::kAnti:
      return "anti";
    case JoinType::kCross:
      return "cross";
    case JoinType::kAsof:
      return "asof";
  }
  return "?";
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kCountStar:
      return "count_star";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kCountDistinct:
      return "count_distinct";
  }
  return "?";
}

const char* ExchangeKindName(ExchangeKind k) {
  switch (k) {
    case ExchangeKind::kShuffle:
      return "shuffle";
    case ExchangeKind::kBroadcast:
      return "broadcast";
    case ExchangeKind::kGather:
      return "gather";
    case ExchangeKind::kMulticast:
      return "multicast";
  }
  return "?";
}

namespace {

format::DataType AggResultType(AggFunc f, const DataType& in) {
  switch (f) {
    case AggFunc::kSum:
      if (in.id == format::TypeId::kFloat64) return format::Float64();
      if (in.is_decimal()) return in;
      return format::Int64();
    case AggFunc::kMin:
    case AggFunc::kMax:
      return in;
    case AggFunc::kAvg:
      return format::Float64();
    default:
      return format::Int64();
  }
}

void RenderTree(const PlanNode& node, int depth, std::ostringstream* out) {
  *out << std::string(static_cast<size_t>(depth) * 2, ' ') << PlanKindName(node.kind);
  switch (node.kind) {
    case PlanKind::kTableScan: {
      *out << " " << node.table_name << " [";
      for (size_t i = 0; i < node.scan_columns.size(); ++i) {
        if (i > 0) *out << ", ";
        *out << node.output_schema.field(i).name;
      }
      *out << "]";
      break;
    }
    case PlanKind::kFilter:
      *out << " (" << node.predicate->ToString() << ")";
      break;
    case PlanKind::kProject: {
      *out << " [";
      for (size_t i = 0; i < node.projections.size(); ++i) {
        if (i > 0) *out << ", ";
        *out << node.projection_names[i] << "=" << node.projections[i]->ToString();
      }
      *out << "]";
      break;
    }
    case PlanKind::kJoin: {
      *out << " " << JoinTypeName(node.join_type) << " on [";
      for (size_t i = 0; i < node.left_keys.size(); ++i) {
        if (i > 0) *out << ", ";
        *out << "#" << node.left_keys[i] << "=#" << node.right_keys[i];
      }
      *out << "]";
      if (node.residual != nullptr) {
        *out << " residual(" << node.residual->ToString() << ")";
      }
      break;
    }
    case PlanKind::kAggregate: {
      *out << " group_by=[";
      for (size_t i = 0; i < node.group_by.size(); ++i) {
        if (i > 0) *out << ", ";
        *out << "#" << node.group_by[i];
      }
      *out << "] aggs=[";
      for (size_t i = 0; i < node.aggregates.size(); ++i) {
        if (i > 0) *out << ", ";
        *out << node.aggregates[i].name << "=" << AggFuncName(node.aggregates[i].func)
             << "(#" << node.aggregates[i].arg_column << ")";
      }
      *out << "]";
      break;
    }
    case PlanKind::kSort: {
      *out << " [";
      for (size_t i = 0; i < node.sort_keys.size(); ++i) {
        if (i > 0) *out << ", ";
        *out << "#" << node.sort_keys[i].column
             << (node.sort_keys[i].descending ? " desc" : " asc");
      }
      *out << "]";
      break;
    }
    case PlanKind::kLimit:
      *out << " " << node.limit;
      if (node.offset > 0) *out << " offset " << node.offset;
      break;
    case PlanKind::kDistinct:
      break;
    case PlanKind::kExchange: {
      *out << " " << ExchangeKindName(node.exchange) << " keys=[";
      for (size_t i = 0; i < node.partition_keys.size(); ++i) {
        if (i > 0) *out << ", ";
        *out << "#" << node.partition_keys[i];
      }
      *out << "]";
      break;
    }
  }
  if (node.estimated_rows >= 0) {
    *out << "  ~" << static_cast<int64_t>(node.estimated_rows) << " rows";
  }
  *out << "\n";
  for (const auto& c : node.children) RenderTree(*c, depth + 1, out);
}

Status CheckColumnRange(const std::vector<int>& cols, const Schema& schema,
                        const char* what) {
  for (int c : cols) {
    if (c < 0 || static_cast<size_t>(c) >= schema.num_fields()) {
      return Status::Invalid(std::string(what) + ": column index " +
                             std::to_string(c) + " out of range");
    }
  }
  return Status::OK();
}

}  // namespace

std::string PlanNode::ToString() const {
  std::ostringstream out;
  RenderTree(*this, 0, &out);
  return out.str();
}

Status PlanNode::Validate() const {
  const size_t expected_children = kind == PlanKind::kTableScan ? 0
                                   : kind == PlanKind::kJoin    ? 2
                                                                : 1;
  if (children.size() != expected_children) {
    return Status::Invalid(std::string(PlanKindName(kind)) + ": expected " +
                           std::to_string(expected_children) + " children, got " +
                           std::to_string(children.size()));
  }
  for (const auto& c : children) {
    SIRIUS_RETURN_NOT_OK(c->Validate());
  }
  switch (kind) {
    case PlanKind::kFilter:
      if (predicate == nullptr) return Status::Invalid("Filter: null predicate");
      if (predicate->type.id != format::TypeId::kBool) {
        return Status::TypeError("Filter: predicate is not BOOL");
      }
      break;
    case PlanKind::kJoin:
      if (left_keys.size() != right_keys.size()) {
        return Status::Invalid("Join: key count mismatch");
      }
      SIRIUS_RETURN_NOT_OK(
          CheckColumnRange(left_keys, children[0]->output_schema, "Join.left"));
      SIRIUS_RETURN_NOT_OK(
          CheckColumnRange(right_keys, children[1]->output_schema, "Join.right"));
      if (join_type == JoinType::kAsof) {
        SIRIUS_RETURN_NOT_OK(CheckColumnRange(
            {asof_left_on}, children[0]->output_schema, "Join.asof_left"));
        SIRIUS_RETURN_NOT_OK(CheckColumnRange(
            {asof_right_on}, children[1]->output_schema, "Join.asof_right"));
      }
      break;
    case PlanKind::kAggregate:
      SIRIUS_RETURN_NOT_OK(
          CheckColumnRange(group_by, children[0]->output_schema, "Aggregate.keys"));
      for (const auto& a : aggregates) {
        if (a.func != AggFunc::kCountStar) {
          SIRIUS_RETURN_NOT_OK(CheckColumnRange({a.arg_column},
                                                children[0]->output_schema,
                                                "Aggregate.arg"));
        }
      }
      break;
    case PlanKind::kSort:
      for (const auto& k : sort_keys) {
        SIRIUS_RETURN_NOT_OK(
            CheckColumnRange({k.column}, children[0]->output_schema, "Sort"));
      }
      break;
    default:
      break;
  }
  return Status::OK();
}

Result<PlanPtr> MakeScan(std::string table_name, const Schema& table_schema,
                         std::vector<int> columns) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kTableScan;
  node->table_name = std::move(table_name);
  if (columns.empty()) {
    for (size_t i = 0; i < table_schema.num_fields(); ++i) {
      columns.push_back(static_cast<int>(i));
    }
  }
  SIRIUS_RETURN_NOT_OK(CheckColumnRange(columns, table_schema, "Scan"));
  Schema out;
  for (int c : columns) out.AddField(table_schema.field(c));
  node->scan_columns = std::move(columns);
  node->output_schema = std::move(out);
  return node;
}

Result<PlanPtr> MakeFilter(PlanPtr child, expr::ExprPtr predicate) {
  SIRIUS_RETURN_NOT_OK(expr::Bind(predicate, child->output_schema));
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kFilter;
  node->predicate = std::move(predicate);
  node->output_schema = child->output_schema;
  node->children = {std::move(child)};
  return node;
}

Result<PlanPtr> MakeProject(PlanPtr child, std::vector<expr::ExprPtr> exprs,
                            std::vector<std::string> names) {
  if (exprs.size() != names.size()) {
    return Status::Invalid("Project: expr/name count mismatch");
  }
  Schema out;
  for (size_t i = 0; i < exprs.size(); ++i) {
    SIRIUS_RETURN_NOT_OK(expr::Bind(exprs[i], child->output_schema));
    out.AddField({names[i], exprs[i]->type});
  }
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kProject;
  node->projections = std::move(exprs);
  node->projection_names = std::move(names);
  node->output_schema = std::move(out);
  node->children = {std::move(child)};
  return node;
}

Result<PlanPtr> MakeJoin(PlanPtr left, PlanPtr right, JoinType type,
                         std::vector<int> left_keys, std::vector<int> right_keys,
                         expr::ExprPtr residual) {
  if (left_keys.size() != right_keys.size()) {
    return Status::Invalid("Join: key count mismatch");
  }
  SIRIUS_RETURN_NOT_OK(CheckColumnRange(left_keys, left->output_schema, "Join.left"));
  SIRIUS_RETURN_NOT_OK(
      CheckColumnRange(right_keys, right->output_schema, "Join.right"));

  Schema out;
  for (const auto& f : left->output_schema.fields()) out.AddField(f);
  const bool emits_right = type == JoinType::kInner || type == JoinType::kLeft ||
                           type == JoinType::kCross || type == JoinType::kAsof;
  if (emits_right) {
    for (const auto& f : right->output_schema.fields()) out.AddField(f);
  }
  if (residual != nullptr) {
    Schema combined;
    for (const auto& f : left->output_schema.fields()) combined.AddField(f);
    for (const auto& f : right->output_schema.fields()) combined.AddField(f);
    SIRIUS_RETURN_NOT_OK(expr::Bind(residual, combined));
  }
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kJoin;
  node->join_type = type;
  node->left_keys = std::move(left_keys);
  node->right_keys = std::move(right_keys);
  node->residual = std::move(residual);
  node->output_schema = std::move(out);
  node->children = {std::move(left), std::move(right)};
  return node;
}

Result<PlanPtr> MakeAsofJoin(PlanPtr left, PlanPtr right,
                             std::vector<int> by_left, std::vector<int> by_right,
                             int left_on, int right_on) {
  SIRIUS_RETURN_NOT_OK(
      CheckColumnRange({left_on}, left->output_schema, "AsofJoin.left_on"));
  SIRIUS_RETURN_NOT_OK(
      CheckColumnRange({right_on}, right->output_schema, "AsofJoin.right_on"));
  SIRIUS_ASSIGN_OR_RETURN(
      PlanPtr node, MakeJoin(std::move(left), std::move(right), JoinType::kAsof,
                             std::move(by_left), std::move(by_right)));
  node->asof_left_on = left_on;
  node->asof_right_on = right_on;
  return node;
}

Result<PlanPtr> MakeAggregate(PlanPtr child, std::vector<int> group_by,
                              std::vector<AggItem> aggregates) {
  SIRIUS_RETURN_NOT_OK(
      CheckColumnRange(group_by, child->output_schema, "Aggregate.keys"));
  Schema out;
  for (int c : group_by) out.AddField(child->output_schema.field(c));
  for (const auto& a : aggregates) {
    DataType in = format::Int64();
    if (a.func != AggFunc::kCountStar) {
      SIRIUS_RETURN_NOT_OK(
          CheckColumnRange({a.arg_column}, child->output_schema, "Aggregate.arg"));
      in = child->output_schema.field(a.arg_column).type;
    }
    out.AddField({a.name, AggResultType(a.func, in)});
  }
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kAggregate;
  node->group_by = std::move(group_by);
  node->aggregates = std::move(aggregates);
  node->output_schema = std::move(out);
  node->children = {std::move(child)};
  return node;
}

Result<PlanPtr> MakeSort(PlanPtr child, std::vector<SortKey> keys) {
  for (const auto& k : keys) {
    SIRIUS_RETURN_NOT_OK(CheckColumnRange({k.column}, child->output_schema, "Sort"));
  }
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kSort;
  node->sort_keys = std::move(keys);
  node->output_schema = child->output_schema;
  node->children = {std::move(child)};
  return node;
}

Result<PlanPtr> MakeLimit(PlanPtr child, int64_t limit, int64_t offset) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kLimit;
  node->limit = limit;
  node->offset = offset;
  node->output_schema = child->output_schema;
  node->children = {std::move(child)};
  return node;
}

Result<PlanPtr> MakeDistinct(PlanPtr child) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kDistinct;
  node->output_schema = child->output_schema;
  node->children = {std::move(child)};
  return node;
}

Result<PlanPtr> MakeExchange(PlanPtr child, ExchangeKind kind,
                             std::vector<int> partition_keys) {
  SIRIUS_RETURN_NOT_OK(
      CheckColumnRange(partition_keys, child->output_schema, "Exchange"));
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kExchange;
  node->exchange = kind;
  node->partition_keys = std::move(partition_keys);
  node->output_schema = child->output_schema;
  node->children = {std::move(child)};
  return node;
}

PlanPtr ClonePlan(const PlanPtr& p) {
  if (p == nullptr) return nullptr;
  auto node = std::make_shared<PlanNode>(*p);
  for (auto& c : node->children) c = ClonePlan(c);
  if (node->predicate != nullptr) node->predicate = node->predicate->Clone();
  if (node->residual != nullptr) node->residual = node->residual->Clone();
  for (auto& e : node->projections) e = e->Clone();
  return node;
}

}  // namespace sirius::plan
