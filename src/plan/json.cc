#include "plan/json.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace sirius::plan {

void Json::Set(const std::string& key, Json v) {
  for (auto& [k, val] : obj_) {
    if (k == key) {
      val = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

const Json& Json::operator[](const std::string& key) const {
  static const Json kNullJson;
  for (const auto& [k, val] : obj_) {
    if (k == key) return val;
  }
  return kNullJson;
}

bool Json::Has(const std::string& key) const {
  for (const auto& [k, val] : obj_) {
    (void)val;
    if (k == key) return true;
  }
  return false;
}

namespace {

void EscapeTo(const std::string& s, std::ostringstream* out) {
  *out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out << "\\\"";
        break;
      case '\\':
        *out << "\\\\";
        break;
      case '\n':
        *out << "\\n";
        break;
      case '\t':
        *out << "\\t";
        break;
      case '\r':
        *out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out << buf;
        } else {
          *out << c;
        }
    }
  }
  *out << '"';
}

void DumpTo(const Json& j, std::ostringstream* out);

}  // namespace

std::string Json::Dump() const {
  std::ostringstream out;
  DumpTo(*this, &out);
  return out.str();
}

namespace {

void DumpTo(const Json& j, std::ostringstream* out) {
  switch (j.kind()) {
    case Json::Kind::kNull:
      *out << "null";
      return;
    case Json::Kind::kBool:
      *out << (j.AsBool() ? "true" : "false");
      return;
    case Json::Kind::kInt:
      *out << j.AsInt();
      return;
    case Json::Kind::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", j.AsDouble());
      *out << buf;
      return;
    }
    case Json::Kind::kString:
      EscapeTo(j.AsString(), out);
      return;
    case Json::Kind::kArray: {
      *out << '[';
      for (size_t i = 0; i < j.size(); ++i) {
        if (i > 0) *out << ',';
        DumpTo(j.at(i), out);
      }
      *out << ']';
      return;
    }
    case Json::Kind::kObject: {
      *out << '{';
      bool first = true;
      for (const auto& [k, v] : j.members()) {
        if (!first) *out << ',';
        first = false;
        EscapeTo(k, out);
        *out << ':';
        DumpTo(v, out);
      }
      *out << '}';
      return;
    }
  }
}

}  // namespace

namespace {
struct Parser {
  const std::string& text;
  size_t pos = 0;

  explicit Parser(const std::string& t) : text(t) {}

  void SkipWs() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  Status Fail(const std::string& msg) const {
    return Status::ParseError("JSON: " + msg + " at offset " + std::to_string(pos));
  }

  Result<Json> ParseValue() {
    SkipWs();
    if (pos >= text.size()) return Fail("unexpected end");
    char c = text[pos];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      SIRIUS_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json::Str(std::move(s));
    }
    if (c == 't') {
      if (text.compare(pos, 4, "true") != 0) return Fail("bad literal");
      pos += 4;
      return Json::Bool(true);
    }
    if (c == 'f') {
      if (text.compare(pos, 5, "false") != 0) return Fail("bad literal");
      pos += 5;
      return Json::Bool(false);
    }
    if (c == 'n') {
      if (text.compare(pos, 4, "null") != 0) return Fail("bad literal");
      pos += 4;
      return Json::Null();
    }
    return ParseNumber();
  }

  Result<std::string> ParseString() {
    if (text[pos] != '"') return Fail("expected string");
    ++pos;
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos];
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return Fail("bad escape");
        switch (text[pos]) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'u': {
            if (pos + 4 >= text.size()) return Fail("bad unicode escape");
            unsigned code = 0;
            for (int k = 1; k <= 4; ++k) {
              char h = text[pos + k];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += h - '0';
              } else if (h >= 'a' && h <= 'f') {
                code += h - 'a' + 10;
              } else if (h >= 'A' && h <= 'F') {
                code += h - 'A' + 10;
              } else {
                return Fail("bad unicode escape");
              }
            }
            pos += 4;
            // Only BMP code points below 0x80 are emitted by our writer.
            out += static_cast<char>(code & 0x7f);
            break;
          }
          default:
            return Fail("bad escape");
        }
        ++pos;
      } else {
        out += c;
        ++pos;
      }
    }
    if (pos >= text.size()) return Fail("unterminated string");
    ++pos;  // closing quote
    return out;
  }

  Result<Json> ParseNumber() {
    size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    bool is_double = false;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      if (text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E') is_double = true;
      ++pos;
    }
    std::string tok = text.substr(start, pos - start);
    if (tok.empty()) return Fail("expected number");
    // stod/stoll throw on overflow/garbage; errors must stay Status-based.
    try {
      if (is_double) return Json::Double(std::stod(tok));
      return Json::Int(std::stoll(tok));
    } catch (const std::exception&) {
      return Fail("unparseable number '" + tok + "'");
    }
  }

  Result<Json> ParseArray() {
    ++pos;  // [
    Json arr = Json::Array();
    SkipWs();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return arr;
    }
    for (;;) {
      SIRIUS_ASSIGN_OR_RETURN(Json v, ParseValue());
      arr.Append(std::move(v));
      SkipWs();
      if (pos >= text.size()) return Fail("unterminated array");
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == ']') {
        ++pos;
        return arr;
      }
      return Fail("expected ',' or ']'");
    }
  }

  Result<Json> ParseObject() {
    ++pos;  // {
    Json obj = Json::Object();
    SkipWs();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return obj;
    }
    for (;;) {
      SkipWs();
      SIRIUS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (pos >= text.size() || text[pos] != ':') return Fail("expected ':'");
      ++pos;
      SIRIUS_ASSIGN_OR_RETURN(Json v, ParseValue());
      obj.Set(key, std::move(v));
      SkipWs();
      if (pos >= text.size()) return Fail("unterminated object");
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] == '}') {
        ++pos;
        return obj;
      }
      return Fail("expected ',' or '}'");
    }
  }
};
}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  Parser p(text);
  SIRIUS_ASSIGN_OR_RETURN(Json v, p.ParseValue());
  p.SkipWs();
  if (p.pos != text.size()) {
    return Status::ParseError("JSON: trailing characters at offset " +
                              std::to_string(p.pos));
  }
  return v;
}

}  // namespace sirius::plan
