#include "plan/substrait.h"

namespace sirius::plan {

using expr::Expr;
using expr::ExprKind;
using expr::ExprPtr;
using format::DataType;
using format::Scalar;
using format::TypeId;

namespace {

// ---------- Types & scalars ----------

Json SerializeType(const DataType& t) {
  Json j = Json::Object();
  j.Set("id", Json::Int(static_cast<int>(t.id)));
  if (t.scale != 0) j.Set("scale", Json::Int(t.scale));
  if (t.child != nullptr) j.Set("child", SerializeType(*t.child));
  return j;
}

DataType DeserializeType(const Json& j) {
  DataType t;
  t.id = static_cast<TypeId>(j["id"].AsInt());
  t.scale = static_cast<int>(j["scale"].AsInt());
  if (j.Has("child")) {
    t.child = std::make_shared<DataType>(DeserializeType(j["child"]));
  }
  return t;
}

Json SerializeScalar(const Scalar& s) {
  Json j = Json::Object();
  j.Set("type", SerializeType(s.type()));
  if (s.is_null()) {
    j.Set("null", Json::Bool(true));
    return j;
  }
  switch (s.type().id) {
    case TypeId::kFloat64:
      j.Set("d", Json::Double(s.double_value()));
      break;
    case TypeId::kString:
      j.Set("s", Json::Str(s.string_value()));
      break;
    default:
      j.Set("i", Json::Int(s.int_value()));
  }
  return j;
}

Result<Scalar> DeserializeScalar(const Json& j) {
  DataType t = DeserializeType(j["type"]);
  if (j["null"].AsBool()) return Scalar::Null(t);
  switch (t.id) {
    case TypeId::kBool:
      return Scalar::FromBool(j["i"].AsInt() != 0);
    case TypeId::kInt32:
      return Scalar::FromInt32(static_cast<int32_t>(j["i"].AsInt()));
    case TypeId::kInt64:
      return Scalar::FromInt64(j["i"].AsInt());
    case TypeId::kFloat64:
      return Scalar::FromDouble(j["d"].AsDouble());
    case TypeId::kDecimal64:
      return Scalar::FromDecimal(j["i"].AsInt(), t.scale);
    case TypeId::kDate32:
      return Scalar::FromDate(static_cast<int32_t>(j["i"].AsInt()));
    case TypeId::kString:
      return Scalar::FromString(j["s"].AsString());
    case TypeId::kList:
      return Status::ParseError("LIST literals are not supported");
  }
  return Status::ParseError("bad scalar type id");
}

}  // namespace

// ---------- Expressions ----------

Json SerializeExpr(const Expr& e) {
  Json j = Json::Object();
  switch (e.kind) {
    case ExprKind::kColumnRef:
      j.Set("k", Json::Str("col"));
      j.Set("i", Json::Int(e.column_index));
      if (!e.column_name.empty()) j.Set("name", Json::Str(e.column_name));
      break;
    case ExprKind::kLiteral:
      j.Set("k", Json::Str("lit"));
      j.Set("v", SerializeScalar(e.literal));
      break;
    case ExprKind::kBinary:
      j.Set("k", Json::Str("bin"));
      j.Set("op", Json::Int(static_cast<int>(e.bop)));
      break;
    case ExprKind::kUnary:
      j.Set("k", Json::Str("un"));
      j.Set("op", Json::Int(static_cast<int>(e.uop)));
      break;
    case ExprKind::kFunction:
      j.Set("k", Json::Str("fn"));
      j.Set("op", Json::Int(static_cast<int>(e.fop)));
      break;
    case ExprKind::kCase:
      j.Set("k", Json::Str("case"));
      break;
    case ExprKind::kInList: {
      j.Set("k", Json::Str("in"));
      Json list = Json::Array();
      for (const auto& s : e.in_list) list.Append(SerializeScalar(s));
      j.Set("list", std::move(list));
      break;
    }
    case ExprKind::kUdf:
      j.Set("k", Json::Str("udf"));
      j.Set("name", Json::Str(e.udf_name));
      break;
  }
  if (!e.children.empty()) {
    Json kids = Json::Array();
    for (const auto& c : e.children) kids.Append(SerializeExpr(*c));
    j.Set("args", std::move(kids));
  }
  return j;
}

Result<ExprPtr> DeserializeExpr(const Json& j) {
  const std::string& k = j["k"].AsString();
  auto e = std::make_shared<Expr>();
  if (j.Has("args")) {
    const Json& kids = j["args"];
    for (size_t i = 0; i < kids.size(); ++i) {
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr c, DeserializeExpr(kids.at(i)));
      e->children.push_back(std::move(c));
    }
  }
  if (k == "col") {
    e->kind = ExprKind::kColumnRef;
    e->column_index = static_cast<int>(j["i"].AsInt());
    if (j.Has("name")) e->column_name = j["name"].AsString();
    return e;
  }
  if (k == "lit") {
    e->kind = ExprKind::kLiteral;
    SIRIUS_ASSIGN_OR_RETURN(e->literal, DeserializeScalar(j["v"]));
    e->type = e->literal.type();
    return e;
  }
  if (k == "bin") {
    e->kind = ExprKind::kBinary;
    e->bop = static_cast<expr::BinaryOp>(j["op"].AsInt());
    return e;
  }
  if (k == "un") {
    e->kind = ExprKind::kUnary;
    e->uop = static_cast<expr::UnaryOp>(j["op"].AsInt());
    return e;
  }
  if (k == "fn") {
    e->kind = ExprKind::kFunction;
    e->fop = static_cast<expr::FuncOp>(j["op"].AsInt());
    return e;
  }
  if (k == "case") {
    e->kind = ExprKind::kCase;
    return e;
  }
  if (k == "udf") {
    e->kind = ExprKind::kUdf;
    e->udf_name = j["name"].AsString();
    return e;
  }
  if (k == "in") {
    e->kind = ExprKind::kInList;
    const Json& list = j["list"];
    for (size_t i = 0; i < list.size(); ++i) {
      SIRIUS_ASSIGN_OR_RETURN(Scalar s, DeserializeScalar(list.at(i)));
      e->in_list.push_back(std::move(s));
    }
    return e;
  }
  return Status::ParseError("unknown expr kind '" + k + "'");
}

// ---------- Plans ----------

namespace {

Json IntArray(const std::vector<int>& v) {
  Json a = Json::Array();
  for (int x : v) a.Append(Json::Int(x));
  return a;
}

std::vector<int> AsIntVector(const Json& a) {
  std::vector<int> out;
  out.reserve(a.size());
  for (size_t i = 0; i < a.size(); ++i) out.push_back(static_cast<int>(a.at(i).AsInt()));
  return out;
}

Json SerializeNode(const PlanNode& n) {
  Json j = Json::Object();
  j.Set("op", Json::Str(PlanKindName(n.kind)));
  switch (n.kind) {
    case PlanKind::kTableScan:
      j.Set("table", Json::Str(n.table_name));
      j.Set("columns", IntArray(n.scan_columns));
      break;
    case PlanKind::kFilter:
      j.Set("predicate", SerializeExpr(*n.predicate));
      break;
    case PlanKind::kProject: {
      Json exprs = Json::Array();
      Json names = Json::Array();
      for (size_t i = 0; i < n.projections.size(); ++i) {
        exprs.Append(SerializeExpr(*n.projections[i]));
        names.Append(Json::Str(n.projection_names[i]));
      }
      j.Set("exprs", std::move(exprs));
      j.Set("names", std::move(names));
      break;
    }
    case PlanKind::kJoin:
      j.Set("join_type", Json::Int(static_cast<int>(n.join_type)));
      j.Set("left_keys", IntArray(n.left_keys));
      j.Set("right_keys", IntArray(n.right_keys));
      if (n.residual != nullptr) j.Set("residual", SerializeExpr(*n.residual));
      if (n.join_type == JoinType::kAsof) {
        j.Set("asof_left", Json::Int(n.asof_left_on));
        j.Set("asof_right", Json::Int(n.asof_right_on));
      }
      break;
    case PlanKind::kAggregate: {
      j.Set("group_by", IntArray(n.group_by));
      Json aggs = Json::Array();
      for (const auto& a : n.aggregates) {
        Json item = Json::Object();
        item.Set("func", Json::Int(static_cast<int>(a.func)));
        item.Set("arg", Json::Int(a.arg_column));
        item.Set("name", Json::Str(a.name));
        aggs.Append(std::move(item));
      }
      j.Set("aggs", std::move(aggs));
      break;
    }
    case PlanKind::kSort: {
      Json keys = Json::Array();
      for (const auto& k : n.sort_keys) {
        Json item = Json::Object();
        item.Set("col", Json::Int(k.column));
        item.Set("desc", Json::Bool(k.descending));
        keys.Append(std::move(item));
      }
      j.Set("keys", std::move(keys));
      break;
    }
    case PlanKind::kLimit:
      j.Set("limit", Json::Int(n.limit));
      j.Set("offset", Json::Int(n.offset));
      break;
    case PlanKind::kDistinct:
      break;
    case PlanKind::kExchange:
      j.Set("exchange", Json::Int(static_cast<int>(n.exchange)));
      j.Set("keys", IntArray(n.partition_keys));
      break;
  }
  if (n.estimated_rows >= 0) j.Set("rows", Json::Double(n.estimated_rows));
  if (!n.children.empty()) {
    Json kids = Json::Array();
    for (const auto& c : n.children) kids.Append(SerializeNode(*c));
    j.Set("inputs", std::move(kids));
  }
  return j;
}

Result<PlanPtr> DeserializeNodeInner(const Json& j, const SchemaResolver& resolver);

Result<PlanPtr> DeserializeNode(const Json& j, const SchemaResolver& resolver) {
  SIRIUS_ASSIGN_OR_RETURN(PlanPtr node, DeserializeNodeInner(j, resolver));
  if (j.Has("rows")) node->estimated_rows = j["rows"].AsDouble();
  return node;
}

Result<PlanPtr> DeserializeNodeInner(const Json& j, const SchemaResolver& resolver) {
  const std::string& op = j["op"].AsString();
  std::vector<PlanPtr> children;
  if (j.Has("inputs")) {
    const Json& kids = j["inputs"];
    for (size_t i = 0; i < kids.size(); ++i) {
      SIRIUS_ASSIGN_OR_RETURN(PlanPtr c, DeserializeNode(kids.at(i), resolver));
      children.push_back(std::move(c));
    }
  }
  auto need_children = [&](size_t n) -> Status {
    if (children.size() != n) {
      return Status::ParseError(op + ": expected " + std::to_string(n) +
                                " inputs, got " + std::to_string(children.size()));
    }
    return Status::OK();
  };

  if (op == "TableScan") {
    SIRIUS_ASSIGN_OR_RETURN(format::Schema schema, resolver(j["table"].AsString()));
    return MakeScan(j["table"].AsString(), schema, AsIntVector(j["columns"]));
  }
  if (op == "Filter") {
    SIRIUS_RETURN_NOT_OK(need_children(1));
    SIRIUS_ASSIGN_OR_RETURN(ExprPtr pred, DeserializeExpr(j["predicate"]));
    return MakeFilter(children[0], std::move(pred));
  }
  if (op == "Project") {
    SIRIUS_RETURN_NOT_OK(need_children(1));
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    const Json& je = j["exprs"];
    const Json& jn = j["names"];
    for (size_t i = 0; i < je.size(); ++i) {
      SIRIUS_ASSIGN_OR_RETURN(ExprPtr e, DeserializeExpr(je.at(i)));
      exprs.push_back(std::move(e));
      names.push_back(jn.at(i).AsString());
    }
    return MakeProject(children[0], std::move(exprs), std::move(names));
  }
  if (op == "Join") {
    SIRIUS_RETURN_NOT_OK(need_children(2));
    ExprPtr residual;
    if (j.Has("residual")) {
      SIRIUS_ASSIGN_OR_RETURN(residual, DeserializeExpr(j["residual"]));
    }
    auto type = static_cast<JoinType>(j["join_type"].AsInt());
    if (type == JoinType::kAsof) {
      return MakeAsofJoin(children[0], children[1], AsIntVector(j["left_keys"]),
                          AsIntVector(j["right_keys"]),
                          static_cast<int>(j["asof_left"].AsInt()),
                          static_cast<int>(j["asof_right"].AsInt()));
    }
    return MakeJoin(children[0], children[1], type,
                    AsIntVector(j["left_keys"]), AsIntVector(j["right_keys"]),
                    std::move(residual));
  }
  if (op == "Aggregate") {
    SIRIUS_RETURN_NOT_OK(need_children(1));
    std::vector<AggItem> aggs;
    const Json& ja = j["aggs"];
    for (size_t i = 0; i < ja.size(); ++i) {
      AggItem item;
      item.func = static_cast<AggFunc>(ja.at(i)["func"].AsInt());
      item.arg_column = static_cast<int>(ja.at(i)["arg"].AsInt());
      item.name = ja.at(i)["name"].AsString();
      aggs.push_back(std::move(item));
    }
    return MakeAggregate(children[0], AsIntVector(j["group_by"]), std::move(aggs));
  }
  if (op == "Sort") {
    SIRIUS_RETURN_NOT_OK(need_children(1));
    std::vector<SortKey> keys;
    const Json& jk = j["keys"];
    for (size_t i = 0; i < jk.size(); ++i) {
      keys.push_back(
          {static_cast<int>(jk.at(i)["col"].AsInt()), jk.at(i)["desc"].AsBool()});
    }
    return MakeSort(children[0], std::move(keys));
  }
  if (op == "Limit") {
    SIRIUS_RETURN_NOT_OK(need_children(1));
    return MakeLimit(children[0], j["limit"].AsInt(), j["offset"].AsInt());
  }
  if (op == "Distinct") {
    SIRIUS_RETURN_NOT_OK(need_children(1));
    return MakeDistinct(children[0]);
  }
  if (op == "Exchange") {
    SIRIUS_RETURN_NOT_OK(need_children(1));
    return MakeExchange(children[0],
                        static_cast<ExchangeKind>(j["exchange"].AsInt()),
                        AsIntVector(j["keys"]));
  }
  return Status::ParseError("unknown plan op '" + op + "'");
}

}  // namespace

std::string SerializePlan(const PlanPtr& plan) {
  Json root = Json::Object();
  root.Set("version", Json::Str("sirius-substrait-1"));
  root.Set("root", SerializeNode(*plan));
  return root.Dump();
}

Result<PlanPtr> DeserializePlan(const std::string& text,
                                const SchemaResolver& resolver) {
  SIRIUS_ASSIGN_OR_RETURN(Json root, Json::Parse(text));
  if (root["version"].AsString() != "sirius-substrait-1") {
    return Status::ParseError("unsupported plan version");
  }
  return DeserializeNode(root["root"], resolver);
}

}  // namespace sirius::plan
