// Minimal self-contained JSON reader/writer used by the Substrait-equivalent
// plan serialization. Integers round-trip exactly (separate from doubles).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace sirius::plan {

/// \brief A JSON value (null / bool / int64 / double / string / array /
/// object with insertion-ordered keys).
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool v) {
    Json j;
    j.kind_ = Kind::kBool;
    j.int_ = v;
    return j;
  }
  static Json Int(int64_t v) {
    Json j;
    j.kind_ = Kind::kInt;
    j.int_ = v;
    return j;
  }
  static Json Double(double v) {
    Json j;
    j.kind_ = Kind::kDouble;
    j.double_ = v;
    return j;
  }
  static Json Str(std::string v) {
    Json j;
    j.kind_ = Kind::kString;
    j.str_ = std::move(v);
    return j;
  }
  static Json Array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool AsBool() const { return int_ != 0; }
  int64_t AsInt() const { return kind_ == Kind::kDouble ? static_cast<int64_t>(double_) : int_; }
  double AsDouble() const { return kind_ == Kind::kDouble ? double_ : static_cast<double>(int_); }
  const std::string& AsString() const { return str_; }

  // Array access.
  void Append(Json v) { arr_.push_back(std::move(v)); }
  size_t size() const { return arr_.size(); }
  const Json& at(size_t i) const { return arr_[i]; }

  // Object access.
  void Set(const std::string& key, Json v);
  /// Member lookup; returns a shared null for missing keys.
  const Json& operator[](const std::string& key) const;
  bool Has(const std::string& key) const;
  /// Object members in insertion order.
  const std::vector<std::pair<std::string, Json>>& members() const { return obj_; }

  /// Serializes (compact).
  std::string Dump() const;

  /// Parses a JSON document.
  static Result<Json> Parse(const std::string& text);

 private:
  Kind kind_ = Kind::kNull;
  int64_t int_ = 0;
  double double_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace sirius::plan
