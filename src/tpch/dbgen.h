// Deterministic in-repo TPC-H data generator (dbgen equivalent).
//
// Follows the TPC-H specification's schema, key structure, value domains and
// the distributions the 22 queries' predicates depend on (dates, segments,
// brands, containers, comment trigger phrases for Q13/Q16, phone country
// codes for Q22, ...). Cardinalities scale with `sf` exactly as in the spec:
// supplier 10k*sf, part 200k*sf, customer 150k*sf, orders 1.5M*sf,
// partsupp 4/part, lineitem 1-7/order.

#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "format/table.h"

namespace sirius::tpch {

/// Table schemas (TPC-H spec column names/types; money columns DECIMAL(2)).
format::Schema RegionSchema();
format::Schema NationSchema();
format::Schema SupplierSchema();
format::Schema PartSchema();
format::Schema PartsuppSchema();
format::Schema CustomerSchema();
format::Schema OrdersSchema();
format::Schema LineitemSchema();

/// \brief Generates one TPC-H table at scale factor `sf` (deterministic:
/// same sf => identical bytes). Valid names: region, nation, supplier,
/// part, partsupp, customer, orders, lineitem.
Result<format::TablePtr> GenerateTable(const std::string& name, double sf);

/// All eight table names in generation order.
const std::vector<std::string>& TableNames();

}  // namespace sirius::tpch
