// The 22 TPC-H queries (validation-parameter variants) and a loader.

#pragma once

#include <string>

#include "common/result.h"
#include "host/database.h"

namespace sirius::tpch {

/// SQL text of TPC-H query q (1-22).
const std::string& Query(int q);

/// Number of queries (22).
int NumQueries();

/// Generates all eight tables at `sf` and registers them in `db`.
Status LoadTpch(host::Database* db, double sf);

}  // namespace sirius::tpch
