#include "tpch/dbgen.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "format/builder.h"

namespace sirius::tpch {

using format::ColumnBuilder;
using format::DataType;
using format::DaysFromCivil;
using format::Field;
using format::Schema;
using format::TablePtr;

namespace {

// ---------------------------------------------------------------------------
// Deterministic RNG (splitmix64-based, seeded per table)
// ---------------------------------------------------------------------------

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 0x9e3779b97f4a7c15ULL + 1) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  /// One of the strings in `list`.
  template <typename T>
  const T& Pick(const std::vector<T>& list) {
    return list[Next() % list.size()];
  }

 private:
  uint64_t state_;
};

// ---------------------------------------------------------------------------
// Spec value domains
// ---------------------------------------------------------------------------

const std::vector<std::string>& Regions() {
  static const std::vector<std::string> v = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                             "MIDDLE EAST"};
  return v;
}

struct NationDef {
  const char* name;
  int region;
};

const std::vector<NationDef>& Nations() {
  static const std::vector<NationDef> v = {
      {"ALGERIA", 0},        {"ARGENTINA", 1},  {"BRAZIL", 1},
      {"CANADA", 1},         {"EGYPT", 4},      {"ETHIOPIA", 0},
      {"FRANCE", 3},         {"GERMANY", 3},    {"INDIA", 2},
      {"INDONESIA", 2},      {"IRAN", 4},       {"IRAQ", 4},
      {"JAPAN", 2},          {"JORDAN", 4},     {"KENYA", 0},
      {"MOROCCO", 0},        {"MOZAMBIQUE", 0}, {"PERU", 1},
      {"CHINA", 2},          {"ROMANIA", 3},    {"SAUDI ARABIA", 4},
      {"VIETNAM", 2},        {"RUSSIA", 3},     {"UNITED KINGDOM", 3},
      {"UNITED STATES", 1}};
  return v;
}

const std::vector<std::string>& TypeSyllable1() {
  static const std::vector<std::string> v = {"STANDARD", "SMALL", "MEDIUM",
                                             "LARGE", "ECONOMY", "PROMO"};
  return v;
}
const std::vector<std::string>& TypeSyllable2() {
  static const std::vector<std::string> v = {"ANODIZED", "BURNISHED", "PLATED",
                                             "POLISHED", "BRUSHED"};
  return v;
}
const std::vector<std::string>& TypeSyllable3() {
  static const std::vector<std::string> v = {"TIN", "NICKEL", "BRASS", "STEEL",
                                             "COPPER"};
  return v;
}
const std::vector<std::string>& Container1() {
  static const std::vector<std::string> v = {"SM", "LG", "MED", "JUMBO", "WRAP"};
  return v;
}
const std::vector<std::string>& Container2() {
  static const std::vector<std::string> v = {"CASE", "BOX", "BAG", "JAR", "PKG",
                                             "PACK", "CAN", "DRUM"};
  return v;
}
const std::vector<std::string>& Segments() {
  static const std::vector<std::string> v = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                             "MACHINERY", "HOUSEHOLD"};
  return v;
}
const std::vector<std::string>& Priorities() {
  static const std::vector<std::string> v = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                             "4-NOT SPECIFIED", "5-LOW"};
  return v;
}
const std::vector<std::string>& ShipInstructs() {
  static const std::vector<std::string> v = {"DELIVER IN PERSON", "COLLECT COD",
                                             "NONE", "TAKE BACK RETURN"};
  return v;
}
const std::vector<std::string>& ShipModes() {
  static const std::vector<std::string> v = {"REG AIR", "AIR", "RAIL", "SHIP",
                                             "TRUCK", "MAIL", "FOB"};
  return v;
}
const std::vector<std::string>& PartNameWords() {
  static const std::vector<std::string> v = {
      "almond",    "antique",   "aquamarine", "azure",     "beige",    "bisque",
      "black",     "blanched",  "blue",       "blush",     "brown",    "burlywood",
      "burnished", "chartreuse", "chiffon",   "chocolate", "coral",    "cornflower",
      "cornsilk",  "cream",     "cyan",       "dark",      "deep",     "dim",
      "dodger",    "drab",      "firebrick",  "floral",    "forest",   "frosted",
      "gainsboro", "ghost",     "goldenrod",  "green",     "grey",     "honeydew",
      "hot",       "indian",    "ivory",      "khaki",     "lace",     "lavender",
      "lawn",      "lemon",     "light",      "lime",      "linen",    "magenta",
      "maroon",    "medium",    "metallic",   "midnight",  "mint",     "misty",
      "moccasin",  "navajo",    "navy",       "olive",     "orange",   "orchid",
      "pale",      "papaya",    "peach",      "peru",      "pink",     "plum",
      "powder",    "puff",      "purple",     "red",       "rose",     "rosy",
      "royal",     "saddle",    "salmon",     "sandy",     "seashell", "sienna",
      "sky",       "slate",     "smoke",      "snow",      "spring",   "steel",
      "tan",       "thistle",   "tomato",     "turquoise", "violet",   "wheat",
      "white",     "yellow"};
  return v;
}
const std::vector<std::string>& CommentWords() {
  static const std::vector<std::string> v = {
      "carefully", "quickly",  "furiously",  "slyly",    "blithely", "deposits",
      "requests",  "accounts", "instructions", "packages", "theodolites", "pinto",
      "beans",     "foxes",    "ideas",      "dependencies", "excuses", "platelets",
      "asymptotes", "courts",  "dolphins",   "multipliers", "sauternes", "warthogs",
      "frets",     "dinos",    "attainments", "somas",   "realms",   "braids",
      "hockey",    "players",  "about",      "the",      "final",    "bold",
      "regular",   "express",  "even",       "special",  "silent",   "ironic",
      "pending",   "sleep",    "wake",       "haggle",   "nag",      "use",
      "boost",     "along",    "across",     "among"};
  return v;
}

std::string RandomComment(Rng& rng, int min_words, int max_words) {
  int n = static_cast<int>(rng.Range(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += ' ';
    out += rng.Pick(CommentWords());
  }
  return out;
}

std::string Phone(Rng& rng, int64_t nationkey) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d",
                static_cast<int>(nationkey + 10), static_cast<int>(rng.Range(100, 999)),
                static_cast<int>(rng.Range(100, 999)),
                static_cast<int>(rng.Range(1000, 9999)));
  return buf;
}

std::string PadKeyName(const char* prefix, int64_t key) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s#%09lld", prefix,
                static_cast<long long>(key));
  return buf;
}

int64_t RetailPriceCents(int64_t partkey) {
  return 90000 + ((partkey / 10) % 20001) + 100 * (partkey % 1000);
}

constexpr int32_t kStartDate = 8035;   // 1992-01-01
constexpr int32_t kEndOrderSpan = 2405;  // orders up to 1998-08-02
constexpr int32_t kCurrentDate = 9298;   // 1995-06-17 (returnflag boundary)

// ---------------------------------------------------------------------------
// Schemas
// ---------------------------------------------------------------------------

DataType Money() { return format::Decimal(2); }

}  // namespace

Schema RegionSchema() {
  return Schema({{"r_regionkey", format::Int64()},
                 {"r_name", format::String()},
                 {"r_comment", format::String()}});
}

Schema NationSchema() {
  return Schema({{"n_nationkey", format::Int64()},
                 {"n_name", format::String()},
                 {"n_regionkey", format::Int64()},
                 {"n_comment", format::String()}});
}

Schema SupplierSchema() {
  return Schema({{"s_suppkey", format::Int64()},
                 {"s_name", format::String()},
                 {"s_address", format::String()},
                 {"s_nationkey", format::Int64()},
                 {"s_phone", format::String()},
                 {"s_acctbal", Money()},
                 {"s_comment", format::String()}});
}

Schema PartSchema() {
  return Schema({{"p_partkey", format::Int64()},
                 {"p_name", format::String()},
                 {"p_mfgr", format::String()},
                 {"p_brand", format::String()},
                 {"p_type", format::String()},
                 {"p_size", format::Int64()},
                 {"p_container", format::String()},
                 {"p_retailprice", Money()},
                 {"p_comment", format::String()}});
}

Schema PartsuppSchema() {
  return Schema({{"ps_partkey", format::Int64()},
                 {"ps_suppkey", format::Int64()},
                 {"ps_availqty", format::Int64()},
                 {"ps_supplycost", Money()},
                 {"ps_comment", format::String()}});
}

Schema CustomerSchema() {
  return Schema({{"c_custkey", format::Int64()},
                 {"c_name", format::String()},
                 {"c_address", format::String()},
                 {"c_nationkey", format::Int64()},
                 {"c_phone", format::String()},
                 {"c_acctbal", Money()},
                 {"c_mktsegment", format::String()},
                 {"c_comment", format::String()}});
}

Schema OrdersSchema() {
  return Schema({{"o_orderkey", format::Int64()},
                 {"o_custkey", format::Int64()},
                 {"o_orderstatus", format::String()},
                 {"o_totalprice", Money()},
                 {"o_orderdate", format::Date32()},
                 {"o_orderpriority", format::String()},
                 {"o_clerk", format::String()},
                 {"o_shippriority", format::Int64()},
                 {"o_comment", format::String()}});
}

Schema LineitemSchema() {
  return Schema({{"l_orderkey", format::Int64()},
                 {"l_partkey", format::Int64()},
                 {"l_suppkey", format::Int64()},
                 {"l_linenumber", format::Int64()},
                 {"l_quantity", Money()},
                 {"l_extendedprice", Money()},
                 {"l_discount", Money()},
                 {"l_tax", Money()},
                 {"l_returnflag", format::String()},
                 {"l_linestatus", format::String()},
                 {"l_shipdate", format::Date32()},
                 {"l_commitdate", format::Date32()},
                 {"l_receiptdate", format::Date32()},
                 {"l_shipinstruct", format::String()},
                 {"l_shipmode", format::String()},
                 {"l_comment", format::String()}});
}

namespace {

// ---------------------------------------------------------------------------
// Table generators
// ---------------------------------------------------------------------------

Result<TablePtr> GenRegion() {
  format::TableBuilder b(RegionSchema());
  Rng rng(1);
  for (size_t i = 0; i < Regions().size(); ++i) {
    b.column(0).AppendInt(static_cast<int64_t>(i));
    b.column(1).AppendString(Regions()[i]);
    b.column(2).AppendString(RandomComment(rng, 4, 10));
  }
  return b.Finish();
}

Result<TablePtr> GenNation() {
  format::TableBuilder b(NationSchema());
  Rng rng(2);
  for (size_t i = 0; i < Nations().size(); ++i) {
    b.column(0).AppendInt(static_cast<int64_t>(i));
    b.column(1).AppendString(Nations()[i].name);
    b.column(2).AppendInt(Nations()[i].region);
    b.column(3).AppendString(RandomComment(rng, 4, 10));
  }
  return b.Finish();
}

Result<TablePtr> GenSupplier(int64_t count) {
  format::TableBuilder b(SupplierSchema());
  Rng rng(3);
  for (int64_t key = 1; key <= count; ++key) {
    b.column(0).AppendInt(key);
    b.column(1).AppendString(PadKeyName("Supplier", key));
    b.column(2).AppendString(RandomComment(rng, 2, 4));
    int64_t nationkey = rng.Range(0, 24);
    b.column(3).AppendInt(nationkey);
    b.column(4).AppendString(Phone(rng, nationkey));
    b.column(5).AppendInt(rng.Range(-99999, 999999));  // cents
    // ~0.05% of suppliers get the Q16 trigger phrase.
    std::string comment = RandomComment(rng, 6, 12);
    if (rng.Range(0, 1999) == 0) {
      comment += " Customer unhappy Complaints";
    }
    b.column(6).AppendString(comment);
  }
  return b.Finish();
}

Result<TablePtr> GenPart(int64_t count) {
  format::TableBuilder b(PartSchema());
  Rng rng(4);
  for (int64_t key = 1; key <= count; ++key) {
    b.column(0).AppendInt(key);
    std::string name = rng.Pick(PartNameWords());
    for (int w = 0; w < 4; ++w) name += " " + rng.Pick(PartNameWords());
    b.column(1).AppendString(name);
    int m = static_cast<int>(rng.Range(1, 5));
    b.column(2).AppendString("Manufacturer#" + std::to_string(m));
    b.column(3).AppendString("Brand#" + std::to_string(m) +
                             std::to_string(rng.Range(1, 5)));
    b.column(4).AppendString(rng.Pick(TypeSyllable1()) + " " +
                             rng.Pick(TypeSyllable2()) + " " +
                             rng.Pick(TypeSyllable3()));
    b.column(5).AppendInt(rng.Range(1, 50));
    b.column(6).AppendString(rng.Pick(Container1()) + " " + rng.Pick(Container2()));
    b.column(7).AppendInt(RetailPriceCents(key));
    b.column(8).AppendString(RandomComment(rng, 3, 8));
  }
  return b.Finish();
}

Result<TablePtr> GenPartsupp(int64_t part_count, int64_t supp_count) {
  format::TableBuilder b(PartsuppSchema());
  Rng rng(5);
  for (int64_t pk = 1; pk <= part_count; ++pk) {
    for (int s = 0; s < 4; ++s) {
      // Spec supplier assignment formula: spreads suppliers over parts.
      int64_t sk = (pk + (s * ((supp_count / 4) + (pk - 1) / supp_count))) %
                       supp_count +
                   1;
      b.column(0).AppendInt(pk);
      b.column(1).AppendInt(sk);
      b.column(2).AppendInt(rng.Range(1, 9999));
      b.column(3).AppendInt(rng.Range(100, 100000));  // 1.00 .. 1000.00
      b.column(4).AppendString(RandomComment(rng, 6, 12));
    }
  }
  return b.Finish();
}

Result<TablePtr> GenCustomer(int64_t count) {
  format::TableBuilder b(CustomerSchema());
  Rng rng(6);
  for (int64_t key = 1; key <= count; ++key) {
    b.column(0).AppendInt(key);
    b.column(1).AppendString(PadKeyName("Customer", key));
    b.column(2).AppendString(RandomComment(rng, 2, 4));
    int64_t nationkey = rng.Range(0, 24);
    b.column(3).AppendInt(nationkey);
    b.column(4).AppendString(Phone(rng, nationkey));
    b.column(5).AppendInt(rng.Range(-99999, 999999));
    b.column(6).AppendString(rng.Pick(Segments()));
    b.column(7).AppendString(RandomComment(rng, 6, 12));
  }
  return b.Finish();
}

Result<TablePtr> GenOrders(int64_t order_count, int64_t customer_count) {
  format::TableBuilder b(OrdersSchema());
  Rng rng(7);
  for (int64_t i = 1; i <= order_count; ++i) {
    // Spec: orderkeys are sparse (8 per 32-key block).
    int64_t key = (i - 1) / 8 * 32 + (i - 1) % 8 + 1;
    b.column(0).AppendInt(key);
    // Spec: only 2/3 of customers have orders (custkey % 3 != 0 -> shift).
    int64_t ck = rng.Range(1, std::max<int64_t>(1, customer_count));
    if (customer_count >= 3 && ck % 3 == 0) ++ck;
    if (ck > customer_count) ck = 1;
    b.column(1).AppendInt(ck);
    // Order date is a deterministic function of the order key so that the
    // lineitem generator reproduces it without cross-table state.
    Rng date_rng(static_cast<uint64_t>(key) * 2654435761ULL + 7);
    int32_t orderdate = kStartDate + static_cast<int32_t>(date_rng.Range(0, kEndOrderSpan));
    // Status from the (approximate) lineitem ship state.
    const char* status = orderdate + 60 < kCurrentDate
                             ? "F"
                             : (orderdate > kCurrentDate ? "O" : "P");
    b.column(2).AppendString(status);
    b.column(3).AppendInt(rng.Range(90000, 35000000));  // ~900 .. 350k
    b.column(4).AppendInt(orderdate);
    b.column(5).AppendString(rng.Pick(Priorities()));
    b.column(6).AppendString(PadKeyName("Clerk", rng.Range(1, 1000)));
    b.column(7).AppendInt(0);
    std::string comment = RandomComment(rng, 5, 12);
    // Q13 trigger: ~1% of orders mention "special ... requests".
    if (rng.Range(0, 99) == 0) comment += " special packages requests";
    b.column(8).AppendString(comment);
  }
  return b.Finish();
}

Result<TablePtr> GenLineitem(int64_t order_count, int64_t part_count,
                             int64_t supp_count) {
  format::TableBuilder b(LineitemSchema());
  Rng rng(8);
  for (int64_t i = 1; i <= order_count; ++i) {
    int64_t key = (i - 1) / 8 * 32 + (i - 1) % 8 + 1;
    int64_t lines = rng.Range(1, 7);
    // Same deterministic key->date function as GenOrders.
    Rng date_rng(static_cast<uint64_t>(key) * 2654435761ULL + 7);
    int32_t orderdate = kStartDate + static_cast<int32_t>(date_rng.Range(0, kEndOrderSpan));
    for (int64_t ln = 1; ln <= lines; ++ln) {
      b.column(0).AppendInt(key);
      int64_t partkey = rng.Range(1, part_count);
      b.column(1).AppendInt(partkey);
      // Spec formula keeps (partkey, suppkey) in partsupp's pairs.
      int s = static_cast<int>(rng.Range(0, 3));
      int64_t suppkey = (partkey + (s * ((supp_count / 4) + (partkey - 1) / supp_count))) %
                            supp_count +
                        1;
      b.column(2).AppendInt(suppkey);
      b.column(3).AppendInt(ln);
      int64_t quantity = rng.Range(1, 50);
      b.column(4).AppendInt(quantity * 100);  // DECIMAL(2)
      b.column(5).AppendInt(quantity * RetailPriceCents(partkey) / 100);
      b.column(6).AppendInt(rng.Range(0, 10));  // 0.00 .. 0.10
      b.column(7).AppendInt(rng.Range(0, 8));   // 0.00 .. 0.08
      int32_t shipdate = orderdate + static_cast<int32_t>(rng.Range(1, 121));
      int32_t commitdate = orderdate + static_cast<int32_t>(rng.Range(30, 90));
      int32_t receiptdate = shipdate + static_cast<int32_t>(rng.Range(1, 30));
      if (receiptdate <= kCurrentDate) {
        b.column(8).AppendString(rng.Range(0, 1) == 0 ? "R" : "A");
      } else {
        b.column(8).AppendString("N");
      }
      b.column(9).AppendString(shipdate > kCurrentDate ? "O" : "F");
      b.column(10).AppendInt(shipdate);
      b.column(11).AppendInt(commitdate);
      b.column(12).AppendInt(receiptdate);
      b.column(13).AppendString(rng.Pick(ShipInstructs()));
      b.column(14).AppendString(rng.Pick(ShipModes()));
      b.column(15).AppendString(RandomComment(rng, 2, 6));
    }
  }
  return b.Finish();
}

}  // namespace

const std::vector<std::string>& TableNames() {
  static const std::vector<std::string> v = {"region",   "nation",  "supplier",
                                             "part",     "partsupp", "customer",
                                             "orders",   "lineitem"};
  return v;
}

Result<TablePtr> GenerateTable(const std::string& name, double sf) {
  const int64_t supp = std::max<int64_t>(10, static_cast<int64_t>(10000 * sf));
  const int64_t part = std::max<int64_t>(40, static_cast<int64_t>(200000 * sf));
  const int64_t cust = std::max<int64_t>(30, static_cast<int64_t>(150000 * sf));
  const int64_t orders = std::max<int64_t>(75, static_cast<int64_t>(1500000 * sf));
  if (name == "region") return GenRegion();
  if (name == "nation") return GenNation();
  if (name == "supplier") return GenSupplier(supp);
  if (name == "part") return GenPart(part);
  if (name == "partsupp") return GenPartsupp(part, supp);
  if (name == "customer") return GenCustomer(cust);
  if (name == "orders") return GenOrders(orders, cust);
  if (name == "lineitem") return GenLineitem(orders, part, supp);
  return Status::KeyError("unknown TPC-H table '" + name + "'");
}

}  // namespace sirius::tpch
