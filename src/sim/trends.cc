#include "sim/trends.h"

#include <cmath>

namespace sirius::sim {

double TrendSeries::Cagr() const {
  if (points.size() < 2) return 0.0;
  const auto& a = points.front();
  const auto& b = points.back();
  if (a.value <= 0 || b.year <= a.year) return 0.0;
  return std::pow(b.value / a.value, 1.0 / (b.year - a.year)) - 1.0;
}

double TrendSeries::DoublingYears() const {
  double cagr = Cagr();
  if (cagr <= 0) return 0.0;
  return std::log(2.0) / std::log(1.0 + cagr);
}

TrendSeries GpuMemoryTrend() {
  return {"GPU device memory",
          "GB",
          {
              {2014, "Kepler K80", 24},
              {2016, "Pascal P100", 16},
              {2017, "Volta V100", 32},
              {2020, "Ampere A100", 80},
              {2022, "Hopper H100", 96},
              {2024, "Hopper H200 / GH200", 192},
              {2025, "Blackwell B200", 192},
              {2026, "Blackwell Ultra B300", 288},
          }};
}

TrendSeries InterconnectTrend() {
  return {"CPU-GPU interconnect",
          "GB/s",
          {
              {2012, "PCIe3 x16", 16},
              {2017, "PCIe4 x16", 32},
              {2019, "PCIe5 x16", 64},
              {2022, "NVLink-C2C", 450},
              {2025, "PCIe6 x16", 128},
          }};
}

TrendSeries StorageTrend() {
  return {"NVMe storage",
          "GB/s",
          {
              {2014, "NVMe Gen3", 3.5},
              {2019, "NVMe Gen4", 7},
              {2022, "NVMe Gen5", 14},
              {2025, "NVMe Gen6 / S3-over-RDMA array", 200},
          }};
}

TrendSeries NetworkTrend() {
  return {"Datacenter network",
          "Gbps",
          {
              {2012, "10 GbE", 10},
              {2015, "40 GbE", 40},
              {2017, "100 GbE / EDR IB", 100},
              {2021, "200 Gbps HDR IB", 200},
              {2023, "400 Gbps NDR IB", 400},
              {2025, "800 Gbps XDR IB", 800},
          }};
}

std::vector<TrendSeries> AllTrends() {
  return {GpuMemoryTrend(), InterconnectTrend(), StorageTrend(), NetworkTrend()};
}

}  // namespace sirius::sim
