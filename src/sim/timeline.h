// Simulated time accounting.
//
// Every operator charges its modeled execution time to a Timeline; reported
// benchmark numbers are Timeline totals, not wall-clock (DESIGN.md §1).

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace sirius::sim {

/// Operator-time buckets matching the Figure 5 breakdown categories.
enum class OpCategory {
  kScan,
  kFilter,
  kProject,
  kJoin,
  kGroupBy,
  kAggregate,
  kOrderBy,
  kExchange,
  kOther,
};

const char* OpCategoryName(OpCategory c);

/// \brief Accumulates simulated seconds, bucketed by operator category.
///
/// One Timeline per (query execution x device). Distributed execution uses
/// one per node and synchronizes them at exchange boundaries.
class Timeline {
 public:
  /// Charges `seconds` of simulated time to `category`.
  void Charge(OpCategory category, double seconds);

  /// Advances the clock to at least `t_seconds` (exchange barrier sync).
  void AdvanceTo(double t_seconds);

  /// Total simulated seconds elapsed.
  double total_seconds() const { return total_; }

  /// Simulated seconds charged to one category.
  double seconds(OpCategory category) const;

  /// Per-category totals for every category that was charged.
  std::map<OpCategory, double> breakdown() const { return by_category_; }

  /// Resets the clock and all buckets to zero.
  void Reset();

  /// Merges another timeline's buckets into this one (sequential composition:
  /// totals add).
  void Append(const Timeline& other);

 private:
  double total_ = 0.0;
  std::map<OpCategory, double> by_category_;
};

/// Identifies one simulated stream (in-order work queue) of the device model.
using StreamId = int32_t;
/// Identifies one recorded event (cross-stream ordering point).
using EventId = int32_t;

/// \brief Debug-mode happens-before checker for work on simulated streams.
///
/// The device model executes kernels for real on the host thread pool, so a
/// missing ordering edge between two pipelines does not deterministically
/// corrupt data the way it would on a GPU — it corrupts data only when the
/// scheduler happens to interleave them. This tracker makes the bug
/// deterministic: every kernel access to a shared resource (buffer, cache
/// entry, materialized pipeline result) is checked against a vector-clock
/// happens-before relation over streams and events, and an access with no
/// ordering edge to a conflicting prior access is reported immediately, on
/// every run, regardless of interleaving.
///
/// Semantics follow CUDA streams: work on one stream is ordered; cross-stream
/// ordering exists only through RecordEvent / StreamWaitEvent edges.
///
/// Thread-safe. Disabled trackers cost one branch per call.
class HazardTracker {
 public:
  /// What went wrong, in machine-checkable form (tests assert on this).
  enum class ViolationKind {
    kWriteWriteRace,   ///< two unordered writes to the same resource
    kReadWriteRace,    ///< write unordered with a prior read
    kWriteReadRace,    ///< read unordered with a prior write
    kInvalidStream,    ///< access on an unknown stream id
    kInvalidEvent,     ///< wait on a never-recorded event
  };

  struct Violation {
    ViolationKind kind;
    uint64_t resource = 0;    ///< id of the buffer/result the kernels touched
    StreamId first = -1;      ///< stream of the earlier conflicting access
    StreamId second = -1;     ///< stream of the later access
    std::string detail;       ///< human-readable diagnostic
  };

  HazardTracker();

  /// Process-unique identity of this tracker instance. Event ids are only
  /// meaningful within one tracker; holders that cache an EventId across
  /// tracker lifetimes (e.g. buffer-manager entries surviving a query) must
  /// stamp it with this id and discard it when the tracker changes.
  uint64_t id() const { return id_; }

  /// When false (default) every call is a no-op; flip on for checked runs.
  void set_enabled(bool enabled);
  bool enabled() const;

  /// When true (default) the first violation aborts the process with a
  /// diagnostic; tests turn this off and inspect violations() instead.
  void set_abort_on_violation(bool abort_on_violation);

  /// Registers a new stream and returns its id. Stream 0 is pre-created as
  /// the default stream, mirroring CUDA's.
  StreamId CreateStream(const std::string& name = "");

  /// Records an event capturing all work submitted to `stream` so far.
  EventId RecordEvent(StreamId stream);

  /// Makes future work on `stream` ordered after everything `event` captured.
  void StreamWaitEvent(StreamId stream, EventId event);

  /// Declares that a kernel running on `stream` reads/writes `resource`.
  /// `what` names the access in diagnostics ("probe build side", ...).
  void OnAccess(StreamId stream, uint64_t resource, bool is_write,
                const std::string& what = "");
  void OnRead(StreamId stream, uint64_t resource, const std::string& what = "") {
    OnAccess(stream, resource, /*is_write=*/false, what);
  }
  void OnWrite(StreamId stream, uint64_t resource, const std::string& what = "") {
    OnAccess(stream, resource, /*is_write=*/true, what);
  }

  /// Forgets a resource (freed buffers may recycle ids).
  void ReleaseResource(uint64_t resource);

  size_t violation_count() const;
  std::vector<Violation> violations() const;

  /// Drops all streams, events, resources, and recorded violations.
  void Reset();

 private:
  /// Vector clock indexed by StreamId; missing tail entries are zero.
  using Clock = std::vector<uint64_t>;

  /// One access epoch: position `at` in stream `stream`'s local order.
  struct Epoch {
    StreamId stream = -1;
    uint64_t at = 0;
    std::string what;
  };

  struct StreamState {
    std::string name;
    Clock clock;  ///< joined knowledge of every stream's progress
  };

  struct ResourceState {
    Epoch last_write;
    std::vector<Epoch> reads;  ///< reads since last_write, one per stream
  };

  /// True when epoch `e` happens-before the holder of `clock`.
  static bool HappensBefore(const Epoch& e, const Clock& clock);

  void Report(std::unique_lock<std::mutex>& lock, Violation v);
  bool CheckStream(std::unique_lock<std::mutex>& lock, StreamId stream,
                   const char* op);
  std::string StreamName(StreamId s) const;

  mutable std::mutex mu_;
  const uint64_t id_;
  bool enabled_ = false;
  bool abort_on_violation_ = true;
  std::vector<StreamState> streams_{{std::string("default"), Clock{}}};
  std::vector<Epoch> events_;  ///< EventId -> snapshot; clock in event_clocks_
  std::vector<Clock> event_clocks_;
  std::map<uint64_t, ResourceState> resources_;
  std::vector<Violation> violations_;
};

const char* HazardViolationKindName(HazardTracker::ViolationKind kind);

}  // namespace sirius::sim
