// Simulated time accounting.
//
// Every operator charges its modeled execution time to a Timeline; reported
// benchmark numbers are Timeline totals, not wall-clock (DESIGN.md §1).

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sirius::sim {

/// Operator-time buckets matching the Figure 5 breakdown categories.
enum class OpCategory {
  kScan,
  kFilter,
  kProject,
  kJoin,
  kGroupBy,
  kAggregate,
  kOrderBy,
  kExchange,
  kOther,
};

const char* OpCategoryName(OpCategory c);

/// \brief Accumulates simulated seconds, bucketed by operator category.
///
/// One Timeline per (query execution x device). Distributed execution uses
/// one per node and synchronizes them at exchange boundaries.
class Timeline {
 public:
  /// Charges `seconds` of simulated time to `category`.
  void Charge(OpCategory category, double seconds);

  /// Advances the clock to at least `t_seconds` (exchange barrier sync).
  void AdvanceTo(double t_seconds);

  /// Total simulated seconds elapsed.
  double total_seconds() const { return total_; }

  /// Simulated seconds charged to one category.
  double seconds(OpCategory category) const;

  /// Per-category totals for every category that was charged.
  std::map<OpCategory, double> breakdown() const { return by_category_; }

  /// Resets the clock and all buckets to zero.
  void Reset();

  /// Merges another timeline's buckets into this one (sequential composition:
  /// totals add).
  void Append(const Timeline& other);

 private:
  double total_ = 0.0;
  std::map<OpCategory, double> by_category_;
};

}  // namespace sirius::sim
