// Modeled interconnect links (CPU<->GPU and node<->node).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sirius::sim {

/// \brief A point-to-point link with bandwidth and setup latency.
struct Link {
  std::string name;
  double bandwidth_gbps = 10.0;  ///< GB/s, one direction
  double latency_us = 5.0;       ///< per-message setup cost

  /// Seconds to move `bytes` (scaled by `data_scale`) over this link.
  double TransferSeconds(uint64_t bytes, double data_scale = 1.0) const;
};

/// \name Standard links (paper §2.1 and §4.1).
/// @{
Link Pcie3x16();    ///< 16 GB/s
Link Pcie4x16();    ///< 32 GB/s (A100 cluster uses 25.6 GB/s bidir => 12.8/dir)
Link Pcie4A100();   ///< the A100 cluster's effective 12.8 GB/s per direction
Link Pcie5x16();    ///< 64 GB/s
Link Pcie6x16();    ///< 128 GB/s
Link NvlinkC2c();   ///< 450 GB/s per direction (900 GB/s bidirectional)
Link NvmeGen4();    ///< datacenter NVMe SSD, ~6.5 GB/s sequential
Link Infiniband400();  ///< 4x NDR, 400 Gbps = 50 GB/s
Link Ethernet100();    ///< 100 GbE = 12.5 GB/s
/// @}

/// All interconnect links, for the §2.1 ablation sweep.
std::vector<Link> AllHostLinks();

}  // namespace sirius::sim
