#include "sim/cost_model.h"

namespace sirius::sim {

double KernelSeconds(const DeviceProfile& dev, const KernelCost& cost,
                     double data_scale) {
  const double gb = 1e9;
  double t = cost.launches * dev.launch_overhead_us * 1e-6;
  double seq = static_cast<double>(cost.seq_bytes) * data_scale;
  double rnd = static_cast<double>(cost.rand_bytes) * data_scale;
  double rows = static_cast<double>(cost.rows) * data_scale;
  t += seq / (dev.mem_bw_gbps * gb);
  t += rnd / (dev.mem_bw_gbps * dev.random_access_factor * gb);
  t += rows * cost.ops_per_row / (dev.compute_geps * 1e9);
  return t;
}

double TransferSeconds(double link_gbps, uint64_t bytes, double latency_us,
                       double data_scale) {
  return latency_us * 1e-6 +
         static_cast<double>(bytes) * data_scale / (link_gbps * 1e9);
}

double EngineProfile::EffFor(OpCategory c) const {
  switch (c) {
    case OpCategory::kScan:
      return scan_eff;
    case OpCategory::kFilter:
      return filter_eff;
    case OpCategory::kProject:
      return project_eff;
    case OpCategory::kJoin:
      return join_eff;
    case OpCategory::kGroupBy:
      return groupby_eff;
    case OpCategory::kAggregate:
      return agg_eff;
    case OpCategory::kOrderBy:
      return sort_eff;
    case OpCategory::kExchange:
      return exchange_eff;
    case OpCategory::kOther:
      return 1.0;
  }
  return 1.0;
}

EngineProfile SiriusProfile() {
  EngineProfile e;
  e.name = "sirius";
  // libcudf group-by falls back to a sort path for strings; the extra cost
  // is charged directly by the kernels, not here.
  e.fixed_query_overhead_s = 0.010;  // Substrait translation + dispatch
  return e;
}

EngineProfile DuckDbProfile() {
  EngineProfile e;
  e.name = "duckdb";
  // Mature vectorized engine: beats our substrate's native efficiency
  // across the board (calibrated so the Sirius/DuckDB geomean lands near
  // the paper's 7x at equal rental cost).
  e.scan_eff = 1.5;
  e.filter_eff = 1.5;
  e.project_eff = 1.4;
  e.join_eff = 1.35;
  e.groupby_eff = 1.4;
  e.agg_eff = 1.5;
  e.sort_eff = 1.4;
  e.fixed_query_overhead_s = 0.004;
  return e;
}

EngineProfile ClickHouseProfile() {
  EngineProfile e;
  e.name = "clickhouse";
  // Excellent scan/filter/aggregate machinery...
  e.scan_eff = 2.0;
  e.filter_eff = 1.8;
  e.agg_eff = 2.0;
  e.groupby_eff = 2.0;
  // ...but "not optimized for join-heavy workloads" (§4.2): right-side
  // builds without reordering, full materialization, no semi-join rewrites,
  // and distributed joins that replicate the whole right table.
  e.join_eff = 0.22;
  e.reorder_joins = false;
  e.semi_join_rewrites = false;
  e.distributed_broadcast_joins = true;
  e.fixed_query_overhead_s = 0.008;
  return e;
}

EngineProfile DorisProfile() {
  EngineProfile e;
  e.name = "doris";
  // Calibrated against Table 2: competitive scans (Q6), weaker group-by
  // machinery (Q1), reasonable joins (Q3).
  e.scan_eff = 0.45;
  e.filter_eff = 0.6;
  e.groupby_eff = 1.1;
  e.agg_eff = 1.1;
  e.join_eff = 0.6;
  e.fixed_query_overhead_s = 0.045;  // coordinator + fragment dispatch
  return e;
}

namespace {
double TimelineNow(const void* ctx) {
  return static_cast<const Timeline*>(ctx)->total_seconds();
}
}  // namespace

obs::Clock SimContext::TraceClock() const {
  obs::Clock clock;
  if (timeline != nullptr) {
    clock.now = &TimelineNow;
    clock.ctx = timeline;
  }
  clock.base = trace_base;
  return clock;
}

void SimContext::Charge(OpCategory cat, const KernelCost& cost) const {
  if (kernel_stats != nullptr) {
    kernel_stats->launches += static_cast<uint64_t>(cost.launches);
    kernel_stats->seq_bytes += static_cast<uint64_t>(
        static_cast<double>(cost.seq_bytes) * data_scale);
    kernel_stats->rand_bytes += static_cast<uint64_t>(
        static_cast<double>(cost.rand_bytes) * data_scale);
  }
  if (timeline == nullptr) return;
  double eff = engine.EffFor(cat);
  if (eff <= 0) eff = 1.0;
  const double predicted = KernelSeconds(device, cost, data_scale);
  const double charged = predicted / eff;
  if (trace != nullptr && trace->enabled()) {
    // Tracing observes the clock but never advances it: the span endpoints
    // bracket exactly the seconds charged below, so simulated totals are
    // bit-identical with tracing on or off.
    const double start = trace_base + timeline->total_seconds();
    trace->AddComplete(track,
                       std::string("kernel:") + OpCategoryName(cat), "kernel",
                       start, start + charged,
                       {{"seq_bytes", static_cast<double>(cost.seq_bytes)},
                        {"rand_bytes", static_cast<double>(cost.rand_bytes)},
                        {"rows", static_cast<double>(cost.rows)},
                        {"launches", static_cast<double>(cost.launches)},
                        {"predicted_s", predicted},
                        {"charged_s", charged}});
  }
  timeline->Charge(cat, charged);
}

void SimContext::ChargeSeconds(OpCategory cat, double seconds) const {
  if (timeline == nullptr) return;
  timeline->Charge(cat, seconds);
}

}  // namespace sirius::sim
