#include "sim/streams.h"

#include <algorithm>

namespace sirius::sim {

StreamSet::StreamSet(Options options) : options_(options) {
  if (options_.num_streams < 1) options_.num_streams = 1;
  if (options_.solo_utilization <= 0.0 || options_.solo_utilization > 1.0) {
    options_.solo_utilization = 1.0;
  }
  free_at_.assign(static_cast<size_t>(options_.num_streams), 0.0);
}

double StreamSet::EarliestStart(double ready_s) const {
  double best = free_at_[0];
  for (double f : free_at_) best = std::min(best, f);
  return std::max(ready_s, best);
}

StreamSet::Placement StreamSet::Place(double ready_s, double solo_duration_s) {
  // Earliest-free stream; ties break to the lowest index, so placement is a
  // pure function of prior placements (deterministic replay).
  int stream = 0;
  for (int s = 1; s < num_streams(); ++s) {
    if (free_at_[s] < free_at_[stream]) stream = s;
  }
  Placement p;
  p.stream = stream;
  p.start_s = std::max(ready_s, free_at_[stream]);
  p.concurrent = BusyAt(p.start_s) + 1;
  p.slowdown = std::max(1.0, static_cast<double>(p.concurrent) *
                                 options_.solo_utilization);
  p.end_s = p.start_s + solo_duration_s * p.slowdown;
  free_at_[stream] = p.end_s;
  return p;
}

void StreamSet::Truncate(int stream, double end_s) {
  if (stream < 0 || stream >= num_streams()) return;
  free_at_[stream] = std::min(free_at_[stream], end_s);
}

int StreamSet::BusyAt(double t) const {
  int busy = 0;
  for (double f : free_at_) busy += f > t ? 1 : 0;
  return busy;
}

double StreamSet::Horizon() const {
  double h = 0;
  for (double f : free_at_) h = std::max(h, f);
  return h;
}

}  // namespace sirius::sim
