// Analytical kernel cost model.
//
// t = launches * launch_overhead
//   + seq_bytes / seq_bandwidth
//   + rand_bytes / (seq_bandwidth * random_access_factor)
//   + rows * ops_per_row / compute_throughput
//
// Data-dependent terms are multiplied by `data_scale`, which lets the suite
// run on a small TPC-H scale factor while reporting times for a larger
// modeled one; fixed terms (kernel launches) deliberately do not scale,
// which is how the model reproduces "overhead does not scale with data
// size" (paper §4.3).

#pragma once

#include <cstdint>

#include "obs/trace.h"
#include "sim/device.h"
#include "sim/timeline.h"

namespace sirius::sim {

/// \brief Resource usage of one kernel invocation, as counted by the kernel
/// itself while executing.
struct KernelCost {
  /// Streaming traffic: bytes read plus bytes written sequentially.
  uint64_t seq_bytes = 0;
  /// Random-access traffic (hash-table probes/inserts), in bytes.
  uint64_t rand_bytes = 0;
  /// Element count for the compute term.
  uint64_t rows = 0;
  /// Simple ops per element (comparisons, multiplies...).
  double ops_per_row = 1.0;
  /// Number of kernel launches (GPU) or task dispatches (CPU).
  int launches = 1;

  KernelCost& operator+=(const KernelCost& o) {
    seq_bytes += o.seq_bytes;
    rand_bytes += o.rand_bytes;
    rows += o.rows;
    ops_per_row += o.ops_per_row;  // approximation: treat as combined pass
    launches += o.launches;
    return *this;
  }
};

/// \brief Aggregated device-activity counters: kernel launches and HBM
/// traffic, accumulated by SimContext::Charge alongside the timeline.
///
/// Byte counts are modeled bytes (after `data_scale`), matching what the
/// time model charged — so a fused-vs-unfused ablation can report exactly
/// the launches and round-trip traffic the fusion skipped.
struct KernelStats {
  uint64_t launches = 0;
  uint64_t seq_bytes = 0;   ///< streaming HBM traffic (modeled)
  uint64_t rand_bytes = 0;  ///< random-access HBM traffic (modeled)

  uint64_t hbm_bytes() const { return seq_bytes + rand_bytes; }

  void Append(const KernelStats& o) {
    launches += o.launches;
    seq_bytes += o.seq_bytes;
    rand_bytes += o.rand_bytes;
  }
};

/// Modeled execution time of `cost` on `dev`, in seconds.
double KernelSeconds(const DeviceProfile& dev, const KernelCost& cost,
                     double data_scale = 1.0);

/// Modeled time to move `bytes` over a link of `link_gbps` GB/s, with a
/// fixed `latency_us` setup cost.
double TransferSeconds(double link_gbps, uint64_t bytes, double latency_us = 5.0,
                       double data_scale = 1.0);

/// \brief Per-engine efficiency knobs.
///
/// The evaluation compares engines with different *planning policies* and
/// different operator maturity on the same substrate; these multipliers
/// (applied as bandwidth/compute derating per operator class) encode the
/// operator-maturity side. 1.0 = our substrate's native efficiency.
struct EngineProfile {
  std::string name = "sirius";
  double scan_eff = 1.0;
  double filter_eff = 1.0;
  double project_eff = 1.0;
  double join_eff = 1.0;
  double groupby_eff = 1.0;
  double agg_eff = 1.0;
  double sort_eff = 1.0;
  double exchange_eff = 1.0;
  /// Cost-based join reordering (off reproduces ClickHouse's syntactic-order
  /// behaviour the paper calls out in §4.2).
  bool reorder_joins = true;
  /// IN/EXISTS -> semi/anti join rewrites available.
  bool semi_join_rewrites = true;
  /// Distributed joins replicate the entire right input to every node
  /// instead of shuffling (ClickHouse's distributed-join behaviour, which
  /// the paper's Table 2 Q3 exposes).
  bool distributed_broadcast_joins = false;
  /// Fixed per-query overhead: parse/optimize/dispatch/result return,
  /// seconds. Dominates "Other" in Table 2.
  double fixed_query_overhead_s = 0.0;

  double EffFor(OpCategory c) const;
};

/// Sirius itself: libcudf-class kernels, cost-based host plans.
EngineProfile SiriusProfile();
/// DuckDB-class CPU engine: mature vectorized operators, good optimizer.
EngineProfile DuckDbProfile();
/// ClickHouse-class engine: excellent scans, weak join planning/execution.
EngineProfile ClickHouseProfile();
/// Apache Doris-class distributed CPU engine.
EngineProfile DorisProfile();

/// \brief Everything a kernel needs to charge simulated time.
struct SimContext {
  DeviceProfile device;
  EngineProfile engine;
  Timeline* timeline = nullptr;  ///< not owned; may be null (no accounting)
  /// Multiplier applied to data-dependent cost terms (modeled SF / actual SF).
  double data_scale = 1.0;
  /// Simulated stream this kernel invocation is enqueued on.
  StreamId stream = 0;
  /// Happens-before checker for stream-ordering debug runs; not owned, may
  /// be null (no checking).
  HazardTracker* hazards = nullptr;
  /// Launch/traffic counter sink; not owned, may be null (no counting).
  KernelStats* kernel_stats = nullptr;
  /// Per-query trace sink; not owned, may be null (no tracing). Charge()
  /// emits one "kernel" span per invocation onto `track`.
  obs::TraceRecorder* trace = nullptr;
  /// Trace lane for this context (one per simulated stream/node).
  obs::TrackId track = 0;
  /// Offset of this context's (local, zero-based) timeline into the
  /// query-global simulated time axis.
  double trace_base = 0.0;

  /// Current position on the query-global simulated time axis.
  double TraceNow() const {
    return trace_base + (timeline != nullptr ? timeline->total_seconds() : 0.0);
  }
  /// Clock stamping obs::Span guards from this context's timeline.
  obs::Clock TraceClock() const;

  /// Charges `cost` (derated by the engine's efficiency for `cat`) to the
  /// timeline. Safe to call with a null timeline.
  void Charge(OpCategory cat, const KernelCost& cost) const;
  /// Charges raw pre-computed seconds.
  void ChargeSeconds(OpCategory cat, double seconds) const;

  /// Declares a kernel-side read/write of a tracked resource on this
  /// context's stream. Safe to call with a null tracker.
  void NoteRead(uint64_t resource, const std::string& what = "") const {
    if (hazards != nullptr) hazards->OnRead(stream, resource, what);
  }
  void NoteWrite(uint64_t resource, const std::string& what = "") const {
    if (hazards != nullptr) hazards->OnWrite(stream, resource, what);
  }
};

}  // namespace sirius::sim
