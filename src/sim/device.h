// Simulated execution devices.
//
// This machine has no GPU, so the reproduction models devices analytically:
// kernels execute for real on the host, while *reported* time comes from a
// calibrated cost model over the device profiles below (see DESIGN.md §1,
// "Simulated-time methodology"). Profiles are calibrated from Table 1 and
// §4.1 of the paper.

#pragma once

#include <cstdint>
#include <string>

#include "sim/timeline.h"

namespace sirius::sim {

enum class DeviceKind { kCpu, kGpu };

/// \brief Static description of an execution device.
///
/// Bandwidth figures are effective (achievable) rather than peak where the
/// distinction matters; `random_access_factor` discounts bandwidth for
/// pointer-chasing access patterns (hash probes), which is where HBM's high
/// internal parallelism gives GPUs an outsized advantage.
struct DeviceProfile {
  std::string name;
  DeviceKind kind = DeviceKind::kCpu;
  /// CPU: vCPUs; GPU: CUDA cores. Only used for compute-bound terms.
  int cores = 1;
  /// Sequential memory bandwidth, GB/s.
  double mem_bw_gbps = 100.0;
  /// Fraction of sequential bandwidth achieved on random access.
  double random_access_factor = 0.25;
  /// Device memory capacity in GiB.
  double mem_capacity_gib = 64.0;
  /// Fixed cost to launch one kernel / dispatch one morsel, microseconds.
  double launch_overhead_us = 0.5;
  /// Aggregate simple-op throughput, billion elements per second. Captures
  /// the compute side (ALU + issue) for expression-heavy kernels.
  double compute_geps = 50.0;
  /// Host link (CPU<->device) bandwidth, GB/s, one direction.
  double host_link_gbps = 25.0;
  /// On-demand rental price, $/hour (Table 1).
  double price_per_hour = 1.0;

  bool is_gpu() const { return kind == DeviceKind::kGpu; }
};

/// \name Calibrated device profiles used throughout the evaluation (§4.1).
/// @{

/// NVIDIA GH200: Hopper GPU, 92 GiB HBM3 @ 3 TB/s, NVLink-C2C to Grace.
DeviceProfile Gh200Gpu();
/// Grace CPU of the GH200 superchip: 72 Neoverse cores, LPDDR5X.
DeviceProfile GraceCpu();
/// NVIDIA A100 40 GiB: 1.55 TB/s HBM, PCIe4 host link (distributed cluster).
DeviceProfile A100Gpu();
/// Intel Xeon Gold 6526Y node CPU of the A100 cluster (64 cores).
DeviceProfile XeonGold6526Y();
/// AWS m7i.16xlarge (64 vCPU Sapphire Rapids) — DuckDB/ClickHouse host,
/// chosen by the paper for equal $3.2/h rental cost with the GH200.
DeviceProfile M7i16xlarge();
/// AWS c6a.metal (192 vCPU AMD EPYC) — the CPU column of Table 1.
DeviceProfile C6aMetal();
/// @}

/// Looks up a profile by name ("GH200", "A100", "m7i.16xlarge", ...).
/// Returns GH200 for unknown names.
DeviceProfile ProfileByName(const std::string& name);

/// \name Device-model race checking.
///
/// The simulated device executes kernels on the host thread pool; these hooks
/// give every component one shared happens-before checker for the streams and
/// events of that device model (engine pipelines, out-of-core batches, ...).
/// @{

/// Process-wide hazard tracker for the simulated device. Created on first
/// use; enabled automatically when SIRIUS_RACE_CHECK=1 is in the environment.
HazardTracker& DeviceHazardTracker();

/// True when the SIRIUS_RACE_CHECK environment variable requests checking.
bool RaceCheckRequestedByEnv();
/// @}

}  // namespace sirius::sim
