#include "sim/device.h"

#include <cstdlib>

namespace sirius::sim {

DeviceProfile Gh200Gpu() {
  DeviceProfile p;
  p.name = "GH200-Hopper";
  p.kind = DeviceKind::kGpu;
  p.cores = 16896;
  p.mem_bw_gbps = 3000.0;
  p.random_access_factor = 0.28;  // HBM3 hides random-access latency well
  p.mem_capacity_gib = 92.0;
  p.launch_overhead_us = 6.0;
  p.compute_geps = 750.0;
  p.host_link_gbps = 450.0;  // NVLink-C2C, per direction
  p.price_per_hour = 3.2;    // Lambda Labs on-demand (Table 1)
  return p;
}

DeviceProfile GraceCpu() {
  DeviceProfile p;
  p.name = "Grace-CPU";
  p.kind = DeviceKind::kCpu;
  p.cores = 72;
  p.mem_bw_gbps = 450.0;  // LPDDR5X, §4.1: 480 GB memory
  p.random_access_factor = 0.15;
  p.mem_capacity_gib = 480.0;
  p.launch_overhead_us = 0.5;
  p.compute_geps = 70.0;
  p.host_link_gbps = 450.0;
  p.price_per_hour = 3.2;  // part of the same GH200 instance
  return p;
}

DeviceProfile A100Gpu() {
  DeviceProfile p;
  p.name = "A100-40GB";
  p.kind = DeviceKind::kGpu;
  p.cores = 6912;
  p.mem_bw_gbps = 1550.0;
  p.random_access_factor = 0.35;
  p.mem_capacity_gib = 40.0;
  p.launch_overhead_us = 6.0;
  p.compute_geps = 500.0;
  p.host_link_gbps = 12.8;  // PCIe4 x16, per direction (§4.1: 25.6 bidir)
  p.price_per_hour = 2.3;
  return p;
}

DeviceProfile XeonGold6526Y() {
  DeviceProfile p;
  p.name = "Xeon-Gold-6526Y";
  p.kind = DeviceKind::kCpu;
  p.cores = 64;
  p.mem_bw_gbps = 250.0;
  p.random_access_factor = 0.12;
  p.mem_capacity_gib = 512.0;
  p.launch_overhead_us = 0.5;
  p.compute_geps = 60.0;
  p.host_link_gbps = 12.8;
  p.price_per_hour = 2.0;
  return p;
}

DeviceProfile M7i16xlarge() {
  DeviceProfile p;
  p.name = "m7i.16xlarge";
  p.kind = DeviceKind::kCpu;
  p.cores = 64;
  p.mem_bw_gbps = 300.0;
  p.random_access_factor = 0.12;
  p.mem_capacity_gib = 256.0;
  p.launch_overhead_us = 0.5;
  p.compute_geps = 60.0;
  p.host_link_gbps = 16.0;
  p.price_per_hour = 3.2;  // equal-cost pairing used in §4.2
  return p;
}

DeviceProfile C6aMetal() {
  DeviceProfile p;
  p.name = "c6a.metal";
  p.kind = DeviceKind::kCpu;
  p.cores = 192;
  p.mem_bw_gbps = 400.0;
  p.random_access_factor = 0.12;
  p.mem_capacity_gib = 384.0;
  p.launch_overhead_us = 0.5;
  p.compute_geps = 150.0;
  p.host_link_gbps = 16.0;
  p.price_per_hour = 7.344;  // AWS on-demand (Table 1)
  return p;
}

DeviceProfile ProfileByName(const std::string& name) {
  if (name == "GH200" || name == "GH200-Hopper") return Gh200Gpu();
  if (name == "Grace" || name == "Grace-CPU") return GraceCpu();
  if (name == "A100" || name == "A100-40GB") return A100Gpu();
  if (name == "Xeon" || name == "Xeon-Gold-6526Y") return XeonGold6526Y();
  if (name == "m7i" || name == "m7i.16xlarge") return M7i16xlarge();
  if (name == "c6a" || name == "c6a.metal") return C6aMetal();
  return Gh200Gpu();
}

bool RaceCheckRequestedByEnv() {
  const char* v = std::getenv("SIRIUS_RACE_CHECK");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

HazardTracker& DeviceHazardTracker() {
  static HazardTracker* tracker = [] {
    auto* t = new HazardTracker();  // sirius-lint: allow(raw-new-delete): leaked singleton
    t->set_enabled(RaceCheckRequestedByEnv());
    return t;
  }();
  return *tracker;
}

}  // namespace sirius::sim
