#include "sim/timeline.h"

#include <algorithm>

namespace sirius::sim {

const char* OpCategoryName(OpCategory c) {
  switch (c) {
    case OpCategory::kScan:
      return "scan";
    case OpCategory::kFilter:
      return "filter";
    case OpCategory::kProject:
      return "project";
    case OpCategory::kJoin:
      return "join";
    case OpCategory::kGroupBy:
      return "groupby";
    case OpCategory::kAggregate:
      return "aggregate";
    case OpCategory::kOrderBy:
      return "orderby";
    case OpCategory::kExchange:
      return "exchange";
    case OpCategory::kOther:
      return "other";
  }
  return "?";
}

void Timeline::Charge(OpCategory category, double seconds) {
  if (seconds <= 0) return;
  total_ += seconds;
  by_category_[category] += seconds;
}

void Timeline::AdvanceTo(double t_seconds) {
  if (t_seconds > total_) {
    by_category_[OpCategory::kExchange] += t_seconds - total_;
    total_ = t_seconds;
  }
}

double Timeline::seconds(OpCategory category) const {
  auto it = by_category_.find(category);
  return it == by_category_.end() ? 0.0 : it->second;
}

void Timeline::Reset() {
  total_ = 0.0;
  by_category_.clear();
}

void Timeline::Append(const Timeline& other) {
  total_ += other.total_;
  for (const auto& [cat, secs] : other.by_category_) by_category_[cat] += secs;
}

}  // namespace sirius::sim
