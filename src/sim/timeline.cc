#include "sim/timeline.h"

#include <algorithm>
#include <atomic>

#include "common/status.h"

namespace sirius::sim {

const char* OpCategoryName(OpCategory c) {
  switch (c) {
    case OpCategory::kScan:
      return "scan";
    case OpCategory::kFilter:
      return "filter";
    case OpCategory::kProject:
      return "project";
    case OpCategory::kJoin:
      return "join";
    case OpCategory::kGroupBy:
      return "groupby";
    case OpCategory::kAggregate:
      return "aggregate";
    case OpCategory::kOrderBy:
      return "orderby";
    case OpCategory::kExchange:
      return "exchange";
    case OpCategory::kOther:
      return "other";
  }
  return "?";
}

void Timeline::Charge(OpCategory category, double seconds) {
  if (seconds <= 0) return;
  total_ += seconds;
  by_category_[category] += seconds;
}

void Timeline::AdvanceTo(double t_seconds) {
  if (t_seconds > total_) {
    by_category_[OpCategory::kExchange] += t_seconds - total_;
    total_ = t_seconds;
  }
}

double Timeline::seconds(OpCategory category) const {
  auto it = by_category_.find(category);
  return it == by_category_.end() ? 0.0 : it->second;
}

void Timeline::Reset() {
  total_ = 0.0;
  by_category_.clear();
}

void Timeline::Append(const Timeline& other) {
  total_ += other.total_;
  for (const auto& [cat, secs] : other.by_category_) by_category_[cat] += secs;
}

const char* HazardViolationKindName(HazardTracker::ViolationKind kind) {
  switch (kind) {
    case HazardTracker::ViolationKind::kWriteWriteRace:
      return "write-write race";
    case HazardTracker::ViolationKind::kReadWriteRace:
      return "read-write race";
    case HazardTracker::ViolationKind::kWriteReadRace:
      return "write-read race";
    case HazardTracker::ViolationKind::kInvalidStream:
      return "invalid stream";
    case HazardTracker::ViolationKind::kInvalidEvent:
      return "invalid event";
  }
  return "?";
}

namespace {
std::atomic<uint64_t> g_next_tracker_id{1};
}  // namespace

HazardTracker::HazardTracker() : id_(g_next_tracker_id.fetch_add(1)) {}

void HazardTracker::set_enabled(bool enabled) {
  std::unique_lock<std::mutex> lock(mu_);
  enabled_ = enabled;
}

bool HazardTracker::enabled() const {
  std::unique_lock<std::mutex> lock(mu_);
  return enabled_;
}

void HazardTracker::set_abort_on_violation(bool abort_on_violation) {
  std::unique_lock<std::mutex> lock(mu_);
  abort_on_violation_ = abort_on_violation;
}

bool HazardTracker::HappensBefore(const Epoch& e, const Clock& clock) {
  if (e.stream < 0) return true;  // no prior access
  const size_t s = static_cast<size_t>(e.stream);
  return s < clock.size() && clock[s] >= e.at;
}

std::string HazardTracker::StreamName(StreamId s) const {
  if (s < 0 || static_cast<size_t>(s) >= streams_.size()) {
    return "stream#" + std::to_string(s);
  }
  const std::string& n = streams_[static_cast<size_t>(s)].name;
  return n.empty() ? "stream#" + std::to_string(s) : n;
}

void HazardTracker::Report(std::unique_lock<std::mutex>& lock, Violation v) {
  std::string msg = std::string("HazardTracker: ") +
                    HazardViolationKindName(v.kind) + " on resource " +
                    std::to_string(v.resource) + " between " +
                    StreamName(v.first) + " and " + StreamName(v.second) +
                    (v.detail.empty() ? "" : ": " + v.detail);
  violations_.push_back(std::move(v));
  if (abort_on_violation_) {
    lock.unlock();
    internal::AbortWithMessage(__FILE__, __LINE__, msg);
  }
}

bool HazardTracker::CheckStream(std::unique_lock<std::mutex>& lock,
                                StreamId stream, const char* op) {
  if (stream >= 0 && static_cast<size_t>(stream) < streams_.size()) return true;
  Violation v;
  v.kind = ViolationKind::kInvalidStream;
  v.second = stream;
  v.detail = std::string(op) + " on stream id " + std::to_string(stream) +
             " that was never created";
  Report(lock, std::move(v));
  return false;
}

StreamId HazardTracker::CreateStream(const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  streams_.push_back({name, Clock{}});
  return static_cast<StreamId>(streams_.size() - 1);
}

EventId HazardTracker::RecordEvent(StreamId stream) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!enabled_) return -1;
  if (!CheckStream(lock, stream, "RecordEvent")) return -1;
  StreamState& st = streams_[static_cast<size_t>(stream)];
  // Recording is itself a step in the stream's local order, so later waiters
  // are ordered after every kernel submitted before the record.
  if (st.clock.size() <= static_cast<size_t>(stream)) {
    st.clock.resize(static_cast<size_t>(stream) + 1, 0);
  }
  ++st.clock[static_cast<size_t>(stream)];
  events_.push_back({stream, st.clock[static_cast<size_t>(stream)], ""});
  event_clocks_.push_back(st.clock);
  return static_cast<EventId>(events_.size() - 1);
}

void HazardTracker::StreamWaitEvent(StreamId stream, EventId event) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!enabled_) return;
  if (!CheckStream(lock, stream, "StreamWaitEvent")) return;
  if (event < 0 || static_cast<size_t>(event) >= events_.size()) {
    Violation v;
    v.kind = ViolationKind::kInvalidEvent;
    v.second = stream;
    v.detail = "wait on event id " + std::to_string(event) +
               " that was never recorded";
    Report(lock, std::move(v));
    return;
  }
  Clock& mine = streams_[static_cast<size_t>(stream)].clock;
  const Clock& theirs = event_clocks_[static_cast<size_t>(event)];
  if (mine.size() < theirs.size()) mine.resize(theirs.size(), 0);
  for (size_t i = 0; i < theirs.size(); ++i) {
    mine[i] = std::max(mine[i], theirs[i]);
  }
}

void HazardTracker::OnAccess(StreamId stream, uint64_t resource, bool is_write,
                             const std::string& what) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!enabled_) return;
  if (!CheckStream(lock, stream, "OnAccess")) return;
  StreamState& st = streams_[static_cast<size_t>(stream)];
  if (st.clock.size() <= static_cast<size_t>(stream)) {
    st.clock.resize(static_cast<size_t>(stream) + 1, 0);
  }
  const uint64_t now = ++st.clock[static_cast<size_t>(stream)];
  ResourceState& rs = resources_[resource];

  auto conflict = [&](ViolationKind kind, const Epoch& prior) {
    Violation v;
    v.kind = kind;
    v.resource = resource;
    v.first = prior.stream;
    v.second = stream;
    v.detail = "prior access \"" + prior.what + "\" is unordered with \"" +
               what + "\" (no event edge between the streams)";
    Report(lock, std::move(v));
  };

  if (is_write) {
    // A write must be ordered after the previous write and after every read
    // since that write.
    if (rs.last_write.stream != stream &&
        !HappensBefore(rs.last_write, st.clock)) {
      conflict(ViolationKind::kWriteWriteRace, rs.last_write);
    }
    for (const Epoch& r : rs.reads) {
      if (r.stream != stream && !HappensBefore(r, st.clock)) {
        conflict(ViolationKind::kReadWriteRace, r);
        break;
      }
    }
    rs.last_write = {stream, now, what};
    rs.reads.clear();
  } else {
    // A read only conflicts with the previous write.
    if (rs.last_write.stream != stream &&
        !HappensBefore(rs.last_write, st.clock)) {
      conflict(ViolationKind::kWriteReadRace, rs.last_write);
    }
    // Keep one read epoch per stream (the latest dominates earlier ones).
    for (Epoch& r : rs.reads) {
      if (r.stream == stream) {
        r.at = now;
        r.what = what;
        return;
      }
    }
    rs.reads.push_back({stream, now, what});
  }
}

void HazardTracker::ReleaseResource(uint64_t resource) {
  std::unique_lock<std::mutex> lock(mu_);
  resources_.erase(resource);
}

size_t HazardTracker::violation_count() const {
  std::unique_lock<std::mutex> lock(mu_);
  return violations_.size();
}

std::vector<HazardTracker::Violation> HazardTracker::violations() const {
  std::unique_lock<std::mutex> lock(mu_);
  return violations_;
}

void HazardTracker::Reset() {
  std::unique_lock<std::mutex> lock(mu_);
  streams_.assign(1, {std::string("default"), Clock{}});
  events_.clear();
  event_clocks_.clear();
  resources_.clear();
  violations_.clear();
}

}  // namespace sirius::sim
