// A group of simulated devices joined by an interconnect fabric.
//
// DeviceGroup is the multi-GPU substrate for the serving layer (the
// bench_ablation_multi_gpu model: N A100/GH200-class devices inside one
// node, exchanged over NVLink). Each device carries its own StreamSet —
// stream arbitration and the contention model never cross devices — and the
// fabric link prices data movement between devices (a tenant's warm inputs
// migrating to a spill target).
//
// Devices can be *lost* (chaos: "serve.place" device-loss injection). A lost
// device stops accepting placements — EarliestStart reports +infinity — and
// stays lost for the lifetime of the group; the serving layer re-admits its
// queued work onto survivors.
//
// Not internally synchronized: like StreamSet, decisions must be made in
// simulated-time order, so the owner (serve::QueryServer) serializes.

#pragma once

#include <cstdint>
#include <vector>

#include "sim/interconnect.h"
#include "sim/streams.h"

namespace sirius::sim {

/// \brief N simulated devices, each with its own StreamSet, joined by links.
class DeviceGroup {
 public:
  struct Options {
    /// Devices in the group (>= 1).
    int num_devices = 1;
    /// Per-device stream configuration (replicated across devices).
    StreamSet::Options streams;
    /// Device-to-device link (all pairs; intra-node fabric).
    Link fabric = NvlinkC2c();
  };

  explicit DeviceGroup(Options options);

  int num_devices() const { return static_cast<int>(devices_.size()); }
  /// Devices not lost.
  int alive_devices() const;
  bool lost(int device) const;
  /// Marks `device` lost. Idempotent; out-of-range ignored.
  void MarkLost(int device);

  StreamSet& streams(int device) { return devices_[static_cast<size_t>(device)]; }
  const StreamSet& streams(int device) const {
    return devices_[static_cast<size_t>(device)];
  }

  /// Earliest start a dispatch at/after `ready_s` would get on `device`;
  /// +infinity for a lost (or out-of-range) device.
  double EarliestStart(int device, double ready_s) const;

  /// Seconds to move `bytes` between two devices over the fabric.
  double MigrateSeconds(uint64_t bytes) const;

  /// Busy streams at `t` on one device (0 for a lost device).
  int BusyAt(int device, double t) const;
  /// Busy streams at `t` summed over alive devices.
  int BusyAt(double t) const;
  /// Latest occupancy end across all alive devices.
  double Horizon() const;

  const Link& fabric() const { return options_.fabric; }
  int streams_per_device() const { return devices_[0].num_streams(); }

 private:
  Options options_;
  std::vector<StreamSet> devices_;
  std::vector<bool> lost_;
};

}  // namespace sirius::sim
