#include "sim/device_group.h"

#include <algorithm>
#include <limits>

namespace sirius::sim {

DeviceGroup::DeviceGroup(Options options) : options_(options) {
  if (options_.num_devices < 1) options_.num_devices = 1;
  devices_.reserve(static_cast<size_t>(options_.num_devices));
  for (int d = 0; d < options_.num_devices; ++d) {
    devices_.emplace_back(options_.streams);
  }
  lost_.assign(devices_.size(), false);
}

int DeviceGroup::alive_devices() const {
  int alive = 0;
  for (bool l : lost_) alive += l ? 0 : 1;
  return alive;
}

bool DeviceGroup::lost(int device) const {
  if (device < 0 || device >= num_devices()) return true;
  return lost_[static_cast<size_t>(device)];
}

void DeviceGroup::MarkLost(int device) {
  if (device < 0 || device >= num_devices()) return;
  lost_[static_cast<size_t>(device)] = true;
}

double DeviceGroup::EarliestStart(int device, double ready_s) const {
  if (lost(device)) return std::numeric_limits<double>::infinity();
  return devices_[static_cast<size_t>(device)].EarliestStart(ready_s);
}

double DeviceGroup::MigrateSeconds(uint64_t bytes) const {
  return options_.fabric.TransferSeconds(bytes);
}

int DeviceGroup::BusyAt(int device, double t) const {
  if (lost(device)) return 0;
  return devices_[static_cast<size_t>(device)].BusyAt(t);
}

int DeviceGroup::BusyAt(double t) const {
  int busy = 0;
  for (int d = 0; d < num_devices(); ++d) busy += BusyAt(d, t);
  return busy;
}

double DeviceGroup::Horizon() const {
  double h = 0;
  for (int d = 0; d < num_devices(); ++d) {
    if (lost_[static_cast<size_t>(d)]) continue;
    h = std::max(h, devices_[static_cast<size_t>(d)].Horizon());
  }
  return h;
}

}  // namespace sirius::sim
