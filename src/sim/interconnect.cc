#include "sim/interconnect.h"

#include "sim/cost_model.h"

namespace sirius::sim {

double Link::TransferSeconds(uint64_t bytes, double data_scale) const {
  return sim::TransferSeconds(bandwidth_gbps, bytes, latency_us, data_scale);
}

Link Pcie3x16() { return {"PCIe3 x16", 16.0, 5.0}; }
Link Pcie4x16() { return {"PCIe4 x16", 32.0, 5.0}; }
Link Pcie4A100() { return {"PCIe4 (A100 cluster)", 12.8, 5.0}; }
Link Pcie5x16() { return {"PCIe5 x16", 64.0, 5.0}; }
Link Pcie6x16() { return {"PCIe6 x16", 128.0, 5.0}; }
Link NvlinkC2c() { return {"NVLink-C2C", 450.0, 2.0}; }
Link NvmeGen4() { return {"NVMe Gen4", 6.5, 100.0}; }
Link Infiniband400() { return {"InfiniBand 4xNDR", 24.0, 8.0}; }  // ~50% NCCL efficiency of 400 Gbps
Link Ethernet100() { return {"100 GbE", 12.5, 15.0}; }

std::vector<Link> AllHostLinks() {
  return {Pcie3x16(), Pcie4x16(), Pcie5x16(), Pcie6x16(), NvlinkC2c()};
}

}  // namespace sirius::sim
