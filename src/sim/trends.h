// Hardware-trend tables behind Figure 1 of the paper.
//
// Each series is (year, value) points reconstructed from the generations
// named in §2.1: GPU device-memory capacity, CPU<->GPU interconnect
// bandwidth, NVMe storage bandwidth, and datacenter network bandwidth.

#pragma once

#include <string>
#include <vector>

namespace sirius::sim {

/// One point of a hardware trend series.
struct TrendPoint {
  int year;
  std::string label;  ///< generation / product name
  double value;
};

/// A named trend series with a unit.
struct TrendSeries {
  std::string name;
  std::string unit;
  std::vector<TrendPoint> points;

  /// Compound annual growth rate computed from first to last point.
  double Cagr() const;
  /// Doubling period in years implied by the CAGR.
  double DoublingYears() const;
};

/// Figure 1a: GPU device memory capacity by generation (GB).
TrendSeries GpuMemoryTrend();
/// Figure 1b: CPU<->GPU interconnect bandwidth (GB/s, one direction).
TrendSeries InterconnectTrend();
/// Figure 1c: storage (NVMe per-device) bandwidth (GB/s).
TrendSeries StorageTrend();
/// Figure 1d: datacenter network bandwidth (Gbps per port).
TrendSeries NetworkTrend();

/// All four Figure 1 panels.
std::vector<TrendSeries> AllTrends();

}  // namespace sirius::sim
