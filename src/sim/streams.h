// Concurrent stream timeline arbitration for the simulated device.
//
// A StreamSet models a fixed number of device streams (in-order lanes, CUDA
// style) that independent queries are multiplexed onto. Each dispatch picks
// the earliest-free stream and occupies it for the query's modeled duration,
// inflated by a contention factor when several streams are busy at once.
//
// The contention model follows the paper's observation that a single
// analytical query leaves the device underutilized (small intermediates,
// launch gaps, host-link stalls): one query alone achieves only
// `solo_utilization` of the device, so up to ~1/solo_utilization queries
// overlap with no slowdown; beyond that point the device saturates and every
// resident query stretches proportionally. Aggregate throughput is capped at
// 1/solo_utilization times the serial rate — overlap pays exactly while
// spare device capacity exists and never invents capacity past saturation.
//
// Not internally synchronized: arbitration decisions must be made in
// simulated-time order, so the owner (serve::QueryServer) serializes access.

#pragma once

#include <vector>

namespace sirius::sim {

/// \brief Earliest-free-stream scheduler over modeled device streams.
class StreamSet {
 public:
  struct Options {
    /// Concurrent device lanes (queries resident at once).
    int num_streams = 8;
    /// Device utilization of one query running alone, in (0, 1]. 1.0 means
    /// a single query saturates the device and overlap buys nothing.
    double solo_utilization = 0.45;
  };

  /// One placement decision: where a query ran and how contention
  /// stretched it.
  struct Placement {
    int stream = 0;
    double start_s = 0;     ///< max(ready time, stream free time)
    double end_s = 0;       ///< start + solo duration * slowdown
    double slowdown = 1.0;  ///< contention stretch factor, >= 1
    int concurrent = 1;     ///< streams busy at start (this one included)
  };

  explicit StreamSet(Options options);

  /// Earliest start a dispatch at/after `ready_s` would get.
  double EarliestStart(double ready_s) const;

  /// Places a query of solo duration `solo_duration_s` onto the
  /// earliest-free stream, not before `ready_s`, and occupies it.
  Placement Place(double ready_s, double solo_duration_s);

  /// Frees `stream` at `end_s` if it is currently busy past that point
  /// (deadline cancellation: the cancelled query stops charging the lane).
  void Truncate(int stream, double end_s);

  /// Streams whose occupancy extends past `t`.
  int BusyAt(double t) const;

  int num_streams() const { return static_cast<int>(free_at_.size()); }
  double solo_utilization() const { return options_.solo_utilization; }
  /// Latest occupancy end across all streams (the device-busy horizon).
  double Horizon() const;

 private:
  Options options_;
  std::vector<double> free_at_;  ///< per-stream occupancy end
};

}  // namespace sirius::sim
