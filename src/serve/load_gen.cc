#include "serve/load_gen.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/hash.h"
#include "ssb/queries.h"
#include "tpch/queries.h"

namespace sirius::serve {

namespace {

// 53 high bits -> [0, 1); bit-exact across platforms, unlike the
// implementation-defined std::*_distribution adapters.
double UniformFrom(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

}  // namespace

std::vector<OpenLoopArrival> GenerateOpenLoopArrivals(
    const LoadOptions& options, double start_s, std::mt19937_64* rng) {
  const size_t num_clients =
      static_cast<size_t>(std::max(1, options.num_clients));
  std::vector<std::string> tenants = options.tenants;
  if (tenants.empty()) tenants = {"default"};

  // Client slots whose tenant is NOT rate-overridden form the base stream;
  // each override tenant gets its own stream over its own slots.
  std::vector<size_t> base_clients;
  std::map<std::string, std::vector<size_t>> override_clients;
  for (size_t i = 0; i < num_clients; ++i) {
    const std::string& tenant = tenants[i % tenants.size()];
    if (options.tenant_arrival_rate_qps.count(tenant) > 0) {
      override_clients[tenant].push_back(i);
    } else {
      base_clients.push_back(i);
    }
  }
  // With no overrides every client is a base client and the loop below is
  // the legacy one: the caller's rng is consumed identically, arrival for
  // arrival, so existing seeds keep their exact schedules.
  std::vector<OpenLoopArrival> arrivals;
  if (!base_clients.empty()) {
    const double rate = std::max(options.arrival_rate_qps, 1e-9);
    double t = start_s;
    size_t rr = 0;
    while (true) {
      t += -std::log(1.0 - UniformFrom(*rng)) / rate;
      if (t >= start_s + options.duration_s) break;
      arrivals.push_back(OpenLoopArrival{t, base_clients[rr]});
      rr = (rr + 1) % base_clients.size();
    }
  }
  for (const auto& [tenant, qps] : options.tenant_arrival_rate_qps) {
    const auto it = override_clients.find(tenant);
    if (it == override_clients.end()) continue;  // tenant has no client slot
    std::mt19937_64 derived(HashCombine(options.seed, HashString(tenant)));
    const double rate = std::max(qps, 1e-9);
    double t = start_s;
    size_t rr = 0;
    while (true) {
      t += -std::log(1.0 - UniformFrom(derived)) / rate;
      if (t >= start_s + options.duration_s) break;
      arrivals.push_back(OpenLoopArrival{t, it->second[rr]});
      rr = (rr + 1) % it->second.size();
    }
  }
  return arrivals;
}

double Percentile(const std::vector<double>& sorted_values, double p) {
  if (sorted_values.empty()) return 0;
  const double rank = p / 100.0 * static_cast<double>(sorted_values.size());
  size_t idx = static_cast<size_t>(std::ceil(rank));
  idx = std::min(std::max<size_t>(idx, 1), sorted_values.size()) - 1;
  return sorted_values[idx];
}

LoadGenerator::LoadGenerator(QueryService* server, LoadOptions options)
    : server_(server), options_(std::move(options)), rng_(options_.seed) {
  if (options_.tenants.empty()) options_.tenants = {"default"};
  if (options_.query_mix.empty()) options_.query_mix = {1};
}

double LoadGenerator::Uniform() { return UniformFrom(rng_); }

const std::string& LoadGenerator::PickSql(const std::string& tenant) {
  const auto it = options_.tenant_mix.find(tenant);
  if (it != options_.tenant_mix.end() && !it->second.empty()) {
    const QueryRef& ref = it->second[rng_() % it->second.size()];
    return ref.family == Workload::kSsb ? ssb::Query(ref.query)
                                        : tpch::Query(ref.query);
  }
  const size_t i = static_cast<size_t>(rng_() % options_.query_mix.size());
  return tpch::Query(options_.query_mix[i]);
}

namespace {

struct ClientState {
  SessionId session = 0;
  std::string tenant;
  double next_s = 0;   ///< next submit time
  int remaining = 0;   ///< queries left to complete/abandon
  int retries_left = 0;
  bool outstanding = false;  ///< closed loop: a query is in flight
  QueryId in_flight = 0;
};

struct PendingOutcome {
  QueryId id = 0;
};

void Record(const QueryOutcome& out, LoadReport* report) {
  switch (out.state) {
    case QueryState::kCompleted: {
      ++report->completed;
      if (out.cache_hit) ++report->cache_hits;
      const double latency_ms = out.latency_s() * 1e3;
      report->latencies_ms.push_back(latency_ms);
      const double exec_s =
          out.cache_hit ? 0 : (out.finish_s - out.dispatch_s);
      report->total_exec_s += exec_s;
      report->tenant_exec_s[out.tenant] += exec_s;
      ++report->tenant_completed[out.tenant];
      break;
    }
    case QueryState::kTimedOut:
      ++report->timed_out;
      break;
    case QueryState::kFailed:
      ++report->failed;
      break;
    case QueryState::kShed:
      // Terminal shed of an *admitted* query: a device loss requeued it and
      // no survivor pool could carry the reservation.
      ++report->requeue_shed;
      break;
    default:
      break;
  }
}

void FinishReport(double first_arrival, double last_finish,
                  LoadReport* report) {
  std::sort(report->latencies_ms.begin(), report->latencies_ms.end());
  report->makespan_s = std::max(last_finish - first_arrival, 0.0);
  if (report->makespan_s > 0) {
    report->qps =
        static_cast<double>(report->completed) / report->makespan_s;
  }
  if (!report->latencies_ms.empty()) {
    double sum = 0;
    for (double v : report->latencies_ms) sum += v;
    report->mean_ms = sum / static_cast<double>(report->latencies_ms.size());
    report->p50_ms = Percentile(report->latencies_ms, 50);
    report->p95_ms = Percentile(report->latencies_ms, 95);
    report->p99_ms = Percentile(report->latencies_ms, 99);
    report->max_ms = report->latencies_ms.back();
  }
}

}  // namespace

Result<LoadReport> LoadGenerator::Run() {
  LoadReport report;
  SubmitOptions sub;
  sub.timeout_s = options_.timeout_s;
  sub.reservation_bytes = options_.reservation_bytes;
  sub.bypass_cache = options_.bypass_cache;

  double first_arrival = std::numeric_limits<double>::infinity();
  double last_finish = 0;

  if (!options_.open_loop) {
    // Closed loop: one outstanding query per client; the next submit waits
    // for the previous completion plus think time. Submits and dispatch
    // decisions interleave in global simulated-time order — a submit due
    // before the server's next dispatch must land first, so the fair
    // scheduler arbitrates over everything actually queued at each decision
    // point (and real executions genuinely overlap on the worker pool).
    std::vector<ClientState> clients(
        static_cast<size_t>(std::max(1, options_.num_clients)));
    for (size_t i = 0; i < clients.size(); ++i) {
      clients[i].tenant = options_.tenants[i % options_.tenants.size()];
      clients[i].session = server_->OpenSession(clients[i].tenant);
      clients[i].next_s = server_->now_s();
      clients[i].remaining = options_.queries_per_client;
      clients[i].retries_left = options_.max_retries;
    }
    // Collects finished in-flight queries and schedules their clients.
    auto harvest = [&]() -> Status {
      for (auto& c : clients) {
        if (!c.outstanding) continue;
        SIRIUS_ASSIGN_OR_RETURN(QueryOutcome out, server_->Peek(c.in_flight));
        if (!out.terminal()) continue;
        Record(out, &report);
        last_finish = std::max(last_finish, out.finish_s);
        c.outstanding = false;
        --c.remaining;
        c.retries_left = options_.max_retries;
        c.next_s = out.finish_s + options_.think_time_s;
      }
      return Status::OK();
    };
    for (;;) {
      SIRIUS_RETURN_NOT_OK(harvest());
      ClientState* next = nullptr;
      for (auto& c : clients) {
        if (c.outstanding || c.remaining <= 0) continue;
        if (next == nullptr || c.next_s < next->next_s) next = &c;
      }
      const double next_dispatch = server_->NextDispatchTime();
      if (next != nullptr && next->next_s <= next_dispatch) {
        SubmitOptions per = sub;
        per.arrival_s = next->next_s;
        per.priority = Uniform() < options_.interactive_fraction ? 1 : 0;
        const std::string& sql = PickSql(next->tenant);
        ++report.submitted;
        first_arrival = std::min(first_arrival, next->next_s);
        auto submitted = server_->Submit(next->session, sql, per);
        if (!submitted.ok()) {
          if (!submitted.status().IsResourceExhausted()) {
            return submitted.status();
          }
          ++report.shed;
          const double hint =
              std::max(RetryAfterHint(submitted.status()), 1e-3);
          if (next->retries_left > 0) {
            --next->retries_left;
            ++report.retries;
            next->next_s += hint;
          } else {
            ++report.abandoned;
            --next->remaining;
            next->retries_left = options_.max_retries;
            next->next_s += hint;
          }
        } else {
          next->outstanding = true;
          next->in_flight = submitted.ValueOrDie();
        }
      } else if (std::isfinite(next_dispatch)) {
        SIRIUS_ASSIGN_OR_RETURN(QueryOutcome stepped, server_->Step());
        (void)stepped;  // the top-of-loop harvest attributes it to its client
      } else {
        // No submits due and nothing queued: every in-flight query is
        // terminal and was harvested at the top of this iteration.
        break;
      }
    }
  } else {
    // Open loop: a seeded Poisson arrival stream, submitted in time order;
    // shed submissions re-enter the stream after the server's hint.
    struct Arrival {
      double at_s = 0;
      int retries_left = 0;
      size_t client = 0;
    };
    auto later = [](const Arrival& a, const Arrival& b) {
      return a.at_s > b.at_s || (a.at_s == b.at_s && a.client > b.client);
    };
    std::priority_queue<Arrival, std::vector<Arrival>, decltype(later)>
        arrivals(later);

    std::vector<ClientState> clients(
        static_cast<size_t>(std::max(1, options_.num_clients)));
    for (size_t i = 0; i < clients.size(); ++i) {
      clients[i].tenant = options_.tenants[i % options_.tenants.size()];
      clients[i].session = server_->OpenSession(clients[i].tenant);
    }
    for (const OpenLoopArrival& oa :
         GenerateOpenLoopArrivals(options_, server_->now_s(), &rng_)) {
      arrivals.push(Arrival{oa.at_s, options_.max_retries, oa.client});
    }

    std::vector<PendingOutcome> pending;
    while (!arrivals.empty()) {
      Arrival a = arrivals.top();
      arrivals.pop();
      ClientState& c = clients[a.client];
      SubmitOptions per = sub;
      per.arrival_s = a.at_s;
      per.priority = Uniform() < options_.interactive_fraction ? 1 : 0;
      const std::string& sql = PickSql(c.tenant);
      ++report.submitted;
      first_arrival = std::min(first_arrival, a.at_s);
      auto submitted = server_->Submit(c.session, sql, per);
      if (!submitted.ok()) {
        if (!submitted.status().IsResourceExhausted()) {
          return submitted.status();
        }
        ++report.shed;
        const double hint =
            std::max(RetryAfterHint(submitted.status()), 1e-3);
        if (a.retries_left > 0) {
          ++report.retries;
          arrivals.push(Arrival{a.at_s + hint, a.retries_left - 1, a.client});
        } else {
          ++report.abandoned;
        }
        continue;
      }
      pending.push_back(PendingOutcome{submitted.ValueOrDie()});
    }
    SIRIUS_RETURN_NOT_OK(server_->DrainAll());
    for (const PendingOutcome& p : pending) {
      SIRIUS_ASSIGN_OR_RETURN(QueryOutcome out, server_->Resolve(p.id));
      Record(out, &report);
      last_finish = std::max(last_finish, out.finish_s);
    }
  }

  if (std::isinf(first_arrival)) first_arrival = 0;
  FinishReport(first_arrival, last_finish, &report);
  return report;
}

}  // namespace sirius::serve
