// The concurrent query-serving layer (ROADMAP north star: serve heavy
// traffic from many sessions against one shared engine).
//
// QueryServer multiplexes queries from many sessions onto a shared
// SiriusEngine (or DorisCluster). Three mechanisms:
//
//  * Admission control — every query reserves its estimated processing-region
//    working set from the buffer manager's reservation pool *before*
//    dispatch. When the pool or the queue is full, the submit is shed with
//    Status::ResourceExhausted carrying a retry-after hint; an admitted
//    query's reservation is RAII-held and released on every exit path, so
//    admitted work can always run without device-memory admission deadlock.
//
//  * Fair scheduling — admitted queries enter per-tenant weighted queues
//    (stride scheduling, priority lanes) and are dispatched onto simulated
//    device streams (sim::StreamSet), so queries genuinely overlap and
//    tenant device time converges to the configured weights. Deadlines are
//    charged in simulated time: a query that exceeds its timeout is
//    cancelled mid-pipeline (engine::ExecLimits) and its stream occupancy
//    truncated at the deadline.
//
//  * Multi-GPU placement — with num_devices > 1 the server schedules over a
//    sim::DeviceGroup: every device has its own StreamSet, its own
//    admission reservation pool, and its own per-tenant stride queues. A
//    locality-aware PlacementPolicy keeps a tenant's queries on its warm
//    device while the inputs are resident (BufferManager residency +
//    result-cache entry stamps) and spills to the least-loaded device under
//    imbalance, charging the fabric transfer of the working set. Shed
//    decisions name the device and carry that device's retry-after hint.
//    The "serve.place" fault site forces mis-placement (non-Unavailable
//    codes) or device loss (Unavailable): a lost device's queued work
//    re-enters admission on the survivors.
//
//  * Plan + result caching — keyed on normalized SQL, stamped with the
//    catalog write-version, so catalog writes invalidate exactly.
//
// Timing discipline: executions run for real on a worker pool (kernels do
// real work on host threads), but every reported instant — arrival, queue
// wait, dispatch, completion, deadline — is *simulated* time, derived from
// engine timelines and stream arbitration in deterministic submission
// order. Wall clocks never appear; fixed seeds give identical histograms.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "dist/cluster.h"
#include "engine/sirius.h"
#include "fault/fault_injector.h"
#include "host/database.h"
#include "mem/reservation.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/query_cache.h"
#include "serve/scheduler.h"
#include "sim/device_group.h"
#include "sim/streams.h"

namespace sirius::serve {

using QueryId = uint64_t;
using SessionId = uint64_t;

/// Terminal state of one submitted query.
enum class QueryState {
  kQueued,     ///< admitted, waiting for a stream (non-terminal)
  kRunning,    ///< dispatched (non-terminal)
  kCompleted,  ///< finished with a result (possibly served from cache)
  kShed,       ///< refused at admission (queue or reservation budget full)
  kTimedOut,   ///< cancelled at its deadline (in queue or mid-pipeline)
  kFailed,     ///< execution error other than timeout
};

const char* ToString(QueryState state);

/// \brief Everything the server decided about one query, in simulated time.
struct QueryOutcome {
  QueryId id = 0;
  std::string tenant;
  int priority = 0;
  QueryState state = QueryState::kQueued;
  Status status;  ///< OK for kCompleted; the error otherwise

  double arrival_s = 0;   ///< admission time
  double dispatch_s = 0;  ///< placed on a stream (== finish_s for cache hits)
  double finish_s = 0;    ///< completion / deadline / shed time
  double exec_solo_s = 0;  ///< engine-charged duration, un-stretched
  double slowdown = 1.0;   ///< contention stretch applied on the stream
  int stream = -1;         ///< device stream, -1 for cache hits / shed
  int device = -1;         ///< device placed on, -1 for cache hits / shed
  /// Cluster node the query was routed to; -1 outside the cluster tier
  /// (stamped by ServeCluster, not by QueryServer itself).
  int node = -1;
  bool warm_placed = false;  ///< placed on the tenant's warm device
  /// Fabric transfer charged ahead of execution when the query ran away
  /// from the device holding its resident inputs (spill / mis-placement).
  double migrate_s = 0;

  bool cache_hit = false;
  bool fell_back = false;  ///< device rejected the plan; CPU engine ran it
  size_t result_rows = 0;
  format::TablePtr table;  ///< only when SubmitOptions::keep_result
  double retry_after_s = 0;  ///< shed only: suggested resubmit delay

  double latency_s() const { return finish_s - arrival_s; }
  double queue_wait_s() const { return dispatch_s - arrival_s; }
  bool terminal() const {
    return state != QueryState::kQueued && state != QueryState::kRunning;
  }
};

/// Per-submit knobs; defaults defer to ServeOptions.
struct SubmitOptions {
  /// Simulated arrival time. < 0 means "now" (the server's current frontier).
  /// Arrivals must be non-decreasing across submits; earlier values are
  /// clamped forward.
  double arrival_s = -1;
  /// Deadline, in simulated seconds after arrival; < 0 uses
  /// ServeOptions::default_timeout_s, 0 disables.
  double timeout_s = -1;
  int priority = 0;  ///< > 0: interactive lane
  /// Admission reservation; 0 uses ServeOptions::default_reservation_bytes.
  uint64_t reservation_bytes = 0;
  bool bypass_cache = false;
  bool keep_result = false;  ///< retain the result table on the outcome
};

/// \brief One completed, cacheable result, observed at the instant it is
/// inserted into a server's result cache. The cluster tier subscribes to
/// these to replicate fills to peer replicas over the fabric.
struct ResultFillEvent {
  std::string normalized_sql;
  uint64_t catalog_version = 0;  ///< stamp the result was built under
  QueryCache::CachedResult result;
  std::string tenant;
  double completed_at_s = 0;  ///< simulated completion time of the fill
};

/// \brief Server configuration.
struct ServeOptions {
  /// Simulated devices queries are placed across (the
  /// bench_ablation_multi_gpu model: N GPUs joined by a fabric link).
  int num_devices = 1;
  /// Simulated device streams queries are multiplexed onto, per device.
  int num_streams = 8;
  /// Device utilization of one query running alone (sim::StreamSet).
  double solo_utilization = 0.45;
  /// Device-to-device link pricing warm-input migration on a spill.
  sim::Link fabric = sim::NvlinkC2c();
  /// Spill away from a tenant's warm device when its backlog exceeds the
  /// least-loaded device's by more than this factor.
  double placement_imbalance_ratio = 2.0;
  /// Host worker threads running admitted queries for real.
  int execution_threads = 8;
  /// Admitted-but-undispatched queries allowed before shedding, per device.
  size_t max_queue_depth = 64;
  /// Admission budget in bytes, per device. 0 = the engine buffer manager's
  /// processing-region pool: with one device that pool is shared directly;
  /// with several, each device owns a private pool of the same capacity
  /// (each simulated GPU has its own processing region). The cluster
  /// backend requires an explicit budget.
  uint64_t admission_budget_bytes = 0;
  /// Reservation for submits that do not specify one.
  uint64_t default_reservation_bytes = 256ull << 20;
  /// Per-tenant spill quota: how many host/NVMe bytes one tenant's running
  /// queries may stage concurrently through the engine's tier hierarchy
  /// (out-of-core mode). 0 = unlimited. Override per tenant with
  /// SetTenantSpillQuota *before* that tenant submits. A query that
  /// exhausts its tenant's quota mid-run is shed with ResourceExhausted and
  /// a retry-after hint — it does not take the host down with it.
  uint64_t tenant_spill_quota_bytes = 0;
  /// Deadline applied when a submit does not specify one; 0 = none.
  double default_timeout_s = 0;
  bool plan_cache = true;
  bool result_cache = true;
  size_t cache_entries = 256;
  /// Simulated cost of serving a result-cache hit.
  double cache_hit_cost_s = 50e-6;
  /// Server-lifetime trace (per-stream query spans, shed/timeout instants);
  /// snapshot via Profile().
  bool tracing = false;
  /// Fault injector for the "serve.admit" / "serve.cancel" sites; nullptr
  /// uses the (disarmed) global injector.
  fault::FaultInjector* injector = nullptr;
  /// Observer of cacheable result completions (fired for every completed,
  /// non-bypassed query with a result table, whether or not the local result
  /// cache stores it). Invoked under the server's internal lock: the
  /// callback must only record the event — it must not call back into any
  /// QueryServer. The cluster tier appends to a pending-replication queue
  /// and flushes it later with no locks held.
  std::function<void(const ResultFillEvent&)> on_result_fill;
};

/// Parses the retry-after hint out of a shed status message ("...;
/// retry-after=0.125s"). Returns 0 when absent.
double RetryAfterHint(const Status& status);

/// \brief The abstract submit/step/resolve surface of a query service.
///
/// QueryServer (one node) and cluster::ServeCluster (a federation of them)
/// both implement it, so drivers like LoadGenerator run unchanged against
/// either. The causal protocol is shared: arrivals are non-decreasing,
/// NextDispatchTime()/Step() advance simulated time one decision at a time,
/// and Resolve() force-drains to a terminal outcome.
class QueryService {
 public:
  virtual ~QueryService() = default;

  virtual void RegisterTenant(const std::string& tenant, double weight) = 0;
  virtual SessionId OpenSession(const std::string& tenant) = 0;
  virtual Result<QueryId> Submit(SessionId session, const std::string& sql,
                                 const SubmitOptions& options) = 0;
  virtual Result<QueryOutcome> Resolve(QueryId id) = 0;
  virtual double NextDispatchTime() const = 0;
  virtual Result<QueryOutcome> Step() = 0;
  virtual Result<QueryOutcome> Peek(QueryId id) const = 0;
  virtual Status DrainAll() = 0;
  virtual double now_s() const = 0;
};

/// \brief The serving layer: sessions submit SQL; the server admits,
/// schedules, executes, and reports outcomes in simulated time.
///
/// Thread-safe: submits may come from any thread; the DES core serializes
/// on one mutex while executions proceed in parallel on the worker pool.
class QueryServer : public QueryService {
 public:
  /// Single-node backend: queries run on `engine` (attached to `db` for
  /// planning and CPU fallback). Both not owned.
  QueryServer(host::Database* db, engine::SiriusEngine* engine,
              ServeOptions options);
  /// Distributed backend: queries run through `cluster`'s coordinator.
  /// Requires ServeOptions::admission_budget_bytes > 0. Not owned.
  QueryServer(dist::DorisCluster* cluster, ServeOptions options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Registers `tenant` with a fair-share `weight` (> 0, relative).
  void RegisterTenant(const std::string& tenant, double weight) override;

  /// Sets `tenant`'s spill quota (overrides
  /// ServeOptions::tenant_spill_quota_bytes; 0 = unlimited). Call before
  /// the tenant submits: the quota pool is created lazily on first use and
  /// replaced here only while it has no outstanding charges.
  void SetTenantSpillQuota(const std::string& tenant, uint64_t bytes);

  /// The spill-quota pool of `tenant` (created on first use; tests assert
  /// reserved()==0 after a drain).
  mem::ReservationPool& spill_quota(const std::string& tenant);

  /// Opens a session for `tenant` (registered implicitly, weight 1).
  SessionId OpenSession(const std::string& tenant) override;

  /// Submits one query. Returns the QueryId of an *admitted* query (resolve
  /// it with Resolve()); a shed submit returns Status::ResourceExhausted
  /// with a retry-after hint (see RetryAfterHint). Planning errors surface
  /// directly.
  Result<QueryId> Submit(SessionId session, const std::string& sql,
                         const SubmitOptions& options = {}) override;

  /// Blocks until `id` is terminal, advancing the simulated-time dispatch
  /// loop as needed, and returns its outcome. Note this force-drains queued
  /// work ahead of `id` without waiting for future arrivals; callers
  /// interleaving submits and completions causally (the closed-loop load
  /// generator) should drive Step() themselves.
  Result<QueryOutcome> Resolve(QueryId id) override;

  /// Simulated time of the next dispatch decision (when the next queued
  /// query would start), or +infinity when nothing is queued. A caller that
  /// still has arrivals earlier than this must submit them first — later
  /// arrivals cannot change a dispatch decision taken before them.
  double NextDispatchTime() const override;

  /// Performs exactly one dispatch decision (the earliest possible) and
  /// returns the outcome of the query it finalized. Invalid when nothing is
  /// queued.
  Result<QueryOutcome> Step() override;

  /// Current outcome of `id`, terminal or not (non-blocking).
  Result<QueryOutcome> Peek(QueryId id) const override;

  /// Dispatches and resolves everything outstanding.
  Status DrainAll() override;

  /// Latest simulated event time the server has processed.
  double now_s() const override;
  /// Terminal outcomes so far, in QueryId order.
  std::vector<QueryOutcome> Outcomes() const;

  /// Admission pool of device 0 (tests assert reserved()==0 after a drain).
  mem::ReservationPool& reservations();
  /// Admission pool of one device.
  mem::ReservationPool& reservations(int device);
  int num_devices() const { return devices_.num_devices(); }
  /// True once `device` was lost through the "serve.place" fault site.
  bool device_lost(int device) const;
  /// Bytes currently reserved across every device pool.
  uint64_t total_reserved_bytes() const;
  /// Admission refusals across every device pool.
  uint64_t total_refused() const;
  obs::MetricsRegistry& metrics() { return metrics_; }
  QueryCache::Stats cache_stats() const { return cache_.stats(); }
  const ServeOptions& options() const { return options_; }

  /// \name Replicated-cache hooks (cluster tier).
  ///
  /// The federation treats each node server's result cache as one replica
  /// of a shared region: fills observed on a peer (ServeOptions::
  /// on_result_fill) are installed here once the multicast delivers, and an
  /// exact invalidation (catalog write-version bump) eagerly drops stale
  /// entries. The cache has its own lock; these never take the DES mutex.
  /// @{
  /// Installs a result filled on a peer replica into this server's cache.
  void InstallCachedResult(const std::string& normalized_sql,
                           uint64_t catalog_version,
                           QueryCache::CachedResult result);
  /// Live cached result for `normalized_sql` under `catalog_version`.
  bool LookupCachedResult(const std::string& normalized_sql,
                          uint64_t catalog_version,
                          QueryCache::CachedResult* out);
  /// Eagerly drops entries staler than `current_version`; returns count.
  size_t EvictStaleCache(uint64_t current_version);
  /// @}

  /// Snapshot of the serve-level trace (empty when tracing is off).
  obs::QueryProfile Profile() const;

 private:
  struct ExecResult {
    Status status;             ///< engine/cluster status
    double solo_seconds = 0;   ///< charged duration when OK
    format::TablePtr table;
    bool fell_back = false;
  };

  /// Shared with the execution task; outlives both sides.
  struct ExecState {
    std::atomic<bool> cancel{false};
    std::promise<ExecResult> promise;
    mem::Reservation reservation;
    /// Spill-quota charge for this execution (engine::ExecLimits::spill):
    /// taken empty at launch, grown by the engine as the query spills,
    /// released on every exit path like the admission reservation.
    mem::Reservation spill;
  };

  struct Entry {
    QueryOutcome outcome;
    std::string normalized_sql;
    double timeout_s = 0;  ///< resolved deadline budget; 0 = none
    bool keep_result = false;
    bool bypass_cache = false;
    uint64_t catalog_version = 0;
    int device = 0;            ///< device this entry is queued/placed on
    double migrate_s = 0;      ///< fabric transfer owed before execution
    bool inputs_resident = false;  ///< residency consult taken at admission
    uint64_t reservation_bytes = 0;  ///< admission-time reservation size
    /// Survivor-pool reservation taken when a device loss requeued this
    /// entry (the original reservation stays on the lost pool until the
    /// execution joins — it may still be growing it).
    mem::Reservation requeue_reservation;
    /// Kept so a mid-spill tier loss can relaunch the execution without
    /// re-planning (mirrors the device-loss re-admission protocol).
    plan::PlanPtr plan;
    /// One tier-loss re-admission per query; a second loss fails it.
    bool tier_requeued = false;
    std::shared_ptr<ExecState> exec;
    std::future<ExecResult> future;
  };

  /// Launches the real execution of `plan` for `entry` on the worker pool.
  void LaunchExecution(Entry* entry, plan::PlanPtr plan);
  /// Dispatches queued entries whose start time lands at or before
  /// `until_s`. Caller holds mu_.
  void Pump(double until_s);
  /// Earliest (start, device) dispatch decision across alive devices;
  /// device -1 when nothing is queued. Caller holds mu_.
  int EarliestDecision(double* start_s) const;
  /// Places `entry` on a stream of its device at `ready_s`, waits for its
  /// real execution, and finalizes its outcome. Caller holds mu_.
  void DispatchEntry(Entry* entry, double ready_s);
  /// Marks `entry` terminal and updates metrics/trace. Caller holds mu_.
  void Finalize(Entry* entry);
  /// Projected per-device backlog in simulated seconds (+inf when lost).
  /// Caller holds mu_.
  std::vector<double> DeviceBacklogs() const;
  /// Suggested resubmit delay given `device`'s load. Caller holds mu_.
  double ComputeRetryAfter(int device) const;
  /// True when the query's inputs are warm: every scanned column resident
  /// in the engine's buffer manager, or a live cache entry stamp for the
  /// statement. Caller holds mu_.
  bool InputsResident(const plan::PlanPtr& plan, const std::string& norm,
                      uint64_t version) const;
  /// Marks `device` lost at simulated time `at_s` and re-admits its queued
  /// entries on the survivors (shedding those the survivor pools refuse).
  /// Caller holds mu_.
  void LoseDevice(int device, double at_s);
  /// Publishes per-device gauges. Caller holds mu_.
  void UpdateDeviceGauges();
  /// `tenant`'s spill-quota pool, created lazily from the configured quota
  /// (UINT64_MAX capacity when unlimited). Caller holds mu_.
  mem::ReservationPool* SpillPoolFor(const std::string& tenant);
  void BumpTenantCounter(const std::string& tenant, const char* what);
  fault::FaultInjector* injector() const {
    return options_.injector != nullptr ? options_.injector
                                        : fault::FaultInjector::Global();
  }

  const ServeOptions options_;
  host::Database* db_ = nullptr;             ///< single-node backend
  engine::SiriusEngine* engine_ = nullptr;   ///< single-node backend
  dist::DorisCluster* cluster_ = nullptr;    ///< distributed backend

  mutable std::mutex mu_;  ///< DES core: schedulers, devices, entries, clock
  std::vector<FairScheduler> scheds_;  ///< one stride scheduler per device
  sim::DeviceGroup devices_;
  PlacementPolicy placer_;
  std::vector<std::unique_ptr<mem::ReservationPool>> owned_pools_;
  std::vector<mem::ReservationPool*> pools_;  ///< one admission pool per device
  /// Per-tenant spill-quota pools (lazily created) and explicit overrides.
  std::map<std::string, std::unique_ptr<mem::ReservationPool>> spill_pools_;
  std::map<std::string, uint64_t> spill_quota_overrides_;
  QueryCache cache_;
  ThreadPool exec_pool_;

  std::map<QueryId, std::unique_ptr<Entry>> entries_;
  std::map<SessionId, std::string> sessions_;  ///< session -> tenant
  QueryId next_query_id_ = 1;
  SessionId next_session_id_ = 1;
  double now_s_ = 0;
  /// Decaying mean of charged solo durations (retry-after hints).
  double mean_exec_s_ = 0;
  uint64_t exec_samples_ = 0;

  obs::MetricsRegistry metrics_;
  obs::TraceRecorder trace_;
  /// Track per (device, stream), indexed device * num_streams + stream.
  std::vector<obs::TrackId> stream_tracks_;
  obs::TrackId admission_track_ = 0;
  obs::TrackId placement_track_ = 0;
};

}  // namespace sirius::serve
