#include "serve/serve.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>

namespace sirius::serve {

SIRIUS_FAULT_DEFINE_SITE(kAdmitSite, "serve.admit");
SIRIUS_FAULT_DEFINE_SITE(kCancelSite, "serve.cancel");

const char* ToString(QueryState state) {
  switch (state) {
    case QueryState::kQueued: return "queued";
    case QueryState::kRunning: return "running";
    case QueryState::kCompleted: return "completed";
    case QueryState::kShed: return "shed";
    case QueryState::kTimedOut: return "timed-out";
    case QueryState::kFailed: return "failed";
  }
  return "unknown";
}

double RetryAfterHint(const Status& status) {
  const std::string& msg = status.message();
  const std::string key = "retry-after=";
  size_t pos = msg.find(key);
  if (pos == std::string::npos) return 0;
  return std::strtod(msg.c_str() + pos + key.size(), nullptr);
}

namespace {

std::string WithRetryAfter(const std::string& msg, double retry_after_s) {
  return msg + "; retry-after=" + std::to_string(retry_after_s) + "s";
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

QueryServer::QueryServer(host::Database* db, engine::SiriusEngine* engine,
                         ServeOptions options)
    : options_(options),
      db_(db),
      engine_(engine),
      streams_(sim::StreamSet::Options{options.num_streams,
                                       options.solo_utilization}),
      cache_(QueryCache::Options{options.cache_entries, options.plan_cache,
                                 options.result_cache}),
      exec_pool_(static_cast<size_t>(std::max(1, options.execution_threads))),
      trace_(obs::TraceRecorder::Options{options.tracing, 8192,
                                         /*unbounded=*/true}) {
  SIRIUS_CHECK(db_ != nullptr && engine_ != nullptr);
  if (options_.admission_budget_bytes > 0) {
    owned_pool_ = std::make_unique<mem::ReservationPool>(
        options_.admission_budget_bytes, "serve-admission");
    pool_ = owned_pool_.get();
  } else {
    pool_ = &engine_->buffer_manager().processing_reservations();
  }
  if (options_.tracing) {
    for (int i = 0; i < streams_.num_streams(); ++i) {
      stream_tracks_.push_back(
          trace_.RegisterTrack("stream-" + std::to_string(i)));
    }
    admission_track_ = trace_.RegisterTrack("admission");
  }
}

QueryServer::QueryServer(dist::DorisCluster* cluster, ServeOptions options)
    : options_(options),
      cluster_(cluster),
      streams_(sim::StreamSet::Options{options.num_streams,
                                       options.solo_utilization}),
      cache_(QueryCache::Options{options.cache_entries,
                                 /*cache_plans=*/false,  // cluster plans itself
                                 options.result_cache}),
      exec_pool_(static_cast<size_t>(std::max(1, options.execution_threads))),
      trace_(obs::TraceRecorder::Options{options.tracing, 8192,
                                         /*unbounded=*/true}) {
  SIRIUS_CHECK(cluster_ != nullptr);
  // The cluster has no single buffer manager to borrow a budget from; the
  // caller must size one explicitly.
  SIRIUS_CHECK(options_.admission_budget_bytes > 0);
  owned_pool_ = std::make_unique<mem::ReservationPool>(
      options_.admission_budget_bytes, "serve-admission");
  pool_ = owned_pool_.get();
  if (options_.tracing) {
    for (int i = 0; i < streams_.num_streams(); ++i) {
      stream_tracks_.push_back(
          trace_.RegisterTrack("stream-" + std::to_string(i)));
    }
    admission_track_ = trace_.RegisterTrack("admission");
  }
}

QueryServer::~QueryServer() {
  // Stop in-flight executions promptly; their ExecStates (and reservations)
  // are kept alive by the tasks themselves and drain before exec_pool_ joins.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, entry] : entries_) {
    (void)id;
    if (!entry->outcome.terminal() && entry->exec != nullptr) {
      entry->exec->cancel.store(true, std::memory_order_relaxed);
    }
  }
}

void QueryServer::RegisterTenant(const std::string& tenant, double weight) {
  std::lock_guard<std::mutex> lock(mu_);
  scheduler_.RegisterTenant(tenant, weight);
}

SessionId QueryServer::OpenSession(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  SessionId id = next_session_id_++;
  sessions_[id] = tenant;
  return id;
}

mem::ReservationPool& QueryServer::reservations() { return *pool_; }

double QueryServer::now_s() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_s_;
}

obs::QueryProfile QueryServer::Profile() const { return trace_.Finish(); }

void QueryServer::BumpTenantCounter(const std::string& tenant,
                                    const char* what) {
  metrics_.GetCounter(std::string("serve.") + what)->Add();
  metrics_.GetCounter("serve.tenant." + tenant + "." + what)->Add();
}

double QueryServer::ComputeRetryAfter() const {
  // Device backlog: time until a stream frees up, plus the queued work's
  // expected drain time spread across the streams. Deterministic (derived
  // from simulated state only) so shed/retry schedules replay under a seed.
  const double mean = exec_samples_ > 0 ? mean_exec_s_ : 10e-3;
  const double until_free = std::max(0.0, streams_.EarliestStart(now_s_) - now_s_);
  const double backlog =
      static_cast<double>(scheduler_.depth()) * mean / streams_.num_streams();
  return std::max(1e-3, until_free + backlog);
}

Result<QueryId> QueryServer::Submit(SessionId session, const std::string& sql,
                                    const SubmitOptions& sub) {
  std::lock_guard<std::mutex> lock(mu_);
  auto sit = sessions_.find(session);
  if (sit == sessions_.end()) {
    return Status::Invalid("Submit: unknown session " + std::to_string(session));
  }
  const std::string& tenant = sit->second;

  // Arrivals are processed in nondecreasing simulated order; an arrival
  // behind the dispatch frontier is clamped forward (the DES already
  // committed decisions up to the frontier).
  double arrival = sub.arrival_s < 0 ? now_s_ : std::max(sub.arrival_s, now_s_);
  Pump(arrival);
  now_s_ = std::max(now_s_, arrival);

  metrics_.GetCounter("serve.submitted")->Add();
  metrics_.GetCounter("serve.tenant." + tenant + ".submitted")->Add();

  // Overload fault site: chaos tests shed here without real memory pressure.
  Status admit = injector()->Check(kAdmitSite);
  if (!admit.ok()) {
    BumpTenantCounter(tenant, "shed");
    if (options_.tracing) {
      trace_.AddInstant(admission_track_, "shed(fault) " + tenant,
                        "admission", arrival);
    }
    return Status::ResourceExhausted(
        WithRetryAfter(admit.message(), ComputeRetryAfter()));
  }

  const std::string norm = NormalizeSql(sql);
  const uint64_t version = db_ != nullptr
                               ? db_->catalog().version()
                               : cluster_->coordinator().catalog().version();

  // Result cache first: a hit costs no admission, no stream, no execution.
  if (!sub.bypass_cache) {
    QueryCache::CachedResult hit;
    if (cache_.LookupResult(norm, version, &hit)) {
      QueryId id = next_query_id_++;
      auto entry = std::make_unique<Entry>();
      entry->outcome.id = id;
      entry->outcome.tenant = tenant;
      entry->outcome.priority = sub.priority;
      entry->outcome.state = QueryState::kCompleted;
      entry->outcome.status = Status::OK();
      entry->outcome.arrival_s = arrival;
      entry->outcome.dispatch_s = arrival;
      entry->outcome.finish_s = arrival + options_.cache_hit_cost_s;
      entry->outcome.cache_hit = true;
      entry->outcome.exec_solo_s = hit.exec_seconds;  // saved device time
      if (hit.table != nullptr) {
        entry->outcome.result_rows = hit.table->num_rows();
      }
      if (sub.keep_result) entry->outcome.table = hit.table;
      BumpTenantCounter(tenant, "cache_hits");
      BumpTenantCounter(tenant, "completed");
      if (options_.tracing) {
        trace_.AddInstant(admission_track_, "cache-hit " + tenant,
                          "admission", arrival);
      }
      entries_.emplace(id, std::move(entry));
      return id;
    }
  }

  // Queue-depth shed: bound admitted-but-waiting work.
  if (scheduler_.depth() >= options_.max_queue_depth) {
    BumpTenantCounter(tenant, "shed");
    if (options_.tracing) {
      trace_.AddInstant(admission_track_, "shed(queue) " + tenant,
                        "admission", arrival);
    }
    return Status::ResourceExhausted(WithRetryAfter(
        "admission queue full (depth " + std::to_string(scheduler_.depth()) +
            ")",
        ComputeRetryAfter()));
  }

  // Memory admission: reserve the estimated working set up front.
  const uint64_t bytes = sub.reservation_bytes > 0
                             ? sub.reservation_bytes
                             : options_.default_reservation_bytes;
  auto reservation = mem::Reservation::Take(pool_, bytes);
  if (!reservation.ok()) {
    BumpTenantCounter(tenant, "shed");
    if (options_.tracing) {
      trace_.AddInstant(admission_track_, "shed(memory) " + tenant,
                        "admission", arrival);
    }
    return Status::ResourceExhausted(
        WithRetryAfter(reservation.status().message(), ComputeRetryAfter()));
  }

  // Plan (single-node backend; the cluster coordinator plans per query).
  plan::PlanPtr plan;
  if (db_ != nullptr) {
    plan = sub.bypass_cache ? nullptr : cache_.LookupPlan(norm, version);
    if (plan == nullptr) {
      auto planned = db_->PlanSql(sql);
      if (!planned.ok()) return planned.status();  // reservation auto-releases
      plan = std::move(planned).ValueOrDie();
      if (!sub.bypass_cache) cache_.InsertPlan(norm, version, plan);
    }
  }

  QueryId id = next_query_id_++;
  auto entry = std::make_unique<Entry>();
  entry->outcome.id = id;
  entry->outcome.tenant = tenant;
  entry->outcome.priority = sub.priority;
  entry->outcome.arrival_s = arrival;
  entry->normalized_sql = norm;
  entry->timeout_s =
      sub.timeout_s < 0 ? options_.default_timeout_s : sub.timeout_s;
  entry->keep_result = sub.keep_result;
  entry->bypass_cache = sub.bypass_cache;
  entry->catalog_version = version;
  entry->exec = std::make_shared<ExecState>();
  entry->exec->reservation = std::move(reservation).ValueOrDie();
  entry->future = entry->exec->promise.get_future();

  Entry* raw = entry.get();
  entries_.emplace(id, std::move(entry));
  if (db_ != nullptr) {
    LaunchExecution(raw, std::move(plan));
  } else {
    // Cluster backend: ship the SQL; the coordinator plans and fragments.
    auto exec = raw->exec;
    dist::DorisCluster* cluster = cluster_;
    exec_pool_.Submit([exec, cluster, sql] {
      ExecResult r;
      if (exec->cancel.load(std::memory_order_relaxed)) {
        r.status = Status::Timeout("query cancelled before cluster dispatch");
      } else {
        auto res = cluster->Query(sql);
        if (res.ok()) {
          const dist::DistQueryResult& d = res.ValueOrDie();
          r.status = Status::OK();
          r.solo_seconds = d.total_seconds;
          r.table = d.table;
        } else {
          r.status = res.status();
        }
      }
      exec->promise.set_value(std::move(r));
    });
  }

  scheduler_.Enqueue(QueuedEntry{id, tenant, sub.priority, arrival});
  metrics_.SetGauge("serve.queue_depth",
                    static_cast<double>(scheduler_.depth()));
  Pump(arrival);
  return id;
}

void QueryServer::LaunchExecution(Entry* entry, plan::PlanPtr plan) {
  auto exec = entry->exec;
  engine::SiriusEngine* engine = engine_;
  host::Database* db = db_;
  const double deadline = entry->timeout_s;
  fault::FaultInjector* inj = injector();
  exec_pool_.Submit([exec, plan, engine, db, deadline, inj] {
    ExecResult r;
    // Mid-query cancellation fault site: chaos tests flip the cancel flag
    // through the schedule instead of a timer.
    Status cancel_fault = inj->Check(kCancelSite);
    if (!cancel_fault.ok()) exec->cancel.store(true, std::memory_order_relaxed);

    engine::ExecLimits limits;
    limits.deadline_s = deadline;  // queue wait is enforced by the server
    limits.cancel = &exec->cancel;
    limits.reservation = &exec->reservation;
    auto res = engine->ExecutePlan(plan, limits);
    if (!res.ok() && res.status().IsUnsupportedOnDevice() && db != nullptr) {
      auto cpu = db->ExecutePlanCpu(plan);
      if (cpu.ok()) {
        r.fell_back = true;
        res = std::move(cpu);
      }
    }
    if (res.ok()) {
      const host::QueryResult& q = res.ValueOrDie();
      r.status = Status::OK();
      r.solo_seconds = q.timeline.total_seconds();
      r.table = q.table;
    } else {
      r.status = res.status();
    }
    exec->promise.set_value(std::move(r));
  });
}

void QueryServer::Pump(double until_s) {
  QueuedEntry next;
  while (!scheduler_.empty()) {
    const double ready = scheduler_.EarliestArrival();
    const double start = streams_.EarliestStart(ready);
    if (start > until_s) break;
    if (!scheduler_.PopNext(start, &next)) break;
    auto it = entries_.find(next.query_id);
    SIRIUS_CHECK(it != entries_.end());
    DispatchEntry(it->second.get(), start);
  }
  metrics_.SetGauge("serve.queue_depth",
                    static_cast<double>(scheduler_.depth()));
  metrics_.SetGauge("serve.reserved_bytes",
                    static_cast<double>(pool_->reserved()));
}

void QueryServer::DispatchEntry(Entry* entry, double ready_s) {
  QueryOutcome& out = entry->outcome;
  out.state = QueryState::kRunning;
  now_s_ = std::max(now_s_, ready_s);
  const double deadline =
      entry->timeout_s > 0 ? out.arrival_s + entry->timeout_s : kInf;

  if (ready_s >= deadline) {
    // The deadline passed while the query sat in the queue: cancel the real
    // execution (its result is discarded) and charge nothing to a stream.
    entry->exec->cancel.store(true, std::memory_order_relaxed);
    ExecResult discarded = entry->future.get();
    (void)discarded;
    entry->exec->reservation.Release();
    out.state = QueryState::kTimedOut;
    out.dispatch_s = deadline;
    out.finish_s = deadline;
    out.status = Status::Timeout(
        "deadline expired in admission queue (waited " +
        std::to_string(deadline - out.arrival_s) + "s)");
    Finalize(entry);
    return;
  }

  // Join the real execution; every simulated instant below derives from its
  // charged timeline plus stream arbitration.
  ExecResult r = entry->future.get();
  entry->exec->reservation.Release();

  if (!r.status.ok() && !r.status.IsTimeout()) {
    out.state = QueryState::kFailed;
    out.status = r.status;
    out.dispatch_s = ready_s;
    out.finish_s = ready_s;
    Finalize(entry);
    return;
  }

  // An engine-side Timeout means execution alone exceeded the budget: the
  // lane stays busy up to the deadline, then the cancellation frees it. A
  // cancellation with no deadline (chaos "serve.cancel", shutdown) has no
  // well-defined occupancy — it ends where it started.
  const bool engine_timeout = r.status.IsTimeout();
  if (engine_timeout && !std::isfinite(deadline)) {
    out.state = QueryState::kTimedOut;
    out.status = r.status;
    out.dispatch_s = ready_s;
    out.finish_s = ready_s;
    Finalize(entry);
    return;
  }
  const double solo = engine_timeout
                          ? std::max(deadline - ready_s, 0.0)
                          : r.solo_seconds;
  sim::StreamSet::Placement p = streams_.Place(ready_s, solo);
  out.dispatch_s = p.start_s;
  out.stream = p.stream;
  out.slowdown = p.slowdown;
  out.exec_solo_s = solo;
  now_s_ = std::max(now_s_, p.start_s);

  const bool timed_out = engine_timeout || p.end_s > deadline;
  if (timed_out) {
    streams_.Truncate(p.stream, deadline);
    out.state = QueryState::kTimedOut;
    out.finish_s = deadline;
    out.status = engine_timeout
                     ? r.status
                     : Status::Timeout(
                           "deadline exceeded mid-flight (needed until " +
                           std::to_string(p.end_s) + "s)");
    scheduler_.Charge(out.tenant, std::max(deadline - p.start_s, 0.0));
  } else {
    out.state = QueryState::kCompleted;
    out.status = Status::OK();
    out.finish_s = p.end_s;
    out.fell_back = r.fell_back;
    if (r.table != nullptr) out.result_rows = r.table->num_rows();
    if (entry->keep_result) out.table = r.table;
    if (!entry->bypass_cache) {
      cache_.InsertResult(entry->normalized_sql, entry->catalog_version,
                          QueryCache::CachedResult{r.table, solo});
    }
    scheduler_.Charge(out.tenant, p.end_s - p.start_s);
    mean_exec_s_ =
        (mean_exec_s_ * static_cast<double>(exec_samples_) + solo) /
        static_cast<double>(exec_samples_ + 1);
    ++exec_samples_;
  }
  Finalize(entry);
}

void QueryServer::Finalize(Entry* entry) {
  const QueryOutcome& out = entry->outcome;
  switch (out.state) {
    case QueryState::kCompleted:
      BumpTenantCounter(out.tenant, "completed");
      break;
    case QueryState::kTimedOut:
      BumpTenantCounter(out.tenant, "timed_out");
      break;
    case QueryState::kFailed:
      BumpTenantCounter(out.tenant, "failed");
      break;
    default:
      break;
  }
  if (options_.tracing) {
    if (out.stream >= 0 &&
        out.stream < static_cast<int>(stream_tracks_.size())) {
      trace_.AddComplete(
          stream_tracks_[out.stream],
          "q" + std::to_string(out.id) + " " + out.tenant,
          out.state == QueryState::kTimedOut ? "timeout" : "query",
          out.dispatch_s, out.finish_s,
          {{"slowdown", out.slowdown},
           {"queue_wait_s", out.queue_wait_s()},
           {"solo_s", out.exec_solo_s}});
    } else if (out.state == QueryState::kTimedOut) {
      trace_.AddInstant(admission_track_,
                        "queue-timeout q" + std::to_string(out.id), "timeout",
                        out.finish_s);
    }
  }
  now_s_ = std::max(now_s_, out.dispatch_s);
}

Result<QueryOutcome> QueryServer::Resolve(QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::KeyError("Resolve: unknown query " + std::to_string(id));
  }
  Entry* target = it->second.get();
  QueuedEntry next;
  while (!target->outcome.terminal()) {
    if (scheduler_.empty()) {
      return Status::Internal("Resolve: query " + std::to_string(id) +
                              " is neither queued nor terminal");
    }
    const double ready = scheduler_.EarliestArrival();
    const double start = streams_.EarliestStart(ready);
    if (!scheduler_.PopNext(start, &next)) {
      return Status::Internal("Resolve: scheduler stalled");
    }
    auto nit = entries_.find(next.query_id);
    SIRIUS_CHECK(nit != entries_.end());
    DispatchEntry(nit->second.get(), start);
  }
  metrics_.SetGauge("serve.queue_depth",
                    static_cast<double>(scheduler_.depth()));
  metrics_.SetGauge("serve.reserved_bytes",
                    static_cast<double>(pool_->reserved()));
  return target->outcome;
}

double QueryServer::NextDispatchTime() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (scheduler_.empty()) return kInf;
  return streams_.EarliestStart(scheduler_.EarliestArrival());
}

Result<QueryOutcome> QueryServer::Step() {
  std::lock_guard<std::mutex> lock(mu_);
  if (scheduler_.empty()) return Status::Invalid("Step: nothing queued");
  const double ready = scheduler_.EarliestArrival();
  const double start = streams_.EarliestStart(ready);
  QueuedEntry next;
  if (!scheduler_.PopNext(start, &next)) {
    return Status::Internal("Step: scheduler stalled");
  }
  auto it = entries_.find(next.query_id);
  SIRIUS_CHECK(it != entries_.end());
  DispatchEntry(it->second.get(), start);
  metrics_.SetGauge("serve.queue_depth",
                    static_cast<double>(scheduler_.depth()));
  metrics_.SetGauge("serve.reserved_bytes",
                    static_cast<double>(pool_->reserved()));
  return it->second->outcome;
}

Result<QueryOutcome> QueryServer::Peek(QueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::KeyError("Peek: unknown query " + std::to_string(id));
  }
  return it->second->outcome;
}

Status QueryServer::DrainAll() {
  std::lock_guard<std::mutex> lock(mu_);
  Pump(kInf);
  return Status::OK();
}

std::vector<QueryOutcome> QueryServer::Outcomes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryOutcome> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    (void)id;
    out.push_back(entry->outcome);
  }
  return out;
}

}  // namespace sirius::serve
