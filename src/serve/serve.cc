#include "serve/serve.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>

namespace sirius::serve {

SIRIUS_FAULT_DEFINE_SITE(kAdmitSite, "serve.admit");
SIRIUS_FAULT_DEFINE_SITE(kCancelSite, "serve.cancel");
SIRIUS_FAULT_DEFINE_SITE(kPlaceSite, "serve.place");

const char* ToString(QueryState state) {
  switch (state) {
    case QueryState::kQueued: return "queued";
    case QueryState::kRunning: return "running";
    case QueryState::kCompleted: return "completed";
    case QueryState::kShed: return "shed";
    case QueryState::kTimedOut: return "timed-out";
    case QueryState::kFailed: return "failed";
  }
  return "unknown";
}

double RetryAfterHint(const Status& status) {
  const std::string& msg = status.message();
  const std::string key = "retry-after=";
  size_t pos = msg.find(key);
  if (pos == std::string::npos) return 0;
  return std::strtod(msg.c_str() + pos + key.size(), nullptr);
}

namespace {

std::string WithRetryAfter(const std::string& msg, double retry_after_s) {
  return msg + "; retry-after=" + std::to_string(retry_after_s) + "s";
}

std::string DeviceTag(int device) {
  return "device " + std::to_string(device);
}

/// True when every base-table column the plan scans is resident in `bm`.
/// Plans without scans report false (nothing resident to be warm about).
bool ScansResident(const plan::PlanPtr& plan, const engine::BufferManager& bm) {
  if (plan == nullptr) return false;
  bool any_scan = false;
  std::vector<const plan::PlanNode*> stack = {plan.get()};
  while (!stack.empty()) {
    const plan::PlanNode* node = stack.back();
    stack.pop_back();
    if (node->kind == plan::PlanKind::kTableScan) {
      any_scan = true;
      for (int col : node->scan_columns) {
        if (!bm.IsCached(node->table_name, col)) return false;
      }
    }
    for (const auto& child : node->children) stack.push_back(child.get());
  }
  return any_scan;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

QueryServer::QueryServer(host::Database* db, engine::SiriusEngine* engine,
                         ServeOptions options)
    : options_(options),
      db_(db),
      engine_(engine),
      devices_(sim::DeviceGroup::Options{
          options.num_devices,
          sim::StreamSet::Options{options.num_streams,
                                  options.solo_utilization},
          options.fabric}),
      placer_(PlacementPolicy::Options{options.placement_imbalance_ratio,
                                       1e-3}),
      cache_(QueryCache::Options{options.cache_entries, options.plan_cache,
                                 options.result_cache}),
      exec_pool_(static_cast<size_t>(std::max(1, options.execution_threads))),
      trace_(obs::TraceRecorder::Options{options.tracing, 8192,
                                         /*unbounded=*/true}) {
  SIRIUS_CHECK(db_ != nullptr && engine_ != nullptr);
  scheds_.resize(static_cast<size_t>(devices_.num_devices()));
  if (devices_.num_devices() == 1 && options_.admission_budget_bytes == 0) {
    // Single device: share the engine buffer manager's reservation pool so
    // admission and engine-side growth draw from one processing region.
    pools_.push_back(&engine_->buffer_manager().processing_reservations());
  } else {
    // Every simulated device owns a processing region of its own.
    const uint64_t per_device =
        options_.admission_budget_bytes > 0
            ? options_.admission_budget_bytes
            : engine_->buffer_manager().processing_reservations().capacity();
    for (int d = 0; d < devices_.num_devices(); ++d) {
      owned_pools_.push_back(std::make_unique<mem::ReservationPool>(
          per_device, "serve-dev" + std::to_string(d)));
      pools_.push_back(owned_pools_.back().get());
    }
  }
  if (options_.tracing) {
    for (int d = 0; d < devices_.num_devices(); ++d) {
      for (int i = 0; i < options_.num_streams; ++i) {
        const std::string name =
            devices_.num_devices() == 1
                ? "stream-" + std::to_string(i)
                : "dev" + std::to_string(d) + "/stream-" + std::to_string(i);
        stream_tracks_.push_back(trace_.RegisterTrack(name));
      }
    }
    admission_track_ = trace_.RegisterTrack("admission");
    placement_track_ = trace_.RegisterTrack("placement");
  }
}

QueryServer::QueryServer(dist::DorisCluster* cluster, ServeOptions options)
    : options_(options),
      cluster_(cluster),
      devices_(sim::DeviceGroup::Options{
          options.num_devices,
          sim::StreamSet::Options{options.num_streams,
                                  options.solo_utilization},
          options.fabric}),
      placer_(PlacementPolicy::Options{options.placement_imbalance_ratio,
                                       1e-3}),
      cache_(QueryCache::Options{options.cache_entries,
                                 /*cache_plans=*/false,  // cluster plans itself
                                 options.result_cache}),
      exec_pool_(static_cast<size_t>(std::max(1, options.execution_threads))),
      trace_(obs::TraceRecorder::Options{options.tracing, 8192,
                                         /*unbounded=*/true}) {
  SIRIUS_CHECK(cluster_ != nullptr);
  // The cluster has no single buffer manager to borrow a budget from; the
  // caller must size one explicitly.
  SIRIUS_CHECK(options_.admission_budget_bytes > 0);
  scheds_.resize(static_cast<size_t>(devices_.num_devices()));
  for (int d = 0; d < devices_.num_devices(); ++d) {
    owned_pools_.push_back(std::make_unique<mem::ReservationPool>(
        options_.admission_budget_bytes, "serve-dev" + std::to_string(d)));
    pools_.push_back(owned_pools_.back().get());
  }
  if (options_.tracing) {
    for (int d = 0; d < devices_.num_devices(); ++d) {
      for (int i = 0; i < options_.num_streams; ++i) {
        const std::string name =
            devices_.num_devices() == 1
                ? "stream-" + std::to_string(i)
                : "dev" + std::to_string(d) + "/stream-" + std::to_string(i);
        stream_tracks_.push_back(trace_.RegisterTrack(name));
      }
    }
    admission_track_ = trace_.RegisterTrack("admission");
    placement_track_ = trace_.RegisterTrack("placement");
  }
}

QueryServer::~QueryServer() {
  // Stop in-flight executions promptly; their ExecStates (and reservations)
  // are kept alive by the tasks themselves and drain before exec_pool_ joins.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, entry] : entries_) {
    (void)id;
    if (!entry->outcome.terminal() && entry->exec != nullptr) {
      entry->exec->cancel.store(true, std::memory_order_relaxed);
    }
  }
}

void QueryServer::RegisterTenant(const std::string& tenant, double weight) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& sched : scheds_) sched.RegisterTenant(tenant, weight);
}

SessionId QueryServer::OpenSession(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  SessionId id = next_session_id_++;
  sessions_[id] = tenant;
  return id;
}

mem::ReservationPool& QueryServer::reservations() { return *pools_[0]; }

mem::ReservationPool& QueryServer::reservations(int device) {
  SIRIUS_CHECK(device >= 0 && device < static_cast<int>(pools_.size()));
  return *pools_[static_cast<size_t>(device)];
}

mem::ReservationPool* QueryServer::SpillPoolFor(const std::string& tenant) {
  auto it = spill_pools_.find(tenant);
  if (it != spill_pools_.end()) return it->second.get();
  auto oit = spill_quota_overrides_.find(tenant);
  const uint64_t quota = oit != spill_quota_overrides_.end()
                             ? oit->second
                             : options_.tenant_spill_quota_bytes;
  const uint64_t capacity =
      quota > 0 ? quota : std::numeric_limits<uint64_t>::max();
  auto pool = std::make_unique<mem::ReservationPool>(capacity,
                                                     "spill-quota:" + tenant);
  mem::ReservationPool* raw = pool.get();
  spill_pools_.emplace(tenant, std::move(pool));
  return raw;
}

void QueryServer::SetTenantSpillQuota(const std::string& tenant,
                                      uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  spill_quota_overrides_[tenant] = bytes;
  auto it = spill_pools_.find(tenant);
  if (it != spill_pools_.end()) {
    // Replacing a pool with outstanding charges would orphan them: the
    // running queries' Reservations point at the old pool.
    SIRIUS_CHECK(it->second->reserved() == 0);
    spill_pools_.erase(it);
  }
}

mem::ReservationPool& QueryServer::spill_quota(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  return *SpillPoolFor(tenant);
}

bool QueryServer::device_lost(int device) const {
  std::lock_guard<std::mutex> lock(mu_);
  return devices_.lost(device);
}

uint64_t QueryServer::total_reserved_bytes() const {
  uint64_t total = 0;
  for (const auto* pool : pools_) total += pool->reserved();
  return total;
}

uint64_t QueryServer::total_refused() const {
  uint64_t total = 0;
  for (const auto* pool : pools_) total += pool->total_refused();
  return total;
}

double QueryServer::now_s() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_s_;
}

obs::QueryProfile QueryServer::Profile() const { return trace_.Finish(); }

void QueryServer::BumpTenantCounter(const std::string& tenant,
                                    const char* what) {
  metrics_.GetCounter(std::string("serve.") + what)->Add();
  metrics_.GetCounter("serve.tenant." + tenant + "." + what)->Add();
}

std::vector<double> QueryServer::DeviceBacklogs() const {
  // Per-device backlog: time until one of its streams frees up, plus its
  // queued work's expected drain time spread across the streams.
  // Deterministic (simulated state only) so placement decisions replay.
  const double mean = exec_samples_ > 0 ? mean_exec_s_ : 10e-3;
  std::vector<double> backlog(static_cast<size_t>(devices_.num_devices()),
                              kInf);
  for (int d = 0; d < devices_.num_devices(); ++d) {
    if (devices_.lost(d)) continue;
    const double until_free =
        std::max(0.0, devices_.EarliestStart(d, now_s_) - now_s_);
    backlog[static_cast<size_t>(d)] =
        until_free + static_cast<double>(scheds_[static_cast<size_t>(d)].depth()) *
                         mean / devices_.streams_per_device();
  }
  return backlog;
}

double QueryServer::ComputeRetryAfter(int device) const {
  const double mean = exec_samples_ > 0 ? mean_exec_s_ : 10e-3;
  const double until_free =
      std::max(0.0, devices_.EarliestStart(device, now_s_) - now_s_);
  const double backlog =
      static_cast<double>(scheds_[static_cast<size_t>(device)].depth()) *
      mean / devices_.streams_per_device();
  return std::max(1e-3, until_free + backlog);
}

bool QueryServer::InputsResident(const plan::PlanPtr& plan,
                                 const std::string& norm,
                                 uint64_t version) const {
  // A live cache entry stamp means this statement ran against the current
  // catalog recently — its plan (and possibly result) were produced from
  // inputs that were resident then.
  if (cache_.HasLiveEntry(norm, version)) return true;
  if (engine_ == nullptr) return false;
  return ScansResident(plan, engine_->buffer_manager());
}

void QueryServer::UpdateDeviceGauges() {
  size_t total_depth = 0;
  for (const auto& sched : scheds_) total_depth += sched.depth();
  metrics_.SetGauge("serve.queue_depth", static_cast<double>(total_depth));
  metrics_.SetGauge("serve.reserved_bytes",
                    static_cast<double>(total_reserved_bytes()));
  // Per-tier spill gauges ride along with the device gauges: the engine's
  // tier hierarchy is a shared resource the operator watches next to the
  // queues (mem.tier.host.*, mem.tier.nvme.*, mem.pinned_host.in_use_bytes).
  if (engine_ != nullptr) engine_->tiers().PublishGauges(&metrics_);
  if (devices_.num_devices() == 1) return;
  for (int d = 0; d < devices_.num_devices(); ++d) {
    const std::string prefix = "serve.device." + std::to_string(d);
    metrics_.SetGauge(prefix + ".queue_depth",
                      static_cast<double>(scheds_[static_cast<size_t>(d)].depth()));
    metrics_.SetGauge(
        prefix + ".reserved_bytes",
        static_cast<double>(pools_[static_cast<size_t>(d)]->reserved()));
    metrics_.SetGauge(prefix + ".busy_streams",
                      static_cast<double>(devices_.BusyAt(d, now_s_)));
    metrics_.SetGauge(prefix + ".busy_until_s",
                      devices_.lost(d) ? 0.0
                                       : devices_.streams(d).Horizon());
  }
}

void QueryServer::LoseDevice(int device, double at_s) {
  devices_.MarkLost(device);
  placer_.ForgetDevice(device);
  metrics_.GetCounter("serve.device_lost")->Add();
  if (options_.tracing) {
    trace_.AddInstant(placement_track_, "device-lost dev" + std::to_string(device),
                      "serve.place", at_s);
  }
  std::vector<QueuedEntry> orphans =
      scheds_[static_cast<size_t>(device)].Drain();
  std::vector<bool> alive(static_cast<size_t>(devices_.num_devices()));
  for (int d = 0; d < devices_.num_devices(); ++d) {
    alive[static_cast<size_t>(d)] = !devices_.lost(d);
  }
  for (QueuedEntry& qe : orphans) {
    auto it = entries_.find(qe.query_id);
    SIRIUS_CHECK(it != entries_.end());
    Entry* entry = it->second.get();

    auto shed_entry = [&](const Status& status) {
      // The survivor pools cannot carry this admission: join the real
      // execution (cancelled, result discarded) and finalize as shed.
      entry->exec->cancel.store(true, std::memory_order_relaxed);
      ExecResult discarded = entry->future.get();
      (void)discarded;
      entry->exec->reservation.Release();
      entry->exec->spill.Release();
      entry->requeue_reservation.Release();
      entry->outcome.state = QueryState::kShed;
      entry->outcome.status = status;
      entry->outcome.finish_s = at_s;
      entry->outcome.retry_after_s = RetryAfterHint(status);
      BumpTenantCounter(entry->outcome.tenant, "shed");
      metrics_.GetCounter("serve.requeue_shed")->Add();
      Finalize(entry);
    };

    const std::vector<double> backlogs = DeviceBacklogs();
    PlacementPolicy::Decision dec =
        placer_.Place(qe.tenant, entry->inputs_resident, backlogs, alive);
    if (dec.device < 0) {
      shed_entry(Status::Unavailable(
          "device group lost every device; query cannot be re-placed"));
      continue;
    }
    // Re-enter admission on the survivor: the lost device's reservation is
    // void (its region is gone); the survivor pool must cover the query.
    // The original Reservation object stays put until the execution joins —
    // the engine may still be growing it concurrently.
    auto reservation = mem::Reservation::Take(
        pools_[static_cast<size_t>(dec.device)], entry->reservation_bytes);
    if (!reservation.ok()) {
      shed_entry(Status::ResourceExhausted(WithRetryAfter(
          DeviceTag(dec.device) + ": " + reservation.status().message(),
          ComputeRetryAfter(dec.device))));
      continue;
    }
    entry->requeue_reservation = std::move(reservation).ValueOrDie();
    entry->device = dec.device;
    entry->outcome.device = dec.device;
    entry->outcome.warm_placed = false;
    // Survivors re-fetch the query's resident inputs over the fabric/host
    // link; cold inputs reload through the engine's buffer manager anyway.
    entry->migrate_s = entry->inputs_resident
                           ? devices_.MigrateSeconds(entry->reservation_bytes)
                           : 0;
    placer_.RecordPlacement(qe.tenant, dec.device);
    qe.arrival_s = std::max(qe.arrival_s, at_s);
    scheds_[static_cast<size_t>(dec.device)].Enqueue(qe);
    metrics_.GetCounter("serve.requeued")->Add();
    if (options_.tracing) {
      trace_.AddComplete(placement_track_,
                         "requeue q" + std::to_string(qe.query_id) + " dev" +
                             std::to_string(device) + "->dev" +
                             std::to_string(dec.device),
                         "serve.place", at_s, at_s,
                         {{"device", static_cast<double>(dec.device)}});
    }
  }
}

Result<QueryId> QueryServer::Submit(SessionId session, const std::string& sql,
                                    const SubmitOptions& sub) {
  std::lock_guard<std::mutex> lock(mu_);
  auto sit = sessions_.find(session);
  if (sit == sessions_.end()) {
    return Status::Invalid("Submit: unknown session " + std::to_string(session));
  }
  const std::string& tenant = sit->second;

  // Arrivals are processed in nondecreasing simulated order; an arrival
  // behind the dispatch frontier is clamped forward (the DES already
  // committed decisions up to the frontier).
  double arrival = sub.arrival_s < 0 ? now_s_ : std::max(sub.arrival_s, now_s_);
  Pump(arrival);
  now_s_ = std::max(now_s_, arrival);

  metrics_.GetCounter("serve.submitted")->Add();
  metrics_.GetCounter("serve.tenant." + tenant + ".submitted")->Add();

  // Overload fault site: chaos tests shed here without real memory pressure.
  Status admit = injector()->Check(kAdmitSite);
  if (!admit.ok()) {
    BumpTenantCounter(tenant, "shed");
    if (options_.tracing) {
      trace_.AddInstant(admission_track_, "shed(fault) " + tenant,
                        "admission", arrival);
    }
    return Status::ResourceExhausted(
        WithRetryAfter(admit.message(), ComputeRetryAfter(0)));
  }

  const std::string norm = NormalizeSql(sql);
  const uint64_t version = db_ != nullptr
                               ? db_->catalog().version()
                               : cluster_->coordinator().catalog().version();

  // Result cache first: a hit costs no admission, no stream, no execution.
  if (!sub.bypass_cache) {
    QueryCache::CachedResult hit;
    if (cache_.LookupResult(norm, version, &hit)) {
      QueryId id = next_query_id_++;
      auto entry = std::make_unique<Entry>();
      entry->outcome.id = id;
      entry->outcome.tenant = tenant;
      entry->outcome.priority = sub.priority;
      entry->outcome.state = QueryState::kCompleted;
      entry->outcome.status = Status::OK();
      entry->outcome.arrival_s = arrival;
      entry->outcome.dispatch_s = arrival;
      entry->outcome.finish_s = arrival + options_.cache_hit_cost_s;
      entry->outcome.cache_hit = true;
      entry->outcome.exec_solo_s = hit.exec_seconds;  // saved device time
      if (hit.table != nullptr) {
        entry->outcome.result_rows = hit.table->num_rows();
      }
      if (sub.keep_result) entry->outcome.table = hit.table;
      BumpTenantCounter(tenant, "cache_hits");
      BumpTenantCounter(tenant, "completed");
      if (options_.tracing) {
        trace_.AddInstant(admission_track_, "cache-hit " + tenant,
                          "admission", arrival);
      }
      entries_.emplace(id, std::move(entry));
      return id;
    }
  }

  // Plan (single-node backend; the cluster coordinator plans per query).
  // Planned before placement so the residency consult can walk the scans.
  plan::PlanPtr plan;
  if (db_ != nullptr) {
    plan = sub.bypass_cache ? nullptr : cache_.LookupPlan(norm, version);
    if (plan == nullptr) {
      auto planned = db_->PlanSql(sql);
      if (!planned.ok()) return planned.status();
      plan = std::move(planned).ValueOrDie();
      if (!sub.bypass_cache) cache_.InsertPlan(norm, version, plan);
    }
  }

  // Placement: pick the device this query is admitted against. The
  // "serve.place" fault site forces device loss (Unavailable) or
  // mis-placement (any other code) ahead of the policy's choice.
  const bool resident = InputsResident(plan, norm, version);
  Status place_fault = injector()->Check(kPlaceSite);
  std::vector<double> backlogs = DeviceBacklogs();
  std::vector<bool> alive(static_cast<size_t>(devices_.num_devices()));
  for (int d = 0; d < devices_.num_devices(); ++d) {
    alive[static_cast<size_t>(d)] = !devices_.lost(d);
  }
  PlacementPolicy::Decision dec = placer_.Place(tenant, resident, backlogs, alive);
  if (!place_fault.ok()) {
    if (place_fault.IsUnavailable()) {
      if (dec.device >= 0) {
        LoseDevice(dec.device, arrival);
        backlogs = DeviceBacklogs();
        for (int d = 0; d < devices_.num_devices(); ++d) {
          alive[static_cast<size_t>(d)] = !devices_.lost(d);
        }
        dec = placer_.Place(tenant, resident, backlogs, alive);
      }
    } else {
      // Forced mis-placement: the most-loaded alive device (deterministic
      // worst choice), ignoring warmth.
      int worst = -1;
      for (int d = 0; d < devices_.num_devices(); ++d) {
        if (!alive[static_cast<size_t>(d)]) continue;
        if (worst < 0 || backlogs[static_cast<size_t>(d)] >
                             backlogs[static_cast<size_t>(worst)]) {
          worst = d;
        }
      }
      dec = PlacementPolicy::Decision{worst, false, "forced"};
    }
  }
  if (dec.device < 0) {
    BumpTenantCounter(tenant, "shed");
    return Status::Unavailable("no device available: every device is lost");
  }
  const size_t dev = static_cast<size_t>(dec.device);

  // Queue-depth shed: bound admitted-but-waiting work per device.
  if (scheds_[dev].depth() >= options_.max_queue_depth) {
    BumpTenantCounter(tenant, "shed");
    if (options_.tracing) {
      trace_.AddInstant(admission_track_, "shed(queue) " + tenant,
                        "admission", arrival);
    }
    return Status::ResourceExhausted(WithRetryAfter(
        DeviceTag(dec.device) + ": admission queue full (depth " +
            std::to_string(scheds_[dev].depth()) + ")",
        ComputeRetryAfter(dec.device)));
  }

  // Memory admission: reserve the estimated working set up front, from the
  // placed device's pool.
  const uint64_t bytes = sub.reservation_bytes > 0
                             ? sub.reservation_bytes
                             : options_.default_reservation_bytes;
  auto reservation = mem::Reservation::Take(pools_[dev], bytes);
  if (!reservation.ok()) {
    BumpTenantCounter(tenant, "shed");
    if (options_.tracing) {
      trace_.AddInstant(admission_track_, "shed(memory) " + tenant,
                        "admission", arrival);
    }
    return Status::ResourceExhausted(
        WithRetryAfter(DeviceTag(dec.device) + ": " +
                           reservation.status().message(),
                       ComputeRetryAfter(dec.device)));
  }

  // Spilling away from a warm device drags the resident working set across
  // the fabric; priced ahead of execution on the target device. Computed
  // before RecordPlacement overwrites the warm pointer.
  const int prev_warm = placer_.warm_device(tenant);
  const double migrate_s =
      (resident && !dec.warm && prev_warm >= 0 && prev_warm != dec.device)
          ? devices_.MigrateSeconds(bytes)
          : 0;
  placer_.RecordPlacement(tenant, dec.device);
  metrics_.GetCounter(std::string("serve.placed_") + dec.reason)->Add();
  metrics_.GetCounter("serve.device." + std::to_string(dec.device) + ".placed")
      ->Add();
  if (options_.tracing) {
    trace_.AddComplete(
        placement_track_,
        std::string("place ") + tenant + " dev" + std::to_string(dec.device) +
            " (" + dec.reason + ")",
        "serve.place", arrival, arrival,
        {{"device", static_cast<double>(dec.device)},
         {"warm", dec.warm ? 1.0 : 0.0},
         {"migrate_s", migrate_s}});
  }

  QueryId id = next_query_id_++;
  auto entry = std::make_unique<Entry>();
  entry->outcome.id = id;
  entry->outcome.tenant = tenant;
  entry->outcome.priority = sub.priority;
  entry->outcome.arrival_s = arrival;
  entry->outcome.device = dec.device;
  entry->outcome.warm_placed = dec.warm;
  entry->normalized_sql = norm;
  entry->timeout_s =
      sub.timeout_s < 0 ? options_.default_timeout_s : sub.timeout_s;
  entry->keep_result = sub.keep_result;
  entry->bypass_cache = sub.bypass_cache;
  entry->catalog_version = version;
  entry->device = dec.device;
  entry->migrate_s = migrate_s;
  entry->inputs_resident = resident;
  entry->reservation_bytes = bytes;
  entry->exec = std::make_shared<ExecState>();
  entry->exec->reservation = std::move(reservation).ValueOrDie();
  entry->future = entry->exec->promise.get_future();

  Entry* raw = entry.get();
  entries_.emplace(id, std::move(entry));
  if (db_ != nullptr) {
    // Charge this execution's spilled bytes to the tenant's quota pool. The
    // handle starts empty; the engine grows it per spilled extent.
    auto spill = mem::Reservation::Take(SpillPoolFor(tenant), 0);
    if (spill.ok()) raw->exec->spill = std::move(spill).ValueOrDie();
    // Kept for tier-loss re-admission (relaunch without re-planning).
    raw->plan = plan;
    LaunchExecution(raw, std::move(plan));
  } else {
    // Cluster backend: ship the SQL; the coordinator plans and fragments.
    auto exec = raw->exec;
    dist::DorisCluster* cluster = cluster_;
    exec_pool_.Submit([exec, cluster, sql] {
      ExecResult r;
      if (exec->cancel.load(std::memory_order_relaxed)) {
        r.status = Status::Timeout("query cancelled before cluster dispatch");
      } else {
        auto res = cluster->Query(sql);
        if (res.ok()) {
          const dist::DistQueryResult& d = res.ValueOrDie();
          r.status = Status::OK();
          r.solo_seconds = d.total_seconds;
          r.table = d.table;
        } else {
          r.status = res.status();
        }
      }
      exec->promise.set_value(std::move(r));
    });
  }

  scheds_[dev].Enqueue(QueuedEntry{id, tenant, sub.priority, arrival});
  UpdateDeviceGauges();
  Pump(arrival);
  return id;
}

void QueryServer::LaunchExecution(Entry* entry, plan::PlanPtr plan) {
  auto exec = entry->exec;
  engine::SiriusEngine* engine = engine_;
  host::Database* db = db_;
  const double deadline = entry->timeout_s;
  fault::FaultInjector* inj = injector();
  exec_pool_.Submit([exec, plan, engine, db, deadline, inj] {
    ExecResult r;
    // Mid-query cancellation fault site: chaos tests flip the cancel flag
    // through the schedule instead of a timer.
    Status cancel_fault = inj->Check(kCancelSite);
    if (!cancel_fault.ok()) exec->cancel.store(true, std::memory_order_relaxed);

    engine::ExecLimits limits;
    limits.deadline_s = deadline;  // queue wait is enforced by the server
    limits.cancel = &exec->cancel;
    limits.reservation = &exec->reservation;
    limits.spill = &exec->spill;
    auto res = engine->ExecutePlan(plan, limits);
    if (!res.ok() && res.status().IsUnsupportedOnDevice() && db != nullptr) {
      auto cpu = db->ExecutePlanCpu(plan);
      if (cpu.ok()) {
        r.fell_back = true;
        res = std::move(cpu);
      }
    }
    if (res.ok()) {
      const host::QueryResult& q = res.ValueOrDie();
      r.status = Status::OK();
      r.solo_seconds = q.timeline.total_seconds();
      r.table = q.table;
    } else {
      r.status = res.status();
    }
    exec->promise.set_value(std::move(r));
  });
}

int QueryServer::EarliestDecision(double* start_s) const {
  int best_device = -1;
  double best_start = kInf;
  for (int d = 0; d < devices_.num_devices(); ++d) {
    if (devices_.lost(d) || scheds_[static_cast<size_t>(d)].empty()) continue;
    const double ready = scheds_[static_cast<size_t>(d)].EarliestArrival();
    const double start = devices_.EarliestStart(d, ready);
    if (start < best_start) {
      best_start = start;
      best_device = d;
    }
  }
  *start_s = best_start;
  return best_device;
}

void QueryServer::Pump(double until_s) {
  QueuedEntry next;
  for (;;) {
    double start = kInf;
    const int dev = EarliestDecision(&start);
    if (dev < 0 || start > until_s) break;
    if (!scheds_[static_cast<size_t>(dev)].PopNext(start, &next)) break;
    auto it = entries_.find(next.query_id);
    SIRIUS_CHECK(it != entries_.end());
    DispatchEntry(it->second.get(), start);
  }
  UpdateDeviceGauges();
}

void QueryServer::DispatchEntry(Entry* entry, double ready_s) {
  QueryOutcome& out = entry->outcome;
  out.state = QueryState::kRunning;
  now_s_ = std::max(now_s_, ready_s);
  const double deadline =
      entry->timeout_s > 0 ? out.arrival_s + entry->timeout_s : kInf;
  sim::StreamSet& streams = devices_.streams(entry->device);

  if (ready_s >= deadline) {
    // The deadline passed while the query sat in the queue: cancel the real
    // execution (its result is discarded) and charge nothing to a stream.
    entry->exec->cancel.store(true, std::memory_order_relaxed);
    ExecResult discarded = entry->future.get();
    (void)discarded;
    entry->exec->reservation.Release();
    entry->exec->spill.Release();
    entry->requeue_reservation.Release();
    out.state = QueryState::kTimedOut;
    out.dispatch_s = deadline;
    out.finish_s = deadline;
    out.status = Status::Timeout(
        "deadline expired in admission queue (waited " +
        std::to_string(deadline - out.arrival_s) + "s)");
    Finalize(entry);
    return;
  }

  // Join the real execution; every simulated instant below derives from its
  // charged timeline plus stream arbitration.
  ExecResult r = entry->future.get();
  entry->exec->reservation.Release();
  entry->exec->spill.Release();
  entry->requeue_reservation.Release();

  // A mid-spill tier loss voided staged extents out from under the query.
  // The engine already revived the tiers and re-ran once; if the loss still
  // surfaced here, re-admission is the second line of defense (mirroring
  // the device-loss protocol): relaunch the kept plan through a fresh
  // execution, once per query.
  if (!r.status.ok() && r.status.IsUnavailable() && entry->plan != nullptr &&
      !entry->tier_requeued &&
      r.status.message().find("spill tier lost") != std::string::npos) {
    entry->tier_requeued = true;
    auto reservation = mem::Reservation::Take(
        pools_[static_cast<size_t>(entry->device)], entry->reservation_bytes);
    if (reservation.ok()) {
      entry->exec = std::make_shared<ExecState>();
      entry->exec->reservation = std::move(reservation).ValueOrDie();
      auto spill = mem::Reservation::Take(SpillPoolFor(out.tenant), 0);
      if (spill.ok()) entry->exec->spill = std::move(spill).ValueOrDie();
      entry->future = entry->exec->promise.get_future();
      out.state = QueryState::kQueued;
      LaunchExecution(entry, entry->plan);
      scheds_[static_cast<size_t>(entry->device)].Enqueue(
          QueuedEntry{out.id, out.tenant, out.priority, ready_s});
      BumpTenantCounter(out.tenant, "tier_requeued");
      if (options_.tracing) {
        trace_.AddInstant(placement_track_,
                          "tier-loss-requeue q" + std::to_string(out.id),
                          "serve.place", ready_s);
      }
      return;
    }
    // Admission cannot cover the relaunch right now: shed with a hint —
    // the loss was the system's fault, not the query's.
    out.state = QueryState::kShed;
    out.status = Status::ResourceExhausted(WithRetryAfter(
        DeviceTag(entry->device) + ": " + reservation.status().message(),
        ComputeRetryAfter(entry->device)));
    out.retry_after_s = RetryAfterHint(out.status);
    out.dispatch_s = ready_s;
    out.finish_s = ready_s;
    BumpTenantCounter(out.tenant, "shed");
    Finalize(entry);
    return;
  }

  // Tenant spill-quota exhaustion is an admission-class refusal, not a
  // query failure: shed with the engine's retry-after hint so the tenant
  // backs off while its other queries drain their staged bytes.
  if (!r.status.ok() && r.status.IsResourceExhausted() &&
      r.status.message().find("spill") != std::string::npos) {
    out.state = QueryState::kShed;
    out.status = RetryAfterHint(r.status) > 0
                     ? r.status
                     : Status::ResourceExhausted(WithRetryAfter(
                           r.status.message(), ComputeRetryAfter(entry->device)));
    out.retry_after_s = RetryAfterHint(out.status);
    out.dispatch_s = ready_s;
    out.finish_s = ready_s;
    BumpTenantCounter(out.tenant, "spill_quota_shed");
    BumpTenantCounter(out.tenant, "shed");
    Finalize(entry);
    return;
  }

  if (!r.status.ok() && !r.status.IsTimeout()) {
    out.state = QueryState::kFailed;
    out.status = r.status;
    out.dispatch_s = ready_s;
    out.finish_s = ready_s;
    Finalize(entry);
    return;
  }

  // An engine-side Timeout means execution alone exceeded the budget: the
  // lane stays busy up to the deadline, then the cancellation frees it. A
  // cancellation with no deadline (chaos "serve.cancel", shutdown) has no
  // well-defined occupancy — it ends where it started.
  const bool engine_timeout = r.status.IsTimeout();
  if (engine_timeout && !std::isfinite(deadline)) {
    out.state = QueryState::kTimedOut;
    out.status = r.status;
    out.dispatch_s = ready_s;
    out.finish_s = ready_s;
    Finalize(entry);
    return;
  }
  // A migrating placement pays the fabric transfer ahead of execution on
  // the target device's stream (it stretches under contention like any
  // other occupancy).
  const double solo = engine_timeout
                          ? std::max(deadline - ready_s, 0.0)
                          : r.solo_seconds;
  const double occupancy = engine_timeout ? solo : solo + entry->migrate_s;
  sim::StreamSet::Placement p = streams.Place(ready_s, occupancy);
  out.dispatch_s = p.start_s;
  out.stream = p.stream;
  out.device = entry->device;
  out.slowdown = p.slowdown;
  out.exec_solo_s = solo;
  out.migrate_s = entry->migrate_s;
  now_s_ = std::max(now_s_, p.start_s);

  const bool timed_out = engine_timeout || p.end_s > deadline;
  if (timed_out) {
    streams.Truncate(p.stream, deadline);
    out.state = QueryState::kTimedOut;
    out.finish_s = deadline;
    out.status = engine_timeout
                     ? r.status
                     : Status::Timeout(
                           "deadline exceeded mid-flight (needed until " +
                           std::to_string(p.end_s) + "s)");
    scheds_[static_cast<size_t>(entry->device)].Charge(
        out.tenant, std::max(deadline - p.start_s, 0.0));
  } else {
    out.state = QueryState::kCompleted;
    out.status = Status::OK();
    out.finish_s = p.end_s;
    out.fell_back = r.fell_back;
    if (r.table != nullptr) out.result_rows = r.table->num_rows();
    if (entry->keep_result) out.table = r.table;
    if (!entry->bypass_cache) {
      cache_.InsertResult(entry->normalized_sql, entry->catalog_version,
                          QueryCache::CachedResult{r.table, solo});
      if (options_.on_result_fill && r.table != nullptr) {
        // The cluster tier replicates this fill to peer caches. The
        // callback runs under mu_ and only records the event.
        ResultFillEvent fill;
        fill.normalized_sql = entry->normalized_sql;
        fill.catalog_version = entry->catalog_version;
        fill.result = QueryCache::CachedResult{r.table, solo};
        fill.tenant = out.tenant;
        fill.completed_at_s = out.finish_s;
        options_.on_result_fill(fill);
      }
    }
    scheds_[static_cast<size_t>(entry->device)].Charge(out.tenant,
                                                       p.end_s - p.start_s);
    mean_exec_s_ =
        (mean_exec_s_ * static_cast<double>(exec_samples_) + solo) /
        static_cast<double>(exec_samples_ + 1);
    ++exec_samples_;
  }
  Finalize(entry);
}

void QueryServer::Finalize(Entry* entry) {
  const QueryOutcome& out = entry->outcome;
  switch (out.state) {
    case QueryState::kCompleted:
      BumpTenantCounter(out.tenant, "completed");
      break;
    case QueryState::kTimedOut:
      BumpTenantCounter(out.tenant, "timed_out");
      break;
    case QueryState::kFailed:
      BumpTenantCounter(out.tenant, "failed");
      break;
    default:
      break;
  }
  if (options_.tracing) {
    const size_t track =
        static_cast<size_t>(entry->device) *
            static_cast<size_t>(options_.num_streams) +
        static_cast<size_t>(out.stream >= 0 ? out.stream : 0);
    if (out.stream >= 0 && track < stream_tracks_.size()) {
      trace_.AddComplete(
          stream_tracks_[track],
          "q" + std::to_string(out.id) + " " + out.tenant,
          out.state == QueryState::kTimedOut ? "timeout" : "query",
          out.dispatch_s, out.finish_s,
          {{"slowdown", out.slowdown},
           {"queue_wait_s", out.queue_wait_s()},
           {"solo_s", out.exec_solo_s},
           {"device", static_cast<double>(out.device)},
           {"migrate_s", out.migrate_s}});
    } else if (out.state == QueryState::kTimedOut) {
      trace_.AddInstant(admission_track_,
                        "queue-timeout q" + std::to_string(out.id), "timeout",
                        out.finish_s);
    }
  }
  now_s_ = std::max(now_s_, out.dispatch_s);
}

Result<QueryOutcome> QueryServer::Resolve(QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::KeyError("Resolve: unknown query " + std::to_string(id));
  }
  Entry* target = it->second.get();
  QueuedEntry next;
  while (!target->outcome.terminal()) {
    double start = kInf;
    const int dev = EarliestDecision(&start);
    if (dev < 0) {
      return Status::Internal("Resolve: query " + std::to_string(id) +
                              " is neither queued nor terminal");
    }
    if (!scheds_[static_cast<size_t>(dev)].PopNext(start, &next)) {
      return Status::Internal("Resolve: scheduler stalled");
    }
    auto nit = entries_.find(next.query_id);
    SIRIUS_CHECK(nit != entries_.end());
    DispatchEntry(nit->second.get(), start);
  }
  UpdateDeviceGauges();
  return target->outcome;
}

double QueryServer::NextDispatchTime() const {
  std::lock_guard<std::mutex> lock(mu_);
  double start = kInf;
  (void)EarliestDecision(&start);
  return start;
}

Result<QueryOutcome> QueryServer::Step() {
  std::lock_guard<std::mutex> lock(mu_);
  double start = kInf;
  const int dev = EarliestDecision(&start);
  if (dev < 0) return Status::Invalid("Step: nothing queued");
  QueuedEntry next;
  if (!scheds_[static_cast<size_t>(dev)].PopNext(start, &next)) {
    return Status::Internal("Step: scheduler stalled");
  }
  auto it = entries_.find(next.query_id);
  SIRIUS_CHECK(it != entries_.end());
  DispatchEntry(it->second.get(), start);
  UpdateDeviceGauges();
  return it->second->outcome;
}

Result<QueryOutcome> QueryServer::Peek(QueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    return Status::KeyError("Peek: unknown query " + std::to_string(id));
  }
  return it->second->outcome;
}

Status QueryServer::DrainAll() {
  std::lock_guard<std::mutex> lock(mu_);
  Pump(kInf);
  return Status::OK();
}

void QueryServer::InstallCachedResult(const std::string& normalized_sql,
                                      uint64_t catalog_version,
                                      QueryCache::CachedResult result) {
  cache_.InsertResult(normalized_sql, catalog_version, std::move(result));
}

bool QueryServer::LookupCachedResult(const std::string& normalized_sql,
                                     uint64_t catalog_version,
                                     QueryCache::CachedResult* out) {
  return cache_.LookupResult(normalized_sql, catalog_version, out);
}

size_t QueryServer::EvictStaleCache(uint64_t current_version) {
  return cache_.EvictStale(current_version);
}

std::vector<QueryOutcome> QueryServer::Outcomes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryOutcome> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    (void)id;
    out.push_back(entry->outcome);
  }
  return out;
}

}  // namespace sirius::serve
