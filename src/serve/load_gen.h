// Closed- and open-loop workload driver for the serving layer.
//
// Replays a TPC-H query mix against a QueryServer from N simulated clients
// and reports latency percentiles and throughput — all in *simulated* time
// (queries-per-simulated-second), so numbers are deterministic for a fixed
// seed and warm caches.
//
//  * Closed loop: each client keeps exactly one query outstanding, submits
//    the next `think_time_s` after the previous completes (the paper's
//    interactive-analytics setting). Offered load adapts to service rate.
//  * Open loop: arrivals follow a seeded exponential process at
//    `arrival_rate_qps` regardless of completions, so overload actually
//    overloads — shed + retry behavior is exercised.
//
// Randomness (arrival gaps, query choice, lane choice) comes from one
// seeded std::mt19937_64 with explicit inverse-CDF draws, never from
// distribution adapters whose output is implementation-defined.

#pragma once

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/serve.h"

namespace sirius::serve {

/// Workload family a QueryRef draws from.
enum class Workload { kTpch, kSsb };

/// One entry of a tenant's query mix: a query number within a family
/// (TPC-H 1-22, SSB 1-13).
struct QueryRef {
  Workload family = Workload::kTpch;
  int query = 1;
};

struct LoadOptions {
  int num_clients = 16;
  /// Closed loop: queries each client completes (or abandons).
  int queries_per_client = 4;
  double think_time_s = 0;

  bool open_loop = false;
  /// Open loop: mean arrivals per simulated second across all clients.
  double arrival_rate_qps = 100;
  /// Open loop: arrivals are generated in [0, duration_s).
  double duration_s = 1.0;
  /// Open loop: absolute arrival rates (qps) for hot tenants. A tenant
  /// listed here gets its own seeded Poisson stream at the given rate,
  /// round-robined over that tenant's client slots; the base
  /// `arrival_rate_qps` stream then covers only the remaining clients.
  /// Each override stream draws from its own generator (seed derived from
  /// `seed` and the tenant name), so adding or retuning one hot tenant
  /// never perturbs the base stream or the other tenants' arrivals.
  std::map<std::string, double> tenant_arrival_rate_qps;

  /// TPC-H query numbers drawn uniformly per submission (tenants without a
  /// `tenant_mix` entry).
  std::vector<int> query_mix = {1, 3, 5, 6, 10, 12, 14, 19};
  /// Per-tenant workload mixes: a tenant listed here draws uniformly from
  /// its own (family, query) list instead of `query_mix`, so one tenant can
  /// replay SSB while another replays TPC-H against the same server
  /// (heterogeneous cache/placement/spill pressure). The catalog must hold
  /// both families' tables (table names are disjoint).
  std::map<std::string, std::vector<QueryRef>> tenant_mix;
  /// Clients are assigned tenants round-robin; empty = one "default" tenant.
  /// Tenants must already be registered on the server (or default weight 1).
  std::vector<std::string> tenants;
  /// Fraction of submissions routed to the interactive lane (priority 1).
  double interactive_fraction = 0;

  /// Forwarded to SubmitOptions (same semantics: <0 = server default).
  double timeout_s = -1;
  uint64_t reservation_bytes = 0;
  bool bypass_cache = false;

  uint64_t seed = 42;
  /// Shed submissions are retried after the server's retry-after hint, at
  /// most this many times, then abandoned.
  int max_retries = 3;
};

struct LoadReport {
  uint64_t submitted = 0;  ///< submit calls, including retries
  uint64_t completed = 0;  ///< terminal kCompleted (cache hits included)
  uint64_t cache_hits = 0;
  uint64_t shed = 0;       ///< shed submit calls
  /// Admitted queries shed after the fact — a device loss requeued them and
  /// the survivor pools refused the re-admission.
  uint64_t requeue_shed = 0;
  uint64_t abandoned = 0;  ///< queries given up after max_retries sheds
  uint64_t timed_out = 0;
  uint64_t failed = 0;
  uint64_t retries = 0;

  double makespan_s = 0;  ///< last finish - first arrival, simulated
  /// Completed queries per simulated second over the makespan.
  double qps = 0;
  /// Total device-charged execution time across completed queries.
  double total_exec_s = 0;

  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  /// Completed-query latencies, sorted ascending (determinism assertions).
  std::vector<double> latencies_ms;

  /// Device seconds charged per tenant (fairness assertions).
  std::map<std::string, double> tenant_exec_s;
  std::map<std::string, uint64_t> tenant_completed;
};

/// One open-loop arrival: submit time plus the client slot it lands on.
struct OpenLoopArrival {
  double at_s = 0;
  size_t client = 0;
};

/// Generates the open-loop arrival schedule for `options` starting at
/// `start_s`, in deterministic generation order (base stream first, then
/// one derived stream per `tenant_arrival_rate_qps` entry in map order).
/// With no overrides this consumes `rng` exactly as the legacy inline loop
/// did, so existing seeds reproduce bit-identical schedules. Exposed for
/// golden determinism checks.
std::vector<OpenLoopArrival> GenerateOpenLoopArrivals(
    const LoadOptions& options, double start_s, std::mt19937_64* rng);

/// \brief Drives a QueryService (one QueryServer or a federated
/// ServeCluster) with a synthetic multi-tenant workload.
class LoadGenerator {
 public:
  LoadGenerator(QueryService* server, LoadOptions options);

  /// Runs the configured workload to completion and reports.
  Result<LoadReport> Run();

 private:
  /// Deterministic uniform in [0, 1) from the seeded generator.
  double Uniform();
  /// Next SQL text drawn from `tenant`'s mix (falls back to `query_mix`).
  const std::string& PickSql(const std::string& tenant);

  QueryService* server_;
  LoadOptions options_;
  std::mt19937_64 rng_;
};

/// Sorted-percentile helper shared by reports (p in [0, 100]).
double Percentile(const std::vector<double>& sorted_values, double p);

}  // namespace sirius::serve
