#include "serve/query_cache.h"

#include <cctype>

namespace sirius::serve {

std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_literal = false;
  bool pending_space = false;
  for (char c : sql) {
    if (in_literal) {
      out.push_back(c);
      if (c == '\'') in_literal = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    if (c == '\'') {
      in_literal = true;
      out.push_back(c);
    } else {
      out.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  return out;
}

QueryCache::Entry* QueryCache::FindLive(const std::string& key,
                                        uint64_t version) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  if (it->second.version != version) {
    ++stats_.invalidations;
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return &it->second;
}

QueryCache::Entry* QueryCache::Touch(const std::string& key,
                                     uint64_t version) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.version != version) {
      // Rebuilt under a newer catalog: start the entry over in place.
      ++stats_.invalidations;
      auto lru_it = it->second.lru_it;
      it->second = Entry{};
      it->second.lru_it = lru_it;
    }
  } else {
    lru_.push_front(key);
    it = entries_.emplace(key, Entry{}).first;
    it->second.lru_it = lru_.begin();
    while (entries_.size() > options_.max_entries && !lru_.empty()) {
      entries_.erase(lru_.back());
      lru_.pop_back();
      ++stats_.evictions;
    }
  }
  it->second.version = version;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return &it->second;
}

plan::PlanPtr QueryCache::LookupPlan(const std::string& normalized_sql,
                                     uint64_t catalog_version) {
  if (!options_.cache_plans) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindLive(normalized_sql, catalog_version);
  if (e == nullptr || e->plan == nullptr) {
    ++stats_.plan_misses;
    return nullptr;
  }
  ++stats_.plan_hits;
  return e->plan;
}

void QueryCache::InsertPlan(const std::string& normalized_sql,
                            uint64_t catalog_version, plan::PlanPtr plan) {
  if (!options_.cache_plans || plan == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  Touch(normalized_sql, catalog_version)->plan = std::move(plan);
}

bool QueryCache::LookupResult(const std::string& normalized_sql,
                              uint64_t catalog_version, CachedResult* out) {
  if (!options_.cache_results) return false;
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindLive(normalized_sql, catalog_version);
  if (e == nullptr || !e->has_result) {
    ++stats_.result_misses;
    return false;
  }
  ++stats_.result_hits;
  *out = e->result;
  return true;
}

void QueryCache::InsertResult(const std::string& normalized_sql,
                              uint64_t catalog_version, CachedResult result) {
  if (!options_.cache_results) return;
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = Touch(normalized_sql, catalog_version);
  e->has_result = true;
  e->result = std::move(result);
}

bool QueryCache::HasLiveEntry(const std::string& normalized_sql,
                              uint64_t catalog_version) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(normalized_sql);
  return it != entries_.end() && it->second.version == catalog_version;
}

size_t QueryCache::EvictStale(uint64_t current_version) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.version < current_version) {
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
      ++stats_.invalidations;
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

void QueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

QueryCache::Stats QueryCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t QueryCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace sirius::serve
