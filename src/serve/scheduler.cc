#include "serve/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sirius::serve {

void FairScheduler::RegisterTenant(const std::string& tenant, double weight) {
  Tenant& t = GetTenant(tenant);
  t.weight = std::max(weight, 1e-9);
}

FairScheduler::Tenant& FairScheduler::GetTenant(const std::string& name) {
  return tenants_[name];  // default weight 1, pass 0
}

double FairScheduler::VirtualTime() const {
  double vt = std::numeric_limits<double>::infinity();
  for (const auto& [name, t] : tenants_) {
    (void)name;
    if (t.lanes[0].empty() && t.lanes[1].empty()) continue;
    vt = std::min(vt, t.pass);
  }
  return std::isinf(vt) ? 0 : vt;
}

void FairScheduler::Enqueue(const QueuedEntry& entry) {
  Tenant& t = GetTenant(entry.tenant);
  // Forward an idle tenant's pass to the current virtual time: it competes
  // from "now" instead of burning down a surplus accumulated while idle.
  if (t.lanes[0].empty() && t.lanes[1].empty()) {
    t.pass = std::max(t.pass, VirtualTime());
  }
  t.lanes[entry.priority > 0 ? 1 : 0].push_back(entry);
  ++depth_;
}

bool FairScheduler::PopNext(double now_s, QueuedEntry* out) {
  // Interactive lane strictly before batch; smallest pass within a lane,
  // ties broken by tenant name for determinism.
  for (int lane = 1; lane >= 0; --lane) {
    Tenant* best = nullptr;
    for (auto& [name, t] : tenants_) {
      (void)name;
      if (t.lanes[lane].empty()) continue;
      if (t.lanes[lane].front().arrival_s > now_s) continue;
      if (best == nullptr || t.pass < best->pass) best = &t;
    }
    if (best != nullptr) {
      *out = best->lanes[lane].front();
      best->lanes[lane].pop_front();
      --depth_;
      return true;
    }
  }
  return false;
}

void FairScheduler::Charge(const std::string& tenant, double device_seconds) {
  Tenant& t = GetTenant(tenant);
  t.pass += device_seconds / t.weight;
  t.charged += device_seconds;
}

size_t FairScheduler::Depth(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0;
  return it->second.lanes[0].size() + it->second.lanes[1].size();
}

double FairScheduler::EarliestArrival() const {
  double earliest = std::numeric_limits<double>::infinity();
  for (const auto& [name, t] : tenants_) {
    (void)name;
    for (const auto& lane : t.lanes) {
      for (const auto& e : lane) earliest = std::min(earliest, e.arrival_s);
    }
  }
  return earliest;
}

std::vector<QueuedEntry> FairScheduler::Drain() {
  std::vector<QueuedEntry> out;
  out.reserve(depth_);
  for (auto& [name, t] : tenants_) {
    (void)name;
    for (auto& lane : t.lanes) {
      for (const auto& e : lane) out.push_back(e);
      lane.clear();
    }
  }
  depth_ = 0;
  std::sort(out.begin(), out.end(),
            [](const QueuedEntry& a, const QueuedEntry& b) {
              return a.arrival_s != b.arrival_s ? a.arrival_s < b.arrival_s
                                                : a.query_id < b.query_id;
            });
  return out;
}

PlacementPolicy::Decision PlacementPolicy::Place(
    const std::string& tenant, bool inputs_resident,
    const std::vector<double>& backlog_s,
    const std::vector<bool>& alive) const {
  Decision d;
  // Least-loaded alive device, ties to the lowest index.
  for (size_t i = 0; i < alive.size(); ++i) {
    if (!alive[i]) continue;
    if (d.device < 0 || backlog_s[i] < backlog_s[static_cast<size_t>(d.device)]) {
      d.device = static_cast<int>(i);
    }
  }
  if (d.device < 0) return d;  // nothing alive

  const int warm = warm_device(tenant);
  if (warm < 0 || warm >= static_cast<int>(alive.size()) ||
      !alive[static_cast<size_t>(warm)]) {
    d.reason = "cold";
    return d;
  }
  if (!inputs_resident) {
    // Nothing to be warm about: the inputs would be (re)loaded wherever the
    // query lands, so balance wins outright.
    d.reason = "cold";
    return d;
  }
  const double warm_backlog = backlog_s[static_cast<size_t>(warm)];
  const double least_backlog = backlog_s[static_cast<size_t>(d.device)];
  if (warm_backlog <=
      options_.imbalance_ratio * least_backlog + options_.imbalance_slack_s) {
    d.device = warm;
    d.warm = true;
    d.reason = "warm";
    return d;
  }
  d.reason = "spill";
  return d;
}

void PlacementPolicy::RecordPlacement(const std::string& tenant, int device) {
  warm_[tenant] = device;
}

void PlacementPolicy::ForgetDevice(int device) {
  for (auto it = warm_.begin(); it != warm_.end();) {
    if (it->second == device) {
      it = warm_.erase(it);
    } else {
      ++it;
    }
  }
}

int PlacementPolicy::warm_device(const std::string& tenant) const {
  auto it = warm_.find(tenant);
  return it == warm_.end() ? -1 : it->second;
}

double FairScheduler::weight(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 1.0 : it->second.weight;
}

double FairScheduler::charged(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.charged;
}

}  // namespace sirius::serve
