// Plan + result caching for the serving layer, keyed on normalized SQL.
//
// Serving workloads repeat: dashboards refresh the same queries, many
// sessions issue textually-near-identical SQL. The cache stores optimized
// plans (skipping parse/bind/optimize) and, for fully repeated statements,
// the result table itself (skipping execution entirely).
//
// Every entry is stamped with the catalog write-version it was built under
// (host::Catalog::version()); a lookup presenting a newer version treats the
// entry as invalid — any catalog write may change any cached answer, so the
// invalidation is coarse and correct rather than precise.

#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

#include "format/table.h"
#include "plan/plan.h"

namespace sirius::serve {

/// Canonicalizes SQL for cache keying: lowercases everything outside
/// single-quoted string literals and collapses runs of whitespace to one
/// space (trimmed). "SELECT  *\nFROM t" and "select * from t" share a key;
/// literal case ('BRAZIL') is preserved.
std::string NormalizeSql(const std::string& sql);

/// \brief LRU cache of optimized plans and result tables, version-stamped
/// against the catalog. Thread-safe.
class QueryCache {
 public:
  struct Options {
    size_t max_entries = 256;
    bool cache_plans = true;
    bool cache_results = true;
  };

  struct Stats {
    uint64_t plan_hits = 0;
    uint64_t plan_misses = 0;
    uint64_t result_hits = 0;
    uint64_t result_misses = 0;
    uint64_t invalidations = 0;  ///< entries discarded for a stale version
    uint64_t evictions = 0;      ///< entries discarded by LRU capacity
  };

  /// One cached result: the table plus the simulated execution cost the
  /// original run charged (reports attribute saved device-seconds to hits).
  struct CachedResult {
    format::TablePtr table;
    double exec_seconds = 0;
  };

  explicit QueryCache(Options options) : options_(options) {}

  /// Plan for `normalized_sql` built under `catalog_version`, or null on
  /// miss. A version mismatch discards the entry (counted as invalidation).
  plan::PlanPtr LookupPlan(const std::string& normalized_sql,
                           uint64_t catalog_version);
  void InsertPlan(const std::string& normalized_sql, uint64_t catalog_version,
                  plan::PlanPtr plan);

  /// Result lookup with the same version discipline.
  bool LookupResult(const std::string& normalized_sql,
                    uint64_t catalog_version, CachedResult* out);
  void InsertResult(const std::string& normalized_sql,
                    uint64_t catalog_version, CachedResult result);

  /// True when a live (version-matching) entry exists for `normalized_sql`
  /// — plan or result. The placement policy reads this as "this statement
  /// ran recently against the current catalog", one of the warm-device
  /// signals; it does not touch LRU order or hit/miss counters.
  bool HasLiveEntry(const std::string& normalized_sql,
                    uint64_t catalog_version) const;

  /// Drops every entry stamped with a version older than `current_version`
  /// and returns how many were dropped (counted as invalidations). Version
  /// stamping already makes lazy invalidation correct; the cluster tier
  /// calls this eagerly when a catalog-write invalidation arrives over the
  /// fabric so replica occupancy reflects live entries only.
  size_t EvictStale(uint64_t current_version);

  /// Drops everything (tests; version stamping handles correctness).
  void Clear();

  Stats stats() const;
  size_t size() const;

 private:
  struct Entry {
    uint64_t version = 0;
    plan::PlanPtr plan;  ///< may be null (result cached via a bypassed plan)
    bool has_result = false;
    CachedResult result;
    std::list<std::string>::iterator lru_it;
  };

  /// Returns the live entry for `key`/`version`, dropping a stale one.
  /// Caller holds mu_.
  Entry* FindLive(const std::string& key, uint64_t version);
  /// Returns (creating if needed) the entry for `key`, moving it to the LRU
  /// front and evicting from the tail past capacity. Caller holds mu_.
  Entry* Touch(const std::string& key, uint64_t version);

  const Options options_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  ///< front = most recent
  Stats stats_;
};

}  // namespace sirius::serve
