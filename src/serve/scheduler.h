// Weighted fair scheduling for the serving layer.
//
// Stride scheduling over per-tenant FIFO queues: each tenant carries a
// virtual "pass" that advances by charged-device-seconds / weight whenever
// one of its queries runs, and dispatch always picks the eligible tenant
// with the smallest pass. Over any busy interval, tenant device time
// converges to the weight ratio regardless of per-query durations.
//
// Two priority lanes ride on top: interactive entries (priority > 0) are
// always considered before batch entries, each lane running its own
// weighted-fair pick. A tenant that goes idle and returns has its pass
// forwarded to the current virtual time so it cannot claim a catch-up burst
// against tenants that kept the device busy.
//
// Not internally synchronized: like sim::StreamSet, decisions must be made
// in simulated-time order, so the owner (serve::QueryServer) serializes.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

namespace sirius::serve {

/// \brief One queued admission: everything the dispatcher needs to pick and
/// place a query, opaque to the scheduler beyond tenant/priority/arrival.
struct QueuedEntry {
  uint64_t query_id = 0;
  std::string tenant;
  int priority = 0;      ///< > 0: interactive lane, dispatched first
  double arrival_s = 0;  ///< simulated arrival (admission) time
};

/// \brief Stride scheduler with per-tenant weighted queues + priority lanes.
class FairScheduler {
 public:
  /// Registers `tenant` with a relative `weight` (> 0). Re-registering
  /// updates the weight. Unregistered tenants get weight 1 on first use.
  void RegisterTenant(const std::string& tenant, double weight);

  void Enqueue(const QueuedEntry& entry);

  /// Picks the next entry to dispatch at simulated time `now_s`: interactive
  /// lane first, then batch; within a lane, the smallest-pass tenant among
  /// those with an entry that has already arrived (`arrival_s <= now_s`).
  /// Returns false when nothing is eligible.
  bool PopNext(double now_s, QueuedEntry* out);

  /// Charges `device_seconds` of execution to `tenant`, advancing its pass
  /// by device_seconds / weight. Called once per dispatched query as soon as
  /// its charged duration is known.
  void Charge(const std::string& tenant, double device_seconds);

  size_t depth() const { return depth_; }
  size_t Depth(const std::string& tenant) const;
  /// Earliest arrival among all queued entries; +inf when empty.
  double EarliestArrival() const;
  bool empty() const { return depth_ == 0; }

  double weight(const std::string& tenant) const;
  /// Total device seconds charged to `tenant` so far.
  double charged(const std::string& tenant) const;

 private:
  struct Tenant {
    double weight = 1.0;
    double pass = 0;     ///< virtual time; smallest eligible pass runs next
    double charged = 0;  ///< total device seconds charged
    std::deque<QueuedEntry> lanes[2];  ///< [0]=batch, [1]=interactive
  };

  Tenant& GetTenant(const std::string& name);
  /// Smallest pass among tenants with any queued entry (the current virtual
  /// time); 0 when everything is idle.
  double VirtualTime() const;

  std::map<std::string, Tenant> tenants_;
  size_t depth_ = 0;
};

}  // namespace sirius::serve
