// Weighted fair scheduling for the serving layer.
//
// Stride scheduling over per-tenant FIFO queues: each tenant carries a
// virtual "pass" that advances by charged-device-seconds / weight whenever
// one of its queries runs, and dispatch always picks the eligible tenant
// with the smallest pass. Over any busy interval, tenant device time
// converges to the weight ratio regardless of per-query durations.
//
// Two priority lanes ride on top: interactive entries (priority > 0) are
// always considered before batch entries, each lane running its own
// weighted-fair pick. A tenant that goes idle and returns has its pass
// forwarded to the current virtual time so it cannot claim a catch-up burst
// against tenants that kept the device busy.
//
// Not internally synchronized: like sim::StreamSet, decisions must be made
// in simulated-time order, so the owner (serve::QueryServer) serializes.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace sirius::serve {

/// \brief One queued admission: everything the dispatcher needs to pick and
/// place a query, opaque to the scheduler beyond tenant/priority/arrival.
struct QueuedEntry {
  uint64_t query_id = 0;
  std::string tenant;
  int priority = 0;      ///< > 0: interactive lane, dispatched first
  double arrival_s = 0;  ///< simulated arrival (admission) time
};

/// \brief Stride scheduler with per-tenant weighted queues + priority lanes.
class FairScheduler {
 public:
  /// Registers `tenant` with a relative `weight` (> 0). Re-registering
  /// updates the weight. Unregistered tenants get weight 1 on first use.
  void RegisterTenant(const std::string& tenant, double weight);

  void Enqueue(const QueuedEntry& entry);

  /// Picks the next entry to dispatch at simulated time `now_s`: interactive
  /// lane first, then batch; within a lane, the smallest-pass tenant among
  /// those with an entry that has already arrived (`arrival_s <= now_s`).
  /// Returns false when nothing is eligible.
  bool PopNext(double now_s, QueuedEntry* out);

  /// Charges `device_seconds` of execution to `tenant`, advancing its pass
  /// by device_seconds / weight. Called once per dispatched query as soon as
  /// its charged duration is known.
  void Charge(const std::string& tenant, double device_seconds);

  size_t depth() const { return depth_; }
  size_t Depth(const std::string& tenant) const;
  /// Earliest arrival among all queued entries; +inf when empty.
  double EarliestArrival() const;
  bool empty() const { return depth_ == 0; }

  /// Removes and returns every queued entry, ordered by (arrival, query id)
  /// — the deterministic order in which a lost device's work re-enters
  /// admission on the survivors. Pass state is untouched.
  std::vector<QueuedEntry> Drain();

  double weight(const std::string& tenant) const;
  /// Total device seconds charged to `tenant` so far.
  double charged(const std::string& tenant) const;

 private:
  struct Tenant {
    double weight = 1.0;
    double pass = 0;     ///< virtual time; smallest eligible pass runs next
    double charged = 0;  ///< total device seconds charged
    std::deque<QueuedEntry> lanes[2];  ///< [0]=batch, [1]=interactive
  };

  Tenant& GetTenant(const std::string& name);
  /// Smallest pass among tenants with any queued entry (the current virtual
  /// time); 0 when everything is idle.
  double VirtualTime() const;

  std::map<std::string, Tenant> tenants_;
  size_t depth_ = 0;
};

/// \brief Locality-aware device placement over a device group.
///
/// Tracks each tenant's *warm* device — the one its last query was placed
/// on, where the engine's cached inputs and result-cache entries were
/// produced. Placement keeps a tenant on its warm device while (a) the
/// query's inputs are actually resident (the caller consults BufferManager
/// residency and result-cache entry stamps) and (b) the warm device's
/// backlog stays within `imbalance_ratio` of the least-loaded alive
/// device's. Otherwise the query spills to the least-loaded device (ties to
/// the lowest index, so decisions replay deterministically).
class PlacementPolicy {
 public:
  struct Options {
    /// Spill away from the warm device when its backlog exceeds the
    /// least-loaded alive device's by more than this factor.
    double imbalance_ratio = 2.0;
    /// Backlog slack (seconds) ignored by the imbalance test, so a warm
    /// device is not abandoned over sub-millisecond noise.
    double imbalance_slack_s = 1e-3;
  };

  /// Why a device was chosen (stable strings for metrics/trace labels).
  struct Decision {
    int device = -1;          ///< -1: no device alive
    bool warm = false;        ///< kept on the tenant's warm device
    const char* reason = "cold";  ///< "warm" | "cold" | "spill" | "forced"
  };

  PlacementPolicy() = default;
  explicit PlacementPolicy(Options options) : options_(options) {}

  /// Picks a device for `tenant`. `backlog_s[d]` is the projected backlog of
  /// device d in simulated seconds (+inf for lost devices); `alive[d]` its
  /// liveness. `inputs_resident` is the caller's residency consult.
  Decision Place(const std::string& tenant, bool inputs_resident,
                 const std::vector<double>& backlog_s,
                 const std::vector<bool>& alive) const;

  /// Records that `tenant`'s latest query was placed on `device`; that is
  /// its warm device until it runs elsewhere or the device is lost.
  void RecordPlacement(const std::string& tenant, int device);

  /// Device loss: every tenant warm on `device` becomes cold.
  void ForgetDevice(int device);

  /// The tenant's warm device, or -1 when cold.
  int warm_device(const std::string& tenant) const;

 private:
  Options options_;
  std::map<std::string, int> warm_;
};

}  // namespace sirius::serve
