// Figure 5 reproduction: per-operator performance breakdown in Sirius (§4.2).
//
// For every TPC-H query, prints the fraction of simulated device time spent
// in join / group-by / filter / aggregation / order-by / other.
//
// Paper shape targets: joins dominate most queries (Q2-Q5, Q7-Q8, Q20-Q22);
// group-by is visible in Q1 (few groups -> GPU contention) and Q10/Q16/Q18
// (string keys -> libcudf sort-based path); filter dominates Q6/Q19 and is
// large in Q13 (low-selectivity string matching).

#include <cstdio>

#include "bench_util.h"

using namespace sirius;

int main() {
  bench::PrintHeader("Figure 5: Sirius operator breakdown");
  bench::BenchJson json("fig5");

  auto duck = bench::MakeTpchDb(sim::M7i16xlarge(), sim::DuckDbProfile());
  engine::SiriusEngine::Options gpu_options;
  gpu_options.data_scale = bench::DataScale();
  engine::SiriusEngine sirius_engine(duck.get(), gpu_options);
  duck->SetAccelerator(&sirius_engine);

  const sim::OpCategory cats[] = {
      sim::OpCategory::kJoin,    sim::OpCategory::kGroupBy,
      sim::OpCategory::kFilter,  sim::OpCategory::kAggregate,
      sim::OpCategory::kOrderBy, sim::OpCategory::kScan,
      sim::OpCategory::kProject, sim::OpCategory::kOther,
  };
  std::printf("%-4s %9s |", "", "total ms");
  for (auto c : cats) std::printf(" %8s", sim::OpCategoryName(c));
  std::printf("   dominant\n");

  for (int q = 1; q <= 22; ++q) {
    (void)duck->Query(tpch::Query(q));  // warm the cache
    auto r = duck->Query(tpch::Query(q));
    SIRIUS_CHECK_OK(r.status());
    const auto& t = r.ValueOrDie().timeline;
    double total = t.total_seconds();
    std::printf("Q%-3d %9.1f |", q, total * 1e3);
    double best = 0;
    const char* dominant = "?";
    bench::BenchJson::Row row;
    row.emplace_back("query", static_cast<int64_t>(q));
    row.emplace_back("total_ms", total * 1e3);
    for (auto c : cats) {
      double frac = t.seconds(c) / total;
      std::printf(" %7.1f%%", frac * 100);
      row.emplace_back(std::string("frac_") + sim::OpCategoryName(c), frac);
      // "other" carries the fixed per-query overhead; skip it as dominant.
      if (c != sim::OpCategory::kOther && c != sim::OpCategory::kProject &&
          frac > best) {
        best = frac;
        dominant = sim::OpCategoryName(c);
      }
    }
    std::printf("   %s\n", dominant);
    row.emplace_back("dominant", std::string(dominant));
    json.AddRow(std::move(row));
  }
  std::printf(
      "\nShape check: join should dominate the join-heavy queries, group-by "
      "Q1/Q18-class queries, filter Q6/Q19.\n");
  return 0;
}
