// Recovery-overhead bench: what fault tolerance costs in modeled time.
//
// Re-runs the Table 2 distributed setup (4 nodes, A100s, 400 Gbps IB,
// Sirius profile) under injected faults and reports the recovery actions
// taken plus the simulated-time overhead vs. the fault-free run:
//   - transient link faults: SCCL retry/backoff absorbs them; overhead is
//     the backoff charged to the exchange bucket,
//   - a node death mid-query: the coordinator re-partitions onto the
//     survivors and re-runs, so the query pays roughly one extra attempt,
//   - device OOM (single-node engine): evict-and-retry re-runs the pipeline
//     set after dropping the cache.
// Answers are checked identical to the fault-free run in every scenario.

#include <cstdio>

#include "bench_util.h"
#include "dist/cluster.h"
#include "fault/fault_injector.h"
#include "tpch/dbgen.h"

using namespace sirius;

namespace {

dist::DorisCluster MakeCluster(fault::FaultInjector* injector) {
  dist::DorisCluster::Options options;
  options.num_nodes = 4;
  options.device = sim::A100Gpu();
  options.engine = sim::SiriusProfile();
  options.network = sim::Infiniband400();
  options.data_scale = bench::DataScale();
  options.injector = injector;
  options.query_retry_budget = 2;
  return dist::DorisCluster(options);
}

void Load(dist::DorisCluster& cluster) {
  for (const auto& name : tpch::TableNames()) {
    auto table = tpch::GenerateTable(name, bench::LoadedSf()).ValueOrDie();
    SIRIUS_CHECK_OK(cluster.LoadPartitioned(name, table));
  }
}

}  // namespace

int main() {
  bench::PrintHeader("Recovery overhead: distributed TPC-H under faults");
  bench::BenchJson json("recovery_overhead");

  std::printf("%-4s %12s | %-14s %12s %9s | %s\n", "", "clean(ms)", "fault",
              "faulty(ms)", "overhead", "recovery actions");
  for (int q : {1, 3, 6}) {
    const std::string& sql = tpch::Query(q);
    auto clean_cluster = MakeCluster(nullptr);
    Load(clean_cluster);
    auto clean = clean_cluster.Query(sql).ValueOrDie();

    // Transient link faults on every collective: two failures per site,
    // healed by retry/backoff.
    fault::FaultInjector link_inj(/*seed=*/q);
    fault::FaultSpec flap;
    flap.max_triggers = 2;
    for (const char* site : {"sccl.alltoall", "sccl.broadcast", "sccl.gather",
                             "sccl.multicast"}) {
      link_inj.Arm(site, flap);
    }
    auto link_cluster = MakeCluster(&link_inj);
    Load(link_cluster);
    auto flapped = link_cluster.Query(sql).ValueOrDie();
    SIRIUS_CHECK(clean.table->Equals(*flapped.table) ||
                 clean.table->EqualsUnordered(*flapped.table));
    std::printf("Q%-3d %12.1f | %-14s %12.1f %8.1f%% | %d retries, %.2f ms backoff\n",
                q, clean.total_seconds * 1e3, "link flaps",
                flapped.total_seconds * 1e3,
                100.0 * (flapped.total_seconds / clean.total_seconds - 1.0),
                flapped.recovery.collective_retries,
                flapped.recovery.retry_backoff_seconds * 1e3);
    json.AddRow(
        {{"query", static_cast<int64_t>(q)},
         {"fault", std::string("link_flaps")},
         {"clean_ms", clean.total_seconds * 1e3},
         {"faulty_ms", flapped.total_seconds * 1e3},
         {"overhead_pct",
          100.0 * (flapped.total_seconds / clean.total_seconds - 1.0)},
         {"collective_retries",
          static_cast<int64_t>(flapped.recovery.collective_retries)},
         {"backoff_ms", flapped.recovery.retry_backoff_seconds * 1e3}});

    // One node dies executing a fragment: mark dead, re-partition, re-run.
    fault::FaultInjector death_inj(/*seed=*/q);
    fault::FaultSpec death;
    death.max_triggers = 1;
    death_inj.Arm("dist.fragment", death);
    auto death_cluster = MakeCluster(&death_inj);
    Load(death_cluster);
    auto survived = death_cluster.Query(sql).ValueOrDie();
    SIRIUS_CHECK(clean.table->Equals(*survived.table) ||
                 clean.table->EqualsUnordered(*survived.table));
    std::printf("%-4s %12s | %-14s %12.1f %8.1f%% | %d dead, %d re-run, %d re-partition\n",
                "", "", "node death", survived.total_seconds * 1e3,
                100.0 * (survived.total_seconds / clean.total_seconds - 1.0),
                survived.recovery.node_failures, survived.recovery.query_retries,
                survived.recovery.re_partitions);
    json.AddRow(
        {{"query", static_cast<int64_t>(q)},
         {"fault", std::string("node_death")},
         {"clean_ms", clean.total_seconds * 1e3},
         {"faulty_ms", survived.total_seconds * 1e3},
         {"overhead_pct",
          100.0 * (survived.total_seconds / clean.total_seconds - 1.0)},
         {"node_failures", static_cast<int64_t>(survived.recovery.node_failures)},
         {"query_retries", static_cast<int64_t>(survived.recovery.query_retries)},
         {"re_partitions", static_cast<int64_t>(survived.recovery.re_partitions)}});
  }

  // Device OOM on the single-node engine: evict the cache and re-run once.
  auto db = bench::MakeTpchDb(sim::Gh200Gpu(), sim::SiriusProfile());
  engine::SiriusEngine::Options clean_opts;
  clean_opts.data_scale = bench::DataScale();
  engine::SiriusEngine clean_engine(db.get(), clean_opts);
  db->SetAccelerator(&clean_engine);
  (void)db->Query(tpch::Query(6));  // hot run methodology (§4.1)
  auto clean_q6 = db->Query(tpch::Query(6)).ValueOrDie();

  fault::FaultInjector oom_inj;
  engine::SiriusEngine::Options oom_opts = clean_opts;
  oom_opts.injector = &oom_inj;
  engine::SiriusEngine oom_engine(db.get(), oom_opts);
  db->SetAccelerator(&oom_engine);
  (void)db->Query(tpch::Query(6));  // warm the cache before injecting
  fault::FaultSpec oom;
  oom.code = StatusCode::kOutOfMemory;
  oom.max_triggers = 1;
  oom_inj.Arm("engine.reserve", oom);
  auto oom_q6 = db->Query(tpch::Query(6)).ValueOrDie();
  db->SetAccelerator(nullptr);
  SIRIUS_CHECK(clean_q6.table->Equals(*oom_q6.table) ||
               clean_q6.table->EqualsUnordered(*oom_q6.table));
  const auto stats = oom_engine.stats();
  json.AddRow({{"query", static_cast<int64_t>(6)},
               {"fault", std::string("device_oom")},
               {"clean_ms", clean_q6.timeline.total_seconds() * 1e3},
               {"faulty_ms", oom_q6.timeline.total_seconds() * 1e3},
               {"oom_events", static_cast<int64_t>(stats.oom_events)},
               {"pipeline_retries", static_cast<int64_t>(stats.pipeline_retries)},
               {"evictions", static_cast<int64_t>(stats.evictions_under_pressure)}});
  std::printf("\nQ6 single-node device OOM: clean %.2f ms, evict+retry %.2f ms "
              "(%llu OOM, %llu retries, %llu columns evicted)\n",
              clean_q6.timeline.total_seconds() * 1e3,
              oom_q6.timeline.total_seconds() * 1e3,
              static_cast<unsigned long long>(stats.oom_events),
              static_cast<unsigned long long>(stats.pipeline_retries),
              static_cast<unsigned long long>(stats.evictions_under_pressure));

  std::printf(
      "\nShape checks: answers identical to the fault-free run in every "
      "scenario; link-flap overhead is bounded by the backoff cap; a node "
      "death costs about one extra attempt plus the re-partition.\n");
  return 0;
}
