// Ablation: out-of-core batch execution (paper §3.4 future extension).
//
// Sweeps the modeled data size past the device's caching region and
// compares: (a) in-memory GPU execution (falls back to the CPU host once
// data no longer fits), (b) the out-of-core batch mode that streams
// over-capacity inputs through the GPU in pipelined batches.

#include <cstdio>

#include "bench_util.h"

using namespace sirius;

int main() {
  std::printf("=== Ablation: out-of-core batch execution (Q6, GH200 92 GiB) ===\n");
  std::printf("(loaded SF %.3g; modeled SF sweeps past device memory)\n\n",
              bench::LoadedSf());
  bench::BenchJson json("ablation_out_of_core");

  std::printf("%-12s %14s %18s %14s\n", "modeled SF", "in-mem (ms)",
              "out-of-core (ms)", "in-mem path");
  for (double modeled_sf : {50.0, 100.0, 400.0, 1600.0, 6400.0}) {
    const double ds = modeled_sf / bench::LoadedSf();
    auto host_db = bench::MakeTpchDb(sim::M7i16xlarge(), sim::DuckDbProfile(), ds);

    engine::SiriusEngine::Options in_mem;
    in_mem.data_scale = ds;
    in_mem.out_of_core = false;
    engine::SiriusEngine in_mem_engine(host_db.get(), in_mem);

    engine::SiriusEngine::Options ooc = in_mem;
    ooc.out_of_core = true;
    engine::SiriusEngine ooc_engine(host_db.get(), ooc);

    host_db->SetAccelerator(&in_mem_engine);
    (void)host_db->Query(tpch::Query(6));
    auto a = host_db->Query(tpch::Query(6));
    host_db->SetAccelerator(&ooc_engine);
    (void)host_db->Query(tpch::Query(6));
    auto b = host_db->Query(tpch::Query(6));
    host_db->SetAccelerator(nullptr);
    SIRIUS_CHECK_OK(a.status());
    SIRIUS_CHECK_OK(b.status());
    SIRIUS_CHECK(a.ValueOrDie().table->Equals(*b.ValueOrDie().table));
    const double in_mem_ms = a.ValueOrDie().timeline.total_seconds() * 1e3;
    const double ooc_ms = b.ValueOrDie().timeline.total_seconds() * 1e3;
    std::printf("%-12.0f %14.1f %18.1f %14s\n", modeled_sf, in_mem_ms, ooc_ms,
                a.ValueOrDie().fell_back ? "CPU fallback" : "GPU");
    json.AddRow({{"modeled_sf", modeled_sf},
                 {"in_mem_ms", in_mem_ms},
                 {"out_of_core_ms", ooc_ms},
                 {"in_mem_path", std::string(a.ValueOrDie().fell_back
                                                 ? "cpu_fallback"
                                                 : "gpu")}});
  }
  std::printf(
      "\nShape check: once the (compressed) working set exceeds the caching "
      "region, the in-memory engine must fall back to the CPU host, while "
      "the out-of-core batch mode keeps the GPU path alive at host-link "
      "streaming cost — the §3.4 extension's motivation.\n");
  return 0;
}
