// Ablation: libcudf-class vs custom-kernel operator implementations.
//
// Paper §3.2.2: "Sirius allows developers to easily switch the operator
// implementation between libcudf and custom CUDA kernels". The custom
// variants model hand-tuned join/group-by kernels; this bench quantifies
// the end-to-end effect on join-heavy queries.

#include <cstdio>

#include "bench_util.h"

using namespace sirius;

int main() {
  bench::PrintHeader("Ablation: libcudf-class vs custom kernels");
  bench::BenchJson json("ablation_operator_impl");

  auto duck = bench::MakeTpchDb(sim::M7i16xlarge(), sim::DuckDbProfile());

  engine::SiriusEngine::Options stock;
  stock.data_scale = bench::DataScale();
  engine::SiriusEngine stock_engine(duck.get(), stock);

  engine::SiriusEngine::Options custom = stock;
  custom.use_custom_kernels = true;
  engine::SiriusEngine custom_engine(duck.get(), custom);

  std::printf("%-4s %14s %14s %10s\n", "", "libcudf(ms)", "custom(ms)", "gain");
  for (int q : {2, 3, 5, 7, 8, 9, 18, 21}) {  // join/group-by heavy queries
    duck->SetAccelerator(&stock_engine);
    (void)duck->Query(tpch::Query(q));
    auto a = duck->Query(tpch::Query(q));
    duck->SetAccelerator(&custom_engine);
    (void)duck->Query(tpch::Query(q));
    auto b = duck->Query(tpch::Query(q));
    duck->SetAccelerator(nullptr);
    SIRIUS_CHECK_OK(a.status());
    SIRIUS_CHECK_OK(b.status());
    SIRIUS_CHECK(a.ValueOrDie().table->Equals(*b.ValueOrDie().table));
    double am = a.ValueOrDie().timeline.total_seconds() * 1e3;
    double bm = b.ValueOrDie().timeline.total_seconds() * 1e3;
    std::printf("Q%-3d %14.1f %14.1f %9.2fx\n", q, am, bm, am / bm);
    json.AddRow({{"query", static_cast<int64_t>(q)},
                 {"libcudf_ms", am},
                 {"custom_ms", bm},
                 {"gain", am / bm}});
  }
  std::printf(
      "\nShape check: moderate (10-20%%) end-to-end gains — switching "
      "implementations is cheap thanks to the modular operator design, and "
      "results are bit-identical.\n");
  return 0;
}
