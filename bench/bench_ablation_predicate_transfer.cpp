// Ablation: predicate transfer (paper §3.4, refs [29, 30]) — Bloom filters
// built on selective join build sides pre-filter probe inputs before the
// join. Compares Sirius with and without the optimization on join-heavy
// TPC-H queries.

#include <cstdio>

#include "bench_util.h"

using namespace sirius;

int main() {
  bench::PrintHeader("Ablation: predicate transfer (Bloom pre-filtering)");
  bench::BenchJson json("ablation_predicate_transfer");

  auto duck = bench::MakeTpchDb(sim::M7i16xlarge(), sim::DuckDbProfile());

  engine::SiriusEngine::Options off;
  off.data_scale = bench::DataScale();
  engine::SiriusEngine engine_off(duck.get(), off);

  engine::SiriusEngine::Options on = off;
  on.predicate_transfer = true;
  engine::SiriusEngine engine_on(duck.get(), on);

  std::printf("%-4s %14s %14s %10s\n", "", "off (ms)", "on (ms)", "gain");
  std::vector<double> gains;
  for (int q : {2, 3, 5, 8, 9, 10, 17, 20, 21}) {
    duck->SetAccelerator(&engine_off);
    (void)duck->Query(tpch::Query(q));
    auto a = duck->Query(tpch::Query(q));
    duck->SetAccelerator(&engine_on);
    (void)duck->Query(tpch::Query(q));
    auto b = duck->Query(tpch::Query(q));
    duck->SetAccelerator(nullptr);
    SIRIUS_CHECK_OK(a.status());
    SIRIUS_CHECK_OK(b.status());
    SIRIUS_CHECK(a.ValueOrDie().table->Equals(*b.ValueOrDie().table));
    double am = a.ValueOrDie().timeline.total_seconds() * 1e3;
    double bm = b.ValueOrDie().timeline.total_seconds() * 1e3;
    gains.push_back(am / bm);
    std::printf("Q%-3d %14.1f %14.1f %9.2fx\n", q, am, bm, am / bm);
    json.AddRow({{"query", static_cast<int64_t>(q)},
                 {"off_ms", am},
                 {"on_ms", bm},
                 {"gain", am / bm}});
  }
  std::printf("\ngeomean gain: %.2fx\n", bench::Geomean(gains));
  json.Set("geomean_gain", bench::Geomean(gains));
  std::printf(
      "Shape check: queries joining a large probe against a selectively "
      "filtered build side (Q3's customer, Q8/Q9's part, Q17's filtered "
      "part) gain; results are bit-identical because the join re-checks "
      "Bloom positives exactly.\n");
  return 0;
}
