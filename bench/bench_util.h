// Shared helpers for the reproduction benchmarks.

#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "engine/sirius.h"
#include "host/database.h"
#include "tpch/queries.h"

namespace sirius::bench {

/// Loaded TPC-H scale factor (actual rows generated). Override: SIRIUS_SF.
inline double LoadedSf() {
  const char* env = std::getenv("SIRIUS_SF");
  return env != nullptr ? std::atof(env) : 0.01;
}

/// Modeled scale factor the cost model reports times for (the paper uses
/// SF100, §4.1). Override: SIRIUS_MODEL_SF.
inline double ModeledSf() {
  const char* env = std::getenv("SIRIUS_MODEL_SF");
  return env != nullptr ? std::atof(env) : 100.0;
}

inline double DataScale() { return ModeledSf() / LoadedSf(); }

inline double Geomean(const std::vector<double>& v) {
  if (v.empty()) return 0;
  double s = 0;
  for (double x : v) s += std::log(x);
  return std::exp(s / static_cast<double>(v.size()));
}

/// A DuckX database loaded with TPC-H and configured for `device`/`engine`.
/// `data_scale` <= 0 uses the SIRIUS_MODEL_SF-derived default.
inline std::unique_ptr<host::Database> MakeTpchDb(
    const sim::DeviceProfile& device, const sim::EngineProfile& engine,
    double data_scale = -1) {
  host::Database::Options options;
  options.device = device;
  options.engine = engine;
  options.data_scale = data_scale > 0 ? data_scale : DataScale();
  auto db = std::make_unique<host::Database>(options);
  SIRIUS_CHECK_OK(tpch::LoadTpch(db.get(), LoadedSf()));
  return db;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("(loaded SF %.3g, modeled SF %.3g; times are simulated device"
              " time — see DESIGN.md)\n\n",
              LoadedSf(), ModeledSf());
}

/// \brief Machine-readable results next to the human-readable table.
///
/// Every benchmark funnels the numbers it prints through one of these and
/// writes `BENCH_<name>.json` on exit, so dashboards and regression diffs
/// parse one stable format instead of scraping stdout. Layout:
///
///   { "bench": "...", "loaded_sf": ..., "modeled_sf": ...,
///     "meta": { scalar summary values },
///     "rows": [ { one object per table row } ] }
///
/// Output goes to the working directory; SIRIUS_BENCH_JSON_DIR redirects,
/// SIRIUS_BENCH_JSON=0 disables.
class BenchJson {
 public:
  using Value = std::variant<double, int64_t, std::string>;
  using Row = std::vector<std::pair<std::string, Value>>;

  explicit BenchJson(std::string name) : name_(std::move(name)) {}
  ~BenchJson() { Write(); }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  /// Sets one scalar in the "meta" object (last write per key wins).
  void Set(const std::string& key, Value value) {
    for (auto& [k, v] : meta_) {
      if (k == key) {
        v = std::move(value);
        return;
      }
    }
    meta_.emplace_back(key, std::move(value));
  }

  /// Appends one object to the "rows" array.
  void AddRow(Row row) { rows_.push_back(std::move(row)); }

  /// Writes BENCH_<name>.json now (idempotent; also called on destruction).
  void Write() {
    if (written_) return;
    written_ = true;
    const char* toggle = std::getenv("SIRIUS_BENCH_JSON");
    if (toggle != nullptr && std::string(toggle) == "0") return;
    const char* dir = std::getenv("SIRIUS_BENCH_JSON_DIR");
    const std::string path = (dir != nullptr && dir[0] != '\0')
                                 ? std::string(dir) + "/BENCH_" + name_ + ".json"
                                 : "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": %s,\n", Quoted(name_).c_str());
    std::fprintf(f, "  \"loaded_sf\": %.9g,\n  \"modeled_sf\": %.9g,\n",
                 LoadedSf(), ModeledSf());
    std::fprintf(f, "  \"meta\": {");
    for (size_t i = 0; i < meta_.size(); ++i) {
      std::fprintf(f, "%s\n    %s: %s", i == 0 ? "" : ",",
                   Quoted(meta_[i].first).c_str(),
                   Rendered(meta_[i].second).c_str());
    }
    std::fprintf(f, "%s},\n", meta_.empty() ? "" : "\n  ");
    std::fprintf(f, "  \"rows\": [");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "%s\n    {", i == 0 ? "" : ",");
      const Row& row = rows_[i];
      for (size_t j = 0; j < row.size(); ++j) {
        std::fprintf(f, "%s%s: %s", j == 0 ? "" : ", ",
                     Quoted(row[j].first).c_str(),
                     Rendered(row[j].second).c_str());
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "%s]\n}\n", rows_.empty() ? "" : "\n  ");
    std::fclose(f);
    std::printf("\n[wrote %s]\n", path.c_str());
  }

 private:
  static std::string Quoted(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) {
        out += ' ';  // control characters have no business in keys/labels
        continue;
      }
      out.push_back(c);
    }
    out.push_back('"');
    return out;
  }

  static std::string Rendered(const Value& v) {
    if (const auto* d = std::get_if<double>(&v)) {
      if (!std::isfinite(*d)) return "null";
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.9g", *d);
      return buf;
    }
    if (const auto* i = std::get_if<int64_t>(&v)) {
      return std::to_string(*i);
    }
    return Quoted(std::get<std::string>(v));
  }

  const std::string name_;
  std::vector<std::pair<std::string, Value>> meta_;
  std::vector<Row> rows_;
  bool written_ = false;
};

}  // namespace sirius::bench
