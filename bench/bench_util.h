// Shared helpers for the reproduction benchmarks.

#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/sirius.h"
#include "host/database.h"
#include "tpch/queries.h"

namespace sirius::bench {

/// Loaded TPC-H scale factor (actual rows generated). Override: SIRIUS_SF.
inline double LoadedSf() {
  const char* env = std::getenv("SIRIUS_SF");
  return env != nullptr ? std::atof(env) : 0.01;
}

/// Modeled scale factor the cost model reports times for (the paper uses
/// SF100, §4.1). Override: SIRIUS_MODEL_SF.
inline double ModeledSf() {
  const char* env = std::getenv("SIRIUS_MODEL_SF");
  return env != nullptr ? std::atof(env) : 100.0;
}

inline double DataScale() { return ModeledSf() / LoadedSf(); }

inline double Geomean(const std::vector<double>& v) {
  if (v.empty()) return 0;
  double s = 0;
  for (double x : v) s += std::log(x);
  return std::exp(s / static_cast<double>(v.size()));
}

/// A DuckX database loaded with TPC-H and configured for `device`/`engine`.
/// `data_scale` <= 0 uses the SIRIUS_MODEL_SF-derived default.
inline std::unique_ptr<host::Database> MakeTpchDb(
    const sim::DeviceProfile& device, const sim::EngineProfile& engine,
    double data_scale = -1) {
  host::Database::Options options;
  options.device = device;
  options.engine = engine;
  options.data_scale = data_scale > 0 ? data_scale : DataScale();
  auto db = std::make_unique<host::Database>(options);
  SIRIUS_CHECK_OK(tpch::LoadTpch(db.get(), LoadedSf()));
  return db;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("(loaded SF %.3g, modeled SF %.3g; times are simulated device"
              " time — see DESIGN.md)\n\n",
              LoadedSf(), ModeledSf());
}

}  // namespace sirius::bench
