// Out-of-core spill sweep: tiered memory under working sets past HBM.
//
// Two phases, both asserted (SIRIUS_CHECK) so the bench doubles as an
// acceptance harness and the committed BENCH_spill_sweep.json locks the
// numbers via scripts/bench_gate.py:
//
//  1. Capacity sweep — modeled SF grows past the GH200 caching region; the
//     out-of-core engine must keep answering on the GPU path (no CPU
//     fallback, no abort) with simulated time degrading monotonically as
//     overflow first fits pinned host staging and then bounces through
//     simulated NVMe. Tier occupancy must drain to zero after every run.
//
//  2. Spill governance — the same over-capacity plan served to one
//     unlimited tenant vs four tenants of which one carries a tiny spill
//     quota. The bounded tenant is shed mid-run with ResourceExhausted and
//     a retry-after hint; everyone else completes, and no quota bytes leak.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "serve/serve.h"

using namespace sirius;

namespace {

struct SweepPoint {
  double modeled_sf = 0;
  double sim_ms = 0;
  int64_t spill_events = 0;
  int64_t spill_host = 0;
  int64_t spill_nvme = 0;
  int64_t host_spilled_bytes = 0;
  int64_t nvme_spilled_bytes = 0;
};

// Pinned host staging stays at the GH200 default (64 GiB); the NVMe tier is
// provisioned like a datacenter scratch array so the sweep's largest
// extents stay placeable and the bench measures degradation, not the
// capacity diagnostic (tests/tier_test.cc covers the bounded-tier error).
constexpr uint64_t kNvmeCapacity = 8ull << 40;

engine::SiriusEngine::Options EngineOptions(double ds) {
  engine::SiriusEngine::Options opts;
  opts.device = sim::Gh200Gpu();
  opts.profile = sim::SiriusProfile();
  opts.data_scale = ds;
  opts.out_of_core = true;
  opts.tier.nvme_capacity_bytes = kNvmeCapacity;
  return opts;
}

SweepPoint RunSweepPoint(double modeled_sf) {
  const double ds = modeled_sf / bench::LoadedSf();
  auto db = bench::MakeTpchDb(sim::Gh200Gpu(), sim::DuckDbProfile(), ds);
  engine::SiriusEngine engine(db.get(), EngineOptions(ds));

  db->SetAccelerator(&engine);
  (void)db->Query(tpch::Query(18));  // hot-run methodology (§4.1)
  auto r = db->Query(tpch::Query(18));
  db->SetAccelerator(nullptr);

  // Monotone no-abort degradation: every point answers on the GPU path.
  SIRIUS_CHECK_OK(r.status());
  SIRIUS_CHECK(!r.ValueOrDie().fell_back);

  const auto stats = engine.stats();
  const auto host = engine.tiers().stats(mem::Tier::kHost);
  const auto nvme = engine.tiers().stats(mem::Tier::kNvme);
  // Per-tier counters partition the aggregate, and every staged extent was
  // read back and released — nothing parks on a tier across queries.
  SIRIUS_CHECK(stats.spill_events == stats.spill_host + stats.spill_nvme);
  SIRIUS_CHECK(host.used_bytes == 0 && nvme.used_bytes == 0);
  SIRIUS_CHECK(mem::PinnedHostInUse() == 0);

  SweepPoint p;
  p.modeled_sf = modeled_sf;
  p.sim_ms = r.ValueOrDie().timeline.total_seconds() * 1e3;
  p.spill_events = static_cast<int64_t>(stats.spill_events);
  p.spill_host = static_cast<int64_t>(stats.spill_host);
  p.spill_nvme = static_cast<int64_t>(stats.spill_nvme);
  p.host_spilled_bytes = static_cast<int64_t>(host.spilled_bytes);
  p.nvme_spilled_bytes = static_cast<int64_t>(nvme.spilled_bytes);
  return p;
}

struct TenantTally {
  int64_t completed = 0;
  int64_t shed = 0;
  int64_t retry_hinted = 0;  ///< shed outcomes carrying retry-after > 0
};

}  // namespace

int main() {
  std::printf("=== Spill sweep: tiered out-of-core past device memory "
              "(Q18, GH200 92 GiB) ===\n");
  std::printf("(loaded SF %.3g; modeled SF sweeps past the caching region; "
              "times are simulated)\n\n",
              bench::LoadedSf());
  bench::BenchJson json("spill_sweep");

  // --- Phase 1: capacity sweep ------------------------------------------
  const mem::TierManager::Options tier_defaults;
  json.Set("host_tier_gib", static_cast<int64_t>(
                                tier_defaults.host_capacity_bytes >> 30));
  json.Set("nvme_tier_gib", static_cast<int64_t>(kNvmeCapacity >> 30));

  std::printf("%-12s %12s %8s %10s %10s %14s %14s\n", "modeled SF", "Q18 (ms)",
              "spills", "-> host", "-> nvme", "host GiB", "nvme GiB");
  double prev_ms = 0;
  SweepPoint last;
  for (double modeled_sf : {50.0, 200.0, 800.0, 3200.0}) {
    const SweepPoint p = RunSweepPoint(modeled_sf);
    std::printf("%-12.0f %12.1f %8lld %10lld %10lld %14.2f %14.2f\n",
                p.modeled_sf, p.sim_ms, static_cast<long long>(p.spill_events),
                static_cast<long long>(p.spill_host),
                static_cast<long long>(p.spill_nvme),
                static_cast<double>(p.host_spilled_bytes) / (1ull << 30),
                static_cast<double>(p.nvme_spilled_bytes) / (1ull << 30));
    SIRIUS_CHECK(p.sim_ms >= prev_ms);  // degradation is monotone
    prev_ms = p.sim_ms;
    last = p;
    json.AddRow({{"phase", std::string("sweep")},
                 {"modeled_sf", p.modeled_sf},
                 {"q18_ms", p.sim_ms},
                 {"spill_events", p.spill_events},
                 {"spill_host", p.spill_host},
                 {"spill_nvme", p.spill_nvme},
                 {"host_spilled_bytes", p.host_spilled_bytes},
                 {"nvme_spilled_bytes", p.nvme_spilled_bytes}});
  }
  // The sweep must actually leave the in-memory regime.
  SIRIUS_CHECK(last.spill_events > 0);

  // --- Phase 2: one tenant vs four, one quota-bounded -------------------
  // An over-capacity point where every admitted query spills, with headroom
  // for several tenants staging concurrently.
  const double governed_sf = 800.0;
  const double ds = governed_sf / bench::LoadedSf();
  constexpr uint64_t kTinyQuota = 1 << 10;  // 1 KiB: refuses the first extent
  std::printf("\n--- governance at modeled SF %.0f (quota-bounded tenant: "
              "%llu-byte spill quota) ---\n",
              governed_sf, static_cast<unsigned long long>(kTinyQuota));
  json.Set("governed_sf", governed_sf);
  json.Set("bounded_quota_bytes", static_cast<int64_t>(kTinyQuota));

  struct Config {
    const char* name;
    std::vector<std::string> tenants;
    std::string bounded;  ///< tenant carrying kTinyQuota; "" = none
    int queries_per_tenant;
  };
  const Config configs[] = {
      {"solo", {"alone"}, "", 8},
      {"governed", {"t0", "t1", "t2", "bounded"}, "bounded", 2},
  };

  for (const Config& cfg : configs) {
    auto db = bench::MakeTpchDb(sim::Gh200Gpu(), sim::DuckDbProfile(), ds);
    engine::SiriusEngine engine(db.get(), EngineOptions(ds));

    serve::ServeOptions serve_opts;
    serve_opts.result_cache = false;
    serve::QueryServer server(db.get(), &engine, serve_opts);
    if (!cfg.bounded.empty()) {
      server.SetTenantSpillQuota(cfg.bounded, kTinyQuota);
    }

    std::vector<std::pair<std::string, serve::QueryId>> submitted;
    for (const std::string& tenant : cfg.tenants) {
      const serve::SessionId session = server.OpenSession(tenant);
      for (int i = 0; i < cfg.queries_per_tenant; ++i) {
        auto id = server.Submit(session, tpch::Query(18));
        SIRIUS_CHECK_OK(id.status());
        submitted.emplace_back(tenant, id.ValueOrDie());
      }
    }

    std::map<std::string, TenantTally> tallies;
    double makespan_s = 0;
    for (const auto& [tenant, id] : submitted) {
      auto outcome = server.Resolve(id);
      SIRIUS_CHECK_OK(outcome.status());
      const serve::QueryOutcome& out = outcome.ValueOrDie();
      TenantTally& tally = tallies[tenant];
      if (out.state == serve::QueryState::kCompleted) {
        ++tally.completed;
      } else {
        // The only non-completion this bench tolerates is a governed shed.
        SIRIUS_CHECK(out.state == serve::QueryState::kShed);
        SIRIUS_CHECK(out.status.IsResourceExhausted());
        ++tally.shed;
        if (out.retry_after_s > 0) ++tally.retry_hinted;
      }
      if (out.finish_s > makespan_s) makespan_s = out.finish_s;
    }

    for (const std::string& tenant : cfg.tenants) {
      const TenantTally& tally = tallies[tenant];
      if (tenant == cfg.bounded) {
        // Governance: the bounded tenant is shed — diagnosably, with a
        // retry hint — instead of exhausting the host for everyone.
        SIRIUS_CHECK(tally.shed == cfg.queries_per_tenant);
        SIRIUS_CHECK(tally.retry_hinted == tally.shed);
      } else {
        SIRIUS_CHECK(tally.completed == cfg.queries_per_tenant);
      }
      // No spill-quota bytes may outlive the queries that took them.
      SIRIUS_CHECK(server.spill_quota(tenant).reserved() == 0);
      std::printf("%-10s %-8s completed %2lld  shed %2lld  retry-hinted "
                  "%2lld\n",
                  cfg.name, tenant.c_str(),
                  static_cast<long long>(tally.completed),
                  static_cast<long long>(tally.shed),
                  static_cast<long long>(tally.retry_hinted));
      json.AddRow({{"phase", std::string("governance")},
                   {"config", std::string(cfg.name)},
                   {"tenant", tenant},
                   {"bounded", std::string(tenant == cfg.bounded ? "yes"
                                                                 : "no")},
                   {"completed", tally.completed},
                   {"shed", tally.shed},
                   {"retry_hinted", tally.retry_hinted}});
    }
    json.Set(std::string(cfg.name) + "_makespan_sim_s", makespan_s);
    std::printf("%-10s makespan %.3f sim-s\n", cfg.name, makespan_s);
  }

  std::printf(
      "\nShape check: past the caching region the engine degrades through "
      "host then NVMe staging instead of aborting or falling back, and a "
      "quota-bounded tenant is shed with a retry hint while its neighbors "
      "finish — §3.4's out-of-core path with governance on top.\n");
  return 0;
}
