// Ablation: group-by strategy effects the paper attributes costs to (§4.2):
//   (a) string keys take libcudf's sort-based path (vs hash-based for
//       numeric keys of the same cardinality);
//   (b) very few distinct groups cause GPU memory contention.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "format/builder.h"
#include "gdf/groupby.h"
#include "sim/device.h"

using namespace sirius;

namespace {

constexpr size_t kRows = 200000;

gdf::Context GpuContext(sim::Timeline* t) {
  gdf::Context ctx;
  ctx.mr = mem::DefaultResource();
  ctx.sim.device = sim::Gh200Gpu();
  ctx.sim.timeline = t;
  ctx.sim.data_scale = 1000.0;  // model 200M rows
  return ctx;
}

double RunGroupBy(const format::ColumnPtr& key, const format::TablePtr& values) {
  sim::Timeline t;
  gdf::Context ctx = GpuContext(&t);
  std::vector<gdf::AggRequest> aggs{{gdf::AggKind::kSum, 0, "s"}};
  auto r = gdf::GroupByAggregate(ctx, {key}, {"k"}, values, aggs);
  SIRIUS_CHECK_OK(r.status());
  return t.total_seconds() * 1e3;
}

}  // namespace

int main() {
  std::printf("=== Ablation: GPU group-by — hash vs sort path, contention ===\n");
  std::printf("(%zu physical rows modeled as %.0fM)\n\n", kRows,
              kRows * 1000.0 / 1e6);
  bench::BenchJson json("ablation_groupby");
  json.Set("physical_rows", static_cast<int64_t>(kRows));
  json.Set("modeled_rows", kRows * 1000.0);

  format::ColumnBuilder vals(format::Int64());
  for (size_t i = 0; i < kRows; ++i) vals.AppendInt(static_cast<int64_t>(i % 97));
  auto values = format::Table::Make(format::Schema({{"v", format::Int64()}}),
                                    {vals.Finish()})
                    .ValueOrDie();

  std::printf("%-44s %12s\n", "configuration", "ms (model)");
  for (size_t cardinality : {4u, 64u, 1024u, 65536u}) {
    format::ColumnBuilder ints(format::Int64());
    format::ColumnBuilder strs(format::String());
    for (size_t i = 0; i < kRows; ++i) {
      size_t g = i % cardinality;
      ints.AppendInt(static_cast<int64_t>(g));
      strs.AppendString("group_key_" + std::to_string(g));
    }
    double int_ms = RunGroupBy(ints.Finish(), values);
    double str_ms = RunGroupBy(strs.Finish(), values);
    std::printf("int keys,    %6zu groups (hash path)       %12.2f\n",
                cardinality, int_ms);
    std::printf("string keys, %6zu groups (sort path)       %12.2f  (%.1fx)\n",
                cardinality, str_ms, str_ms / int_ms);
    json.AddRow({{"groups", static_cast<int64_t>(cardinality)},
                 {"int_keys_ms", int_ms},
                 {"string_keys_ms", str_ms},
                 {"string_over_int", str_ms / int_ms}});
  }
  std::printf(
      "\nShape checks: string keys cost several times more than integer keys "
      "at normal cardinalities (libcudf's sort-based group-by, visible in "
      "Q10/Q16/Q18); integer-key cost *rises* as the group count drops "
      "toward 4 (Q1's contention effect) — at very few groups the "
      "contention-free sort path even wins, which is why a strategy switch "
      "exists at all.\n");
  return 0;
}
