// Trace-overhead microbench: the observability acceptance budget is < 5%
// simulated-time deviation with tracing on vs. off. Tracing observes the
// simulated clock without ever charging it, so the measured deviation must
// be exactly zero — this bench guards that invariant across all TPC-H
// queries and also reports the wall-clock recording cost per query.
//
// Run: ./bench_trace_overhead   (SIRIUS_SF / SIRIUS_MODEL_SF override scale)

#include <chrono>
#include <cmath>

#include "bench_util.h"

using namespace sirius;

namespace {

double RunAll(engine::SiriusEngine* engine, host::Database* db,
              double* wall_ms) {
  double total = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int q = 1; q <= 22; ++q) {
    auto plan = db->PlanSql(tpch::Query(q)).ValueOrDie();
    auto result = engine->ExecutePlan(plan);
    if (!result.ok()) continue;  // unsupported queries fall back on the host
    total += result.ValueOrDie().timeline.total_seconds();
  }
  const auto t1 = std::chrono::steady_clock::now();
  *wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return total;
}

}  // namespace

int main() {
  auto db = bench::MakeTpchDb(sim::M7i16xlarge(), sim::DuckDbProfile());

  engine::SiriusEngine::Options on;
  on.data_scale = bench::DataScale();
  engine::SiriusEngine traced(db.get(), on);

  engine::SiriusEngine::Options off = on;
  off.tracing = false;
  engine::SiriusEngine untraced(db.get(), off);

  double wall_on = 0, wall_off = 0;
  const double sim_off = RunAll(&untraced, db.get(), &wall_off);
  const double sim_on = RunAll(&traced, db.get(), &wall_on);

  const double deviation =
      sim_off > 0 ? std::fabs(sim_on - sim_off) / sim_off : 0.0;
  bench::BenchJson json("trace_overhead");
  json.Set("sim_total_off_ms", sim_off * 1e3);
  json.Set("sim_total_on_ms", sim_on * 1e3);
  json.Set("sim_deviation_pct", deviation * 100);
  json.Set("wall_off_ms", wall_off);
  json.Set("wall_on_ms", wall_on);
  json.Set("budget_pct", 5.0);
  std::printf("TPC-H @SF%.0f (loaded SF %.2f), 22 queries\n", bench::ModeledSf(),
              bench::LoadedSf());
  std::printf("simulated total  tracing off: %10.3f ms\n", sim_off * 1e3);
  std::printf("simulated total  tracing on : %10.3f ms\n", sim_on * 1e3);
  std::printf("simulated-time deviation    : %10.6f %% (budget < 5%%)\n",
              deviation * 100);
  std::printf("wall-clock       tracing off: %10.1f ms\n", wall_off);
  std::printf("wall-clock       tracing on : %10.1f ms\n", wall_on);

  if (deviation >= 0.05) {
    std::printf("FAIL: tracing perturbed simulated time\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
