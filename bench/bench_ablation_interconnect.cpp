// Ablation: CPU<->GPU interconnect sweep (paper §2.1's "data movement
// bottleneck is diminishing" claim).
//
// Measures the cold run (data load over the host link + execution) of Q6 on
// the same GPU while varying the interconnect from PCIe3 to NVLink-C2C,
// and reports the cold/hot ratio per link.

#include <cstdio>

#include "bench_util.h"
#include "sim/interconnect.h"

using namespace sirius;

int main() {
  bench::PrintHeader("Ablation: interconnect sweep (cold-run data load)");
  bench::BenchJson json("ablation_interconnect");

  auto duck = bench::MakeTpchDb(sim::M7i16xlarge(), sim::DuckDbProfile());

  std::printf("%-22s %10s %12s %12s %10s\n", "link", "GB/s", "cold Q6(ms)",
              "hot Q6(ms)", "cold/hot");
  for (const auto& link : sim::AllHostLinks()) {
    engine::SiriusEngine::Options options;
    options.data_scale = bench::DataScale();
    options.host_link = link;
    engine::SiriusEngine eng(duck.get(), options);
    duck->SetAccelerator(&eng);
    auto cold = duck->Query(tpch::Query(6));
    auto hot = duck->Query(tpch::Query(6));
    duck->SetAccelerator(nullptr);
    SIRIUS_CHECK_OK(cold.status());
    SIRIUS_CHECK_OK(hot.status());
    double cold_ms = cold.ValueOrDie().timeline.total_seconds() * 1e3;
    double hot_ms = hot.ValueOrDie().timeline.total_seconds() * 1e3;
    std::printf("%-22s %10.0f %12.1f %12.1f %9.1fx\n", link.name.c_str(),
                link.bandwidth_gbps, cold_ms, hot_ms, cold_ms / hot_ms);
    json.AddRow({{"link", link.name},
                 {"bandwidth_gbps", link.bandwidth_gbps},
                 {"cold_q6_ms", cold_ms},
                 {"hot_q6_ms", hot_ms},
                 {"cold_over_hot", cold_ms / hot_ms}});
  }
  std::printf(
      "\nShape check: the cold-run penalty shrinks monotonically with link "
      "bandwidth; on NVLink-C2C the cold run approaches the hot run, the "
      "paper's argument that GPU-only execution no longer depends on data "
      "already being resident.\n");
  return 0;
}
