// Multi-GPU serving bench: throughput scaling of query placement across a
// device group.
//
// Runs the same 64-client closed-loop TPC-H mix (8 tenants, fixed seed)
// against a QueryServer configured with 1, 2, and 4 simulated GH200-class
// devices joined by NVLink-C2C, everything else equal. The locality-aware
// placement policy keeps each tenant on its warm device and spills under
// imbalance; with 4 devices the group must sustain >= 1.8x the single-device
// queries-per-simulated-second at equal load, complete every query, and
// leak nothing from any device's admission pool. All numbers are simulated
// time and bit-for-bit reproducible under the fixed seed (ctest asserts the
// determinism; scripts/bench_gate.py holds this binary's JSON to the
// committed snapshot).

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "serve/load_gen.h"
#include "serve/serve.h"

using namespace sirius;

namespace {

constexpr int kClients = 64;
constexpr int kQueriesPerClient = 2;
const std::vector<int> kMix = {1, 3, 5, 6, 10, 12, 14, 19};
const std::vector<std::string> kTenants = {"t0", "t1", "t2", "t3",
                                           "t4", "t5", "t6", "t7"};

struct RunResult {
  serve::LoadReport report;
  uint64_t refused = 0;
  uint64_t leaked_bytes = 0;
  uint64_t placed_warm = 0;
  uint64_t placed_spill = 0;
};

RunResult RunConfig(int num_devices, double data_scale) {
  // Fresh database + engine per configuration so caching-region state and
  // reservation pools cannot leak across device counts.
  auto db = bench::MakeTpchDb(sim::Gh200Gpu(), sim::DuckDbProfile(), data_scale);
  engine::SiriusEngine::Options eng_opts;
  eng_opts.device = sim::Gh200Gpu();
  eng_opts.profile = sim::SiriusProfile();
  eng_opts.data_scale = data_scale;
  engine::SiriusEngine engine(db.get(), eng_opts);

  // Hot-run methodology (§4.1): populate the caching region before serving,
  // so every configuration measures steady-state execution.
  for (int q : kMix) {
    auto plan = db->PlanSql(tpch::Query(q));
    SIRIUS_CHECK_OK(plan.status());
    auto r = engine.ExecutePlan(plan.ValueOrDie());
    SIRIUS_CHECK_OK(r.status());
  }

  serve::ServeOptions options;
  options.num_devices = num_devices;
  options.num_streams = 8;
  options.solo_utilization = 0.45;
  options.max_queue_depth = 2 * kClients;
  options.result_cache = false;  // measure execution, not cache hits
  serve::QueryServer server(db.get(), &engine, options);

  serve::LoadOptions load;
  load.num_clients = kClients;
  load.queries_per_client = kQueriesPerClient;
  load.query_mix = kMix;
  load.tenants = kTenants;
  load.seed = 42;
  serve::LoadGenerator generator(&server, load);
  auto report = generator.Run();
  SIRIUS_CHECK_OK(report.status());

  RunResult out;
  out.report = report.ValueOrDie();
  out.refused = server.total_refused();
  out.leaked_bytes = server.total_reserved_bytes();
  const auto counters = server.metrics().Snapshot();
  auto count = [&](const char* name) -> uint64_t {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  };
  out.placed_warm = count("serve.placed_warm");
  out.placed_spill = count("serve.placed_spill");
  std::printf(
      "%d device%s  completed %3llu/%d  warm %3llu  spill %3llu  "
      "p50 %8.1f ms  p95 %8.1f ms  %8.2f q/sim-s\n",
      num_devices, num_devices == 1 ? " " : "s",
      static_cast<unsigned long long>(out.report.completed),
      kClients * kQueriesPerClient,
      static_cast<unsigned long long>(out.placed_warm),
      static_cast<unsigned long long>(out.placed_spill), out.report.p50_ms,
      out.report.p95_ms, out.report.qps);
  return out;
}

void AddRow(bench::BenchJson* json, int num_devices, const RunResult& r) {
  json->AddRow({{"num_devices", static_cast<int64_t>(num_devices)},
                {"completed", static_cast<int64_t>(r.report.completed)},
                {"shed", static_cast<int64_t>(r.report.shed)},
                {"requeue_shed", static_cast<int64_t>(r.report.requeue_shed)},
                {"timed_out", static_cast<int64_t>(r.report.timed_out)},
                {"failed", static_cast<int64_t>(r.report.failed)},
                {"placed_warm", static_cast<int64_t>(r.placed_warm)},
                {"placed_spill", static_cast<int64_t>(r.placed_spill)},
                {"dropped_reservations", static_cast<int64_t>(r.refused)},
                {"leaked_reservation_bytes", static_cast<int64_t>(r.leaked_bytes)},
                {"makespan_sim_s", r.report.makespan_s},
                {"qps_sim", r.report.qps},
                {"mean_ms", r.report.mean_ms},
                {"p50_ms", r.report.p50_ms},
                {"p95_ms", r.report.p95_ms},
                {"p99_ms", r.report.p99_ms},
                {"max_ms", r.report.max_ms}});
}

}  // namespace

int main() {
  std::printf("=== Multi-GPU serving: 64-client closed-loop TPC-H mix, "
              "1/2/4 GH200 devices ===\n");
  std::printf("(loaded SF %.3g modeled as SF 1; latencies are simulated"
              " time)\n\n",
              bench::LoadedSf());
  bench::BenchJson json("serve_multi_gpu");

  const double data_scale = 1.0 / bench::LoadedSf();
  json.Set("clients", static_cast<int64_t>(kClients));
  json.Set("queries_per_client", static_cast<int64_t>(kQueriesPerClient));
  json.Set("tenants", static_cast<int64_t>(static_cast<int>(kTenants.size())));

  RunResult one = RunConfig(1, data_scale);
  RunResult two = RunConfig(2, data_scale);
  RunResult four = RunConfig(4, data_scale);

  AddRow(&json, 1, one);
  AddRow(&json, 2, two);
  AddRow(&json, 4, four);

  const double speedup2 =
      one.report.qps > 0 ? two.report.qps / one.report.qps : 0;
  const double speedup4 =
      one.report.qps > 0 ? four.report.qps / one.report.qps : 0;
  json.Set("speedup_qps_2dev", speedup2);
  json.Set("speedup_qps_4dev", speedup4);
  json.Set("target_speedup_qps_4dev", 1.8);
  std::printf("\n2 devices vs 1: %.2fx    4 devices vs 1: %.2fx"
              " (target >= 1.8x)\n",
              speedup2, speedup4);

  const uint64_t total = static_cast<uint64_t>(kClients * kQueriesPerClient);
  const bool ok = one.report.completed == total &&
                  two.report.completed == total &&
                  four.report.completed == total && four.refused == 0 &&
                  four.leaked_bytes == 0 && speedup4 >= 1.8;
  if (!ok) {
    std::printf("FAIL: acceptance criteria not met (completed %llu/%llu/%llu,"
                " dropped %llu, leaked %llu bytes, 4-dev speedup %.2fx)\n",
                static_cast<unsigned long long>(one.report.completed),
                static_cast<unsigned long long>(two.report.completed),
                static_cast<unsigned long long>(four.report.completed),
                static_cast<unsigned long long>(four.refused),
                static_cast<unsigned long long>(four.leaked_bytes), speedup4);
    return 1;
  }
  std::printf("OK: every query completed on every device count, zero dropped"
              " reservations\n");
  return 0;
}
