// Ablation: hot vs cold runs (paper §4.1 reports hot runs; §3.2.3's caching
// region is what makes them possible).

#include <cstdio>

#include "bench_util.h"

using namespace sirius;

int main() {
  bench::PrintHeader("Ablation: caching region — cold vs hot runs");
  bench::BenchJson json("ablation_cache");

  auto duck = bench::MakeTpchDb(sim::M7i16xlarge(), sim::DuckDbProfile());
  engine::SiriusEngine::Options options;
  options.data_scale = bench::DataScale();
  engine::SiriusEngine eng(duck.get(), options);
  duck->SetAccelerator(&eng);

  std::printf("%-4s %12s %12s %10s %16s\n", "", "cold(ms)", "hot(ms)",
              "cold/hot", "cached GiB");
  std::vector<double> ratios;
  for (int q = 1; q <= 22; ++q) {
    eng.buffer_manager().EvictAll();
    auto cold = duck->Query(tpch::Query(q));
    auto hot = duck->Query(tpch::Query(q));
    SIRIUS_CHECK_OK(cold.status());
    SIRIUS_CHECK_OK(hot.status());
    double cm = cold.ValueOrDie().timeline.total_seconds() * 1e3;
    double hm = hot.ValueOrDie().timeline.total_seconds() * 1e3;
    ratios.push_back(cm / hm);
    const double cached_gib =
        eng.buffer_manager().cached_modeled_bytes() / double(1ull << 30);
    std::printf("Q%-3d %12.1f %12.1f %9.2fx %15.2f\n", q, cm, hm, cm / hm,
                cached_gib);
    json.AddRow({{"query", static_cast<int64_t>(q)},
                 {"cold_ms", cm},
                 {"hot_ms", hm},
                 {"cold_over_hot", cm / hm},
                 {"cached_gib", cached_gib}});
  }
  duck->SetAccelerator(nullptr);
  std::printf("\ngeomean cold/hot ratio: %.2fx over NVLink-C2C\n",
              bench::Geomean(ratios));
  json.Set("geomean_cold_over_hot", bench::Geomean(ratios));
  std::printf(
      "Shape check: even cold runs stay fast on NVLink-class links (§2.1); "
      "the caching region removes the remaining load cost entirely "
      "(§4.1's hot-run methodology).\n");
  return 0;
}
