// Table 1 reproduction: CPU vs GPU instance comparison (paper §1).
//
// Prints the spec table the paper shows, then extends it with modeled
// cost-normalized analytics throughput (scan GB/s per $/h) — the
// quantitative version of the paper's "same rental cost" argument.

#include <cstdio>

#include "bench_util.h"
#include "sim/cost_model.h"
#include "sim/device.h"

using namespace sirius;

namespace {

void PrintRow(const sim::DeviceProfile& p, bench::BenchJson* json) {
  // Modeled time to scan+filter 1 TB (the bandwidth-bound analytics core).
  sim::KernelCost cost;
  cost.seq_bytes = 1ull << 40;
  cost.rows = (1ull << 40) / 8;
  cost.ops_per_row = 1.0;
  double seconds = sim::KernelSeconds(p, cost);
  double scan_gbps = 1024.0 / seconds;
  std::printf("%-16s %-5s %8d %10.0f %9.0f %8.2f %12.1f %14.1f\n",
              p.name.c_str(), p.is_gpu() ? "GPU" : "CPU", p.cores,
              p.mem_bw_gbps, p.mem_capacity_gib, p.price_per_hour, scan_gbps,
              scan_gbps / p.price_per_hour);
  json->AddRow({{"instance", p.name},
                {"kind", std::string(p.is_gpu() ? "GPU" : "CPU")},
                {"cores", static_cast<int64_t>(p.cores)},
                {"mem_bw_gbps", p.mem_bw_gbps},
                {"mem_capacity_gib", p.mem_capacity_gib},
                {"price_per_hour", p.price_per_hour},
                {"scan_gbps", scan_gbps},
                {"scan_gbps_per_dollar_hour", scan_gbps / p.price_per_hour}});
}

}  // namespace

int main() {
  std::printf("=== Table 1: Comparison of CPU and GPU instances ===\n\n");
  bench::BenchJson json("table1");
  std::printf("%-16s %-5s %8s %10s %9s %8s %12s %14s\n", "instance", "kind",
              "cores", "memBW GB/s", "mem GiB", "$/hour", "scan GB/s",
              "GB/s per $/h");
  PrintRow(sim::C6aMetal(), &json);
  PrintRow(sim::M7i16xlarge(), &json);
  PrintRow(sim::Gh200Gpu(), &json);
  PrintRow(sim::A100Gpu(), &json);

  std::printf(
      "\nPaper claim check: the GH200 offers ~7.5x the memory bandwidth of "
      "c6a.metal at ~44%% of the rental price — an order of magnitude more "
      "bandwidth per dollar, the economic core of the paper's argument.\n");
  return 0;
}
