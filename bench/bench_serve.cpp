// Serving-layer bench: concurrent query serving vs serialized execution.
//
// Runs the ROADMAP acceptance scenario for src/serve: a 64-client
// closed-loop TPC-H mix against one simulated GH200, once serialized
// (1 stream, solo utilization 1.0 — queries run back to back) and once
// concurrent (8 streams, solo utilization 0.45 — the StreamSet contention
// model lets independent queries overlap). Reports latency percentiles and
// queries-per-simulated-second for both, plus the speedup; the concurrent
// configuration must complete every query with zero dropped reservations
// and sustain >= 1.5x the serialized throughput (also asserted in
// tests/serve_test.cc).

#include <cstdio>

#include "bench_util.h"
#include "serve/load_gen.h"
#include "serve/serve.h"

using namespace sirius;

namespace {

constexpr int kClients = 64;
constexpr int kQueriesPerClient = 2;
const std::vector<int> kMix = {1, 3, 5, 6, 10, 12, 14, 19};

struct RunResult {
  serve::LoadReport report;
  uint64_t refused = 0;
  uint64_t leaked_bytes = 0;
};

RunResult RunConfig(const char* label, int num_streams,
                    double solo_utilization, double data_scale) {
  // Fresh database + engine per configuration so caching-region state and
  // reservation pools cannot leak across runs.
  auto db = bench::MakeTpchDb(sim::Gh200Gpu(), sim::DuckDbProfile(), data_scale);
  engine::SiriusEngine::Options eng_opts;
  eng_opts.device = sim::Gh200Gpu();
  eng_opts.profile = sim::SiriusProfile();
  eng_opts.data_scale = data_scale;
  engine::SiriusEngine engine(db.get(), eng_opts);

  // Hot-run methodology (§4.1): populate the caching region before serving,
  // so both configurations measure steady-state execution.
  for (int q : kMix) {
    auto plan = db->PlanSql(tpch::Query(q));
    SIRIUS_CHECK_OK(plan.status());
    auto r = engine.ExecutePlan(plan.ValueOrDie());
    SIRIUS_CHECK_OK(r.status());
  }

  serve::ServeOptions options;
  options.num_streams = num_streams;
  options.solo_utilization = solo_utilization;
  options.max_queue_depth = 2 * kClients;
  options.result_cache = false;  // measure execution, not cache hits
  serve::QueryServer server(db.get(), &engine, options);

  serve::LoadOptions load;
  load.num_clients = kClients;
  load.queries_per_client = kQueriesPerClient;
  load.query_mix = kMix;
  load.seed = 42;
  serve::LoadGenerator generator(&server, load);
  auto report = generator.Run();
  SIRIUS_CHECK_OK(report.status());

  RunResult out;
  out.report = report.ValueOrDie();
  out.refused = server.reservations().total_refused();
  out.leaked_bytes = server.reservations().reserved();
  std::printf(
      "%-12s %4d streams  completed %3llu/%d  p50 %8.1f ms  p95 %8.1f ms  "
      "p99 %8.1f ms  %8.2f q/sim-s\n",
      label, num_streams,
      static_cast<unsigned long long>(out.report.completed),
      kClients * kQueriesPerClient, out.report.p50_ms, out.report.p95_ms,
      out.report.p99_ms, out.report.qps);
  return out;
}

void AddRow(bench::BenchJson* json, const char* config, int num_streams,
            double solo_utilization, const RunResult& r) {
  json->AddRow({{"config", std::string(config)},
                {"num_streams", static_cast<int64_t>(num_streams)},
                {"solo_utilization", solo_utilization},
                {"completed", static_cast<int64_t>(r.report.completed)},
                {"shed", static_cast<int64_t>(r.report.shed)},
                {"timed_out", static_cast<int64_t>(r.report.timed_out)},
                {"failed", static_cast<int64_t>(r.report.failed)},
                {"dropped_reservations", static_cast<int64_t>(r.refused)},
                {"leaked_reservation_bytes", static_cast<int64_t>(r.leaked_bytes)},
                {"makespan_sim_s", r.report.makespan_s},
                {"qps_sim", r.report.qps},
                {"mean_ms", r.report.mean_ms},
                {"p50_ms", r.report.p50_ms},
                {"p95_ms", r.report.p95_ms},
                {"p99_ms", r.report.p99_ms},
                {"max_ms", r.report.max_ms}});
}

}  // namespace

int main() {
  std::printf("=== Serving layer: 64-client closed-loop TPC-H mix (GH200) ===\n");
  std::printf("(loaded SF %.3g modeled as SF 1; latencies are simulated"
              " time)\n\n",
              bench::LoadedSf());
  bench::BenchJson json("serve");

  // Model SF1 on the loaded scale so 64 concurrent admissions fit the GH200
  // processing region — the acceptance criterion is zero dropped
  // reservations, not admission-control behavior (bench_serve measures
  // throughput; overload is exercised by tests/serve_chaos_test.cc).
  const double data_scale = 1.0 / bench::LoadedSf();
  json.Set("clients", static_cast<int64_t>(kClients));
  json.Set("queries_per_client", static_cast<int64_t>(kQueriesPerClient));

  RunResult serial = RunConfig("serialized", 1, 1.0, data_scale);
  RunResult concurrent = RunConfig("concurrent", 8, 0.45, data_scale);

  AddRow(&json, "serialized", 1, 1.0, serial);
  AddRow(&json, "concurrent", 8, 0.45, concurrent);

  const double speedup =
      serial.report.qps > 0 ? concurrent.report.qps / serial.report.qps : 0;
  json.Set("speedup_qps", speedup);
  json.Set("target_speedup_qps", 1.5);
  std::printf("\nconcurrent vs serialized: %.2fx queries/sim-second"
              " (target >= 1.5x)\n",
              speedup);

  const bool ok = concurrent.report.completed ==
                      static_cast<uint64_t>(kClients * kQueriesPerClient) &&
                  concurrent.refused == 0 && concurrent.leaked_bytes == 0 &&
                  speedup >= 1.5;
  if (!ok) {
    std::printf("FAIL: acceptance criteria not met (completed %llu, dropped "
                "%llu, leaked %llu bytes, speedup %.2fx)\n",
                static_cast<unsigned long long>(concurrent.report.completed),
                static_cast<unsigned long long>(concurrent.refused),
                static_cast<unsigned long long>(concurrent.leaked_bytes),
                speedup);
    return 1;
  }
  std::printf("OK: all %d queries completed, zero dropped reservations\n",
              kClients * kQueriesPerClient);
  return 0;
}
