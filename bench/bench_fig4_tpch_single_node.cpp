// Figure 4 reproduction: TPC-H end-to-end single-node performance (§4.2).
//
// Engines, at the paper's equal-rental-cost pairing ($3.2/h):
//   - DuckDB      : DuckX CPU engine on m7i.16xlarge
//   - ClickHouse  : CPU engine with the ClickHouse planning policy (no join
//                   reordering, right-side builds) on m7i.16xlarge
//   - Sirius      : GPU engine on GH200, drop-in attached to the DuckDB host
//                   through the Substrait boundary (hot runs, 50/50 memory
//                   split — §4.1 methodology)
//
// Paper shape targets: Sirius ~7x over DuckDB (geomean), ~20x over
// ClickHouse; ClickHouse worst on join-heavy queries; Q9 DNF and Q21
// unsupported on ClickHouse.

#include <cstdio>

#include "bench_util.h"

using namespace sirius;

int main() {
  bench::PrintHeader("Figure 4: TPC-H end-to-end single node");
  bench::BenchJson json("fig4");

  auto duck = bench::MakeTpchDb(sim::M7i16xlarge(), sim::DuckDbProfile());
  auto click = bench::MakeTpchDb(sim::M7i16xlarge(), sim::ClickHouseProfile());

  engine::SiriusEngine::Options gpu_options;
  gpu_options.device = sim::Gh200Gpu();
  gpu_options.profile = sim::SiriusProfile();
  gpu_options.data_scale = bench::DataScale();
  engine::SiriusEngine sirius_engine(duck.get(), gpu_options);

  // ClickHouse "did not finish" threshold, simulated seconds.
  const double kDnfSeconds = 60.0;

  std::printf("%-4s %12s %14s %12s %14s %14s\n", "", "DuckDB(ms)",
              "ClickHouse(ms)", "Sirius(ms)", "Sirius/DuckDB", "Sirius/CH");

  std::vector<double> duck_speedups, ch_speedups;
  for (int q = 1; q <= 22; ++q) {
    const std::string& sql = tpch::Query(q);

    duck->SetAccelerator(nullptr);
    auto cpu = duck->Query(sql);
    SIRIUS_CHECK_OK(cpu.status());
    double duck_ms = cpu.ValueOrDie().timeline.total_seconds() * 1e3;

    // ClickHouse: Q21's correlated-EXISTS pattern is unsupported (paper
    // footnote); correlated subqueries elsewhere run decorrelated, matching
    // the paper's compatibility rewrite.
    double ch_ms = -1;
    bool ch_dnf = false, ch_ns = q == 21;
    if (!ch_ns) {
      auto ch = click->Query(sql);
      SIRIUS_CHECK_OK(ch.status());
      ch_ms = ch.ValueOrDie().timeline.total_seconds() * 1e3;
      if (ch_ms > kDnfSeconds * 1e3) ch_dnf = true;
    }

    duck->SetAccelerator(&sirius_engine);
    (void)duck->Query(sql);  // cold run populates the caching region
    auto gpu = duck->Query(sql);
    duck->SetAccelerator(nullptr);
    SIRIUS_CHECK_OK(gpu.status());
    SIRIUS_CHECK(gpu.ValueOrDie().accelerated);
    double gpu_ms = gpu.ValueOrDie().timeline.total_seconds() * 1e3;

    char ch_buf[32];
    if (ch_ns) {
      std::snprintf(ch_buf, sizeof(ch_buf), "NS");
    } else if (ch_dnf) {
      std::snprintf(ch_buf, sizeof(ch_buf), "DNF");
    } else {
      std::snprintf(ch_buf, sizeof(ch_buf), "%.1f", ch_ms);
    }
    char chs_buf[32];
    if (ch_ns || ch_dnf) {
      std::snprintf(chs_buf, sizeof(chs_buf), "-");
    } else {
      std::snprintf(chs_buf, sizeof(chs_buf), "%.1fx", ch_ms / gpu_ms);
      ch_speedups.push_back(ch_ms / gpu_ms);
    }
    duck_speedups.push_back(duck_ms / gpu_ms);
    std::printf("Q%-3d %12.1f %14s %12.1f %13.1fx %14s\n", q, duck_ms, ch_buf,
                gpu_ms, duck_ms / gpu_ms, chs_buf);

    bench::BenchJson::Row row;
    row.emplace_back("query", static_cast<int64_t>(q));
    row.emplace_back("duckdb_ms", duck_ms);
    row.emplace_back("clickhouse_status",
                     std::string(ch_ns ? "ns" : ch_dnf ? "dnf" : "ok"));
    if (!ch_ns) row.emplace_back("clickhouse_ms", ch_ms);
    row.emplace_back("sirius_ms", gpu_ms);
    row.emplace_back("speedup_vs_duckdb", duck_ms / gpu_ms);
    if (!ch_ns && !ch_dnf) row.emplace_back("speedup_vs_clickhouse", ch_ms / gpu_ms);
    json.AddRow(std::move(row));
  }

  std::printf("\ngeomean speedup Sirius vs DuckDB:     %5.2fx  (paper: ~7x)\n",
              bench::Geomean(duck_speedups));
  std::printf("geomean speedup Sirius vs ClickHouse: %5.2fx  (paper: ~20x)\n",
              bench::Geomean(ch_speedups));
  json.Set("geomean_speedup_vs_duckdb", bench::Geomean(duck_speedups));
  json.Set("geomean_speedup_vs_clickhouse", bench::Geomean(ch_speedups));
  json.Set("dnf_threshold_s", kDnfSeconds);
  return 0;
}
