// Table 2 reproduction: distributed TPC-H (Q1, Q3, Q6) on a 4-node cluster
// (paper §4.3): Apache Doris vs ClickHouse vs Sirius (drop-in on Doris),
// with the Sirius time split into Compute / Exchange / Other.
//
// Cluster model: 4 nodes, Xeon Gold 6526Y CPUs, A100 40GB GPUs (Sirius),
// 400 Gbps InfiniBand. Paper shape targets: Sirius 12.5x / 2.5x / 2.4x over
// Doris on Q1/Q3/Q6; ClickHouse competitive without joins but collapsing on
// the distributed join in Q3; Sirius Q3 exchange-bound; Q1/Q6 dominated by
// coordinator overhead ("Other"), which does not scale with data size.

#include <cstdio>

#include "bench_util.h"
#include "dist/cluster.h"
#include "tpch/dbgen.h"

using namespace sirius;

namespace {

dist::DorisCluster MakeCluster(const sim::DeviceProfile& device,
                               const sim::EngineProfile& engine) {
  dist::DorisCluster::Options options;
  options.num_nodes = 4;
  options.device = device;
  options.engine = engine;
  options.network = sim::Infiniband400();
  options.data_scale = bench::DataScale();
  return dist::DorisCluster(options);
}

}  // namespace

int main() {
  bench::PrintHeader("Table 2: distributed TPC-H (4 nodes)");
  bench::BenchJson json("table2");

  auto doris = MakeCluster(sim::XeonGold6526Y(), sim::DorisProfile());
  auto click = MakeCluster(sim::XeonGold6526Y(), sim::ClickHouseProfile());
  auto sirius_gpu = MakeCluster(sim::A100Gpu(), sim::SiriusProfile());

  for (const auto& name : tpch::TableNames()) {
    auto table = tpch::GenerateTable(name, bench::LoadedSf()).ValueOrDie();
    SIRIUS_CHECK_OK(doris.LoadPartitioned(name, table));
    SIRIUS_CHECK_OK(click.LoadPartitioned(name, table));
    SIRIUS_CHECK_OK(sirius_gpu.LoadPartitioned(name, table));
  }

  std::printf("%-4s %10s %14s %10s | %9s %9s %9s | %8s\n", "", "Doris(ms)",
              "ClickHouse(ms)", "Sirius(ms)", "Compute", "Exchange", "Other",
              "vs Doris");
  for (int q : {1, 3, 6}) {
    const std::string& sql = tpch::Query(q);
    auto d = doris.Query(sql);
    auto c = click.Query(sql);
    auto s = sirius_gpu.Query(sql);
    SIRIUS_CHECK_OK(d.status());
    SIRIUS_CHECK_OK(c.status());
    SIRIUS_CHECK_OK(s.status());
    const auto& dv = d.ValueOrDie();
    const auto& cv = c.ValueOrDie();
    const auto& sv = s.ValueOrDie();
    SIRIUS_CHECK(dv.table->Equals(*sv.table) ||
                 dv.table->EqualsUnordered(*sv.table));
    std::printf("Q%-3d %10.0f %14.0f %10.0f | %9.0f %9.0f %9.0f | %7.1fx\n", q,
                dv.total_seconds * 1e3, cv.total_seconds * 1e3,
                sv.total_seconds * 1e3, sv.compute_seconds * 1e3,
                sv.exchange_seconds * 1e3, sv.other_seconds * 1e3,
                dv.total_seconds / sv.total_seconds);
    json.AddRow({{"query", static_cast<int64_t>(q)},
                 {"doris_ms", dv.total_seconds * 1e3},
                 {"clickhouse_ms", cv.total_seconds * 1e3},
                 {"sirius_ms", sv.total_seconds * 1e3},
                 {"sirius_compute_ms", sv.compute_seconds * 1e3},
                 {"sirius_exchange_ms", sv.exchange_seconds * 1e3},
                 {"sirius_other_ms", sv.other_seconds * 1e3},
                 {"speedup_vs_doris", dv.total_seconds / sv.total_seconds}});
  }
  std::printf(
      "\n(paper: Doris 1193/838/199, ClickHouse 393/12785/294, Sirius "
      "97/341/84 with breakdown 33+3+61 / 43+233+75 / 36+1+47)\n"
      "Shape checks: Sirius wins everywhere; ClickHouse collapses on the "
      "distributed join (Q3); Sirius Q3 is exchange-bound; the fixed "
      "coordinator 'Other' dominates the small queries.\n");
  return 0;
}
