// Ablation: fused pipeline execution — each pipeline's streaming chain
// (filter/project/probe) compiles to one fused pass per morsel, with
// selection vectors flowing between operators and sinks as the only
// materialization points. Compares Sirius with and without fusion on
// scan-heavy (Q1/Q6), join-heavy (Q3/Q19) TPC-H queries and two SSB
// flights, reporting simulated time, kernel launches, and HBM traffic.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ssb/dbgen.h"
#include "ssb/queries.h"

using namespace sirius;

namespace {

struct Case {
  std::string label;
  host::Database* db;
  const std::string* sql;
};

}  // namespace

int main() {
  bench::PrintHeader("Ablation: fused pipeline execution");
  bench::BenchJson json("ablation_fusion");

  auto tpch_db = bench::MakeTpchDb(sim::M7i16xlarge(), sim::DuckDbProfile());

  host::Database::Options ssb_opts;
  ssb_opts.device = sim::M7i16xlarge();
  ssb_opts.engine = sim::DuckDbProfile();
  ssb_opts.data_scale = bench::DataScale();
  auto ssb_db = std::make_unique<host::Database>(ssb_opts);
  {
    ssb::SsbOptions load;
    load.sf = bench::LoadedSf();
    SIRIUS_CHECK_OK(ssb::LoadSsb(ssb_db.get(), load));
  }

  engine::SiriusEngine::Options off;
  off.data_scale = bench::DataScale();
  off.fusion = false;
  engine::SiriusEngine tpch_off(tpch_db.get(), off);
  engine::SiriusEngine ssb_off(ssb_db.get(), off);

  engine::SiriusEngine::Options on = off;
  on.fusion = true;
  engine::SiriusEngine tpch_on(tpch_db.get(), on);
  engine::SiriusEngine ssb_on(ssb_db.get(), on);

  std::vector<Case> cases;
  for (int q : {1, 3, 6, 19}) {
    cases.push_back({"Q" + std::to_string(q), tpch_db.get(), &tpch::Query(q)});
  }
  for (int q : {1, 8}) {  // q1.1 (scan flight), q3.2 (join flight)
    cases.push_back({ssb::QueryName(q), ssb_db.get(), &ssb::Query(q)});
  }

  std::printf("%-6s %12s %12s %12s %12s %8s %18s %16s\n", "", "off (ms)",
              "on (ms)", "off exec", "on exec", "gain", "launches off/on",
              "HBM GB off/on");
  std::vector<double> gains;
  for (const Case& c : cases) {
    engine::SiriusEngine* eng_off = c.db == tpch_db.get() ? &tpch_off : &ssb_off;
    engine::SiriusEngine* eng_on = c.db == tpch_db.get() ? &tpch_on : &ssb_on;

    c.db->SetAccelerator(eng_off);
    (void)c.db->Query(*c.sql);  // warm the cache
    auto a = c.db->Query(*c.sql);
    c.db->SetAccelerator(eng_on);
    (void)c.db->Query(*c.sql);
    auto b = c.db->Query(*c.sql);
    c.db->SetAccelerator(nullptr);
    SIRIUS_CHECK_OK(a.status());
    SIRIUS_CHECK_OK(b.status());
    SIRIUS_CHECK(a.ValueOrDie().table->Equals(*b.ValueOrDie().table));

    const auto& off_r = a.ValueOrDie();
    const auto& on_r = b.ValueOrDie();
    // Execution time excludes the fixed Substrait-translation/dispatch
    // overhead, a constant identical in both modes that the fusion ablation
    // is not about; end-to-end times are reported alongside.
    const double fixed_ms = sim::SiriusProfile().fixed_query_overhead_s * 1e3;
    const double off_ms = off_r.timeline.total_seconds() * 1e3;
    const double on_ms = on_r.timeline.total_seconds() * 1e3;
    const double off_exec_ms = off_ms - fixed_ms;
    const double on_exec_ms = on_ms - fixed_ms;
    const double gain = off_exec_ms / on_exec_ms;
    const double off_gb = static_cast<double>(off_r.kernels.hbm_bytes()) / 1e9;
    const double on_gb = static_cast<double>(on_r.kernels.hbm_bytes()) / 1e9;
    gains.push_back(gain);
    std::printf("%-6s %12.1f %12.1f %12.1f %12.1f %7.2fx %8llu /%7llu %8.1f /%6.1f\n",
                c.label.c_str(), off_ms, on_ms, off_exec_ms, on_exec_ms, gain,
                static_cast<unsigned long long>(off_r.kernels.launches),
                static_cast<unsigned long long>(on_r.kernels.launches),
                off_gb, on_gb);
    json.AddRow({{"query", c.label},
                 {"off_ms", off_ms},
                 {"on_ms", on_ms},
                 {"off_exec_ms", off_exec_ms},
                 {"on_exec_ms", on_exec_ms},
                 {"gain", gain},
                 {"launches_off", static_cast<int64_t>(off_r.kernels.launches)},
                 {"launches_on", static_cast<int64_t>(on_r.kernels.launches)},
                 {"hbm_gb_off", off_gb},
                 {"hbm_gb_on", on_gb}});
  }

  const double geomean = bench::Geomean(gains);
  std::printf("\ngeomean execution-time gain: %.2fx\n", geomean);
  json.Set("geomean_gain", geomean);
  std::printf(
      "Shape check: aggregation chains (Q1) gain most — the fused sink "
      "privatizes few-group accumulators; join chains (Q3/Q19/q3.2) skip "
      "both full-width gathers per probe; dense scan chains (Q6/q1.1) gain "
      "the post-filter gather and launch overhead but keep their compute "
      "floor. Results are identical because selection composition is "
      "exact.\n");
  // Fusion acceptance: fused execution must hold >= 1.3x geomean over
  // materialized execution on these Q1/Q6-style and join-style chains.
  SIRIUS_CHECK(geomean >= 1.3);
  return 0;
}
