// Federated serving bench: hit-anywhere replicated result caching vs a
// single-coordinator cache region, on the same 4-node cluster.
//
// A 1024-client open-loop TPC-H mix (16 tenants, one rate-overridden hot
// tenant, fixed seed) runs against a ServeCluster twice, everything equal
// except the cache region: CacheMode::kCoordinatorOnly (node 0 owns the
// only replica; every remote hit pays the fabric round trip and its service
// lands on node 0) vs CacheMode::kReplicated (fills multicast to every
// replica; any node serves a hit locally). The acceptance gate is the
// paper's federation claim: hit-anywhere must beat the coordinator baseline
// on BOTH p95 latency and the maximum per-node serving load (the hotspot).
// All numbers are simulated time, bit-for-bit reproducible under the fixed
// seed; scripts/bench_gate.py holds this binary's JSON to the committed
// snapshot.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/serve_cluster.h"
#include "serve/load_gen.h"
#include "serve/serve.h"

using namespace sirius;

namespace {

constexpr int kNodes = 4;
constexpr int kClients = 1024;
const std::vector<int> kMix = {1, 6};

std::vector<std::string> Tenants() {
  std::vector<std::string> tenants;
  for (int i = 0; i < 16; ++i) tenants.push_back("t" + std::to_string(i));
  return tenants;
}

struct RunResult {
  serve::LoadReport report;
  cluster::ClusterStats stats;
  std::vector<cluster::NodeLoad> loads;
  double max_load_s = 0;
  uint64_t max_dispatched = 0;
};

RunResult RunConfig(cluster::CacheMode mode, double data_scale) {
  // Fresh database + one engine per node for every configuration, so no
  // cache or reservation state leaks between the two cache modes.
  host::Database::Options db_opts;
  db_opts.data_scale = data_scale;
  host::Database db(db_opts);
  SIRIUS_CHECK_OK(tpch::LoadTpch(&db, bench::LoadedSf()));

  std::vector<std::unique_ptr<engine::SiriusEngine>> engines;
  std::vector<engine::SiriusEngine*> engine_ptrs;
  for (int n = 0; n < kNodes; ++n) {
    engine::SiriusEngine::Options eng_opts;
    eng_opts.data_scale = data_scale;
    engines.push_back(std::make_unique<engine::SiriusEngine>(&db, eng_opts));
    engine_ptrs.push_back(engines.back().get());
  }
  // Hot-run methodology: every node engine executes the mix once so device
  // column caches are warm and execution timings are steady-state.
  for (auto& eng : engines) {
    for (int q : kMix) {
      auto plan = db.PlanSql(tpch::Query(q));
      SIRIUS_CHECK_OK(plan.status());
      SIRIUS_CHECK_OK(eng->ExecutePlan(plan.ValueOrDie()).status());
    }
  }

  cluster::ClusterOptions options;
  options.num_nodes = kNodes;
  options.cache_mode = mode;
  options.data_scale = data_scale;
  options.node.num_streams = 8;
  options.node.execution_threads = 8;
  options.node.max_queue_depth = 256;
  cluster::ServeCluster cl(&db, engine_ptrs, options);

  // Warm the cache region itself (one execution per distinct query) so the
  // measured open-loop phase compares steady-state hit serving: local
  // everywhere (replicated) vs over-the-wire through node 0 (coordinator).
  {
    auto session = cl.OpenSession("warm");
    for (int q : kMix) {
      auto id = cl.Submit(session, tpch::Query(q), serve::SubmitOptions{});
      SIRIUS_CHECK_OK(id.status());
    }
    SIRIUS_CHECK_OK(cl.DrainAll());
  }

  serve::LoadOptions load;
  load.open_loop = true;
  load.num_clients = kClients;
  load.arrival_rate_qps = 4000;
  load.duration_s = 0.5;
  load.query_mix = kMix;
  load.tenants = Tenants();
  // One hot tenant at 4x its fair share of the base rate: the skew the
  // replicated region absorbs on the hot tenant's own replica.
  load.tenant_arrival_rate_qps["t0"] = 1000;
  load.seed = 42;
  serve::LoadGenerator generator(&cl, load);
  auto report = generator.Run();
  SIRIUS_CHECK_OK(report.status());

  RunResult out;
  out.report = report.ValueOrDie();
  out.stats = cl.stats();
  out.loads = cl.node_loads();
  for (const cluster::NodeLoad& l : out.loads) {
    out.max_load_s = std::max(out.max_load_s, l.load_s());
    out.max_dispatched = std::max(out.max_dispatched, l.dispatched);
  }
  const char* label =
      mode == cluster::CacheMode::kReplicated ? "hit-anywhere" : "coordinator";
  std::printf(
      "%-12s  completed %5llu  hits %5llu  remote %5llu  fills %3llu  "
      "p50 %7.3f ms  p95 %7.3f ms  max node load %8.5f s\n",
      label, static_cast<unsigned long long>(out.report.completed),
      static_cast<unsigned long long>(out.report.cache_hits),
      static_cast<unsigned long long>(out.stats.remote_hits),
      static_cast<unsigned long long>(out.stats.fills_sent),
      out.report.p50_ms, out.report.p95_ms, out.max_load_s);
  return out;
}

void AddRows(bench::BenchJson* json, const std::string& mode,
             const RunResult& r) {
  for (size_t n = 0; n < r.loads.size(); ++n) {
    const cluster::NodeLoad& l = r.loads[n];
    json->AddRow({{"mode", mode},
                  {"node", static_cast<int64_t>(n)},
                  {"dispatched", static_cast<int64_t>(l.dispatched)},
                  {"cache_hits", static_cast<int64_t>(l.cache_hits)},
                  {"busy_s", l.busy_s},
                  {"hit_service_s", l.hit_service_s},
                  {"fill_egress_s", l.fill_egress_s},
                  {"load_s", l.load_s()}});
  }
  json->Set(mode + "_completed", static_cast<int64_t>(r.report.completed));
  json->Set(mode + "_cache_hits", static_cast<int64_t>(r.report.cache_hits));
  json->Set(mode + "_shed", static_cast<int64_t>(r.report.shed));
  json->Set(mode + "_failed", static_cast<int64_t>(r.report.failed));
  json->Set(mode + "_remote_hits",
            static_cast<int64_t>(r.stats.remote_hits));
  json->Set(mode + "_fills_sent", static_cast<int64_t>(r.stats.fills_sent));
  json->Set(mode + "_fills_delivered",
            static_cast<int64_t>(r.stats.fills_delivered));
  json->Set(mode + "_fill_bytes_wire",
            static_cast<int64_t>(r.stats.fill_bytes_wire));
  json->Set(mode + "_p50_ms", r.report.p50_ms);
  json->Set(mode + "_p95_ms", r.report.p95_ms);
  json->Set(mode + "_p99_ms", r.report.p99_ms);
  json->Set(mode + "_qps_sim", r.report.qps);
  json->Set(mode + "_max_node_load_s", r.max_load_s);
  json->Set(mode + "_max_node_dispatched",
            static_cast<int64_t>(r.max_dispatched));
}

}  // namespace

int main() {
  std::printf("=== Federated serving: 4-node cluster, %d open-loop clients, "
              "hit-anywhere vs coordinator cache ===\n",
              kClients);
  std::printf("(loaded SF %.3g modeled as SF 1; latencies are simulated "
              "time)\n\n",
              bench::LoadedSf());
  bench::BenchJson json("serve_cluster");

  const double data_scale = 1.0 / bench::LoadedSf();
  json.Set("nodes", static_cast<int64_t>(kNodes));
  json.Set("clients", static_cast<int64_t>(kClients));
  json.Set("tenants", static_cast<int64_t>(16));

  RunResult coord = RunConfig(cluster::CacheMode::kCoordinatorOnly, data_scale);
  RunResult rep = RunConfig(cluster::CacheMode::kReplicated, data_scale);

  AddRows(&json, "coordinator", coord);
  AddRows(&json, "replicated", rep);

  const double p95_gain =
      rep.report.p95_ms > 0 ? coord.report.p95_ms / rep.report.p95_ms : 0;
  const double load_gain =
      rep.max_load_s > 0 ? coord.max_load_s / rep.max_load_s : 0;
  json.Set("p95_coordinator_over_replicated", p95_gain);
  json.Set("max_load_coordinator_over_replicated", load_gain);
  std::printf("\nhit-anywhere vs coordinator: p95 %.2fx lower, max node load "
              "%.2fx lower (gate: both > 1)\n",
              p95_gain, load_gain);

  const bool ok = rep.report.failed == 0 && coord.report.failed == 0 &&
                  rep.report.completed > 0 &&
                  rep.report.completed == coord.report.completed &&
                  rep.report.p95_ms < coord.report.p95_ms &&
                  rep.max_load_s < coord.max_load_s;
  if (!ok) {
    std::printf("FAIL: federation gate not met (completed %llu vs %llu, p95 "
                "%.3f vs %.3f ms, max load %.5f vs %.5f s)\n",
                static_cast<unsigned long long>(rep.report.completed),
                static_cast<unsigned long long>(coord.report.completed),
                rep.report.p95_ms, coord.report.p95_ms, rep.max_load_s,
                coord.max_load_s);
    return 1;
  }
  std::printf("OK: replicated hit-anywhere beats the coordinator region on "
              "p95 and per-node hotspot load\n");
  return 0;
}
