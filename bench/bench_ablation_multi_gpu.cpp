// Ablation: multi-GPU scaling (paper §3.4: "extend Sirius to support
// multiple GPUs per node [31]").
//
// Model: G A100 GPUs inside one node, exchanged over NVLink through the
// same exchange-service machinery the distributed runtime uses, with a
// negligible intra-node coordinator. Compute-bound queries should scale
// near-linearly; exchange-bound ones sublinearly — the same tension the
// paper's Table 2 shows across nodes.

#include <cstdio>

#include "bench_util.h"
#include "dist/cluster.h"
#include "tpch/dbgen.h"

using namespace sirius;

int main() {
  bench::PrintHeader("Ablation: multi-GPU scaling (A100s over NVLink)");
  bench::BenchJson json("ablation_multi_gpu");

  std::printf("%-6s %10s %10s %10s   (ms, modeled)\n", "GPUs", "Q1", "Q3", "Q6");
  std::map<int, std::map<int, double>> results;
  for (int gpus : {1, 2, 4, 8}) {
    dist::DorisCluster::Options options;
    options.num_nodes = gpus;
    options.device = sim::A100Gpu();
    options.engine = sim::SiriusProfile();
    options.network = sim::NvlinkC2c();       // intra-node GPU-GPU fabric
    options.coordinator_overhead_s = 0.002;   // no cross-node control plane
    options.data_scale = bench::DataScale();
    dist::DorisCluster cluster(options);
    for (const auto& name : tpch::TableNames()) {
      auto table = tpch::GenerateTable(name, bench::LoadedSf()).ValueOrDie();
      SIRIUS_CHECK_OK(cluster.LoadPartitioned(name, table));
    }
    std::printf("%-6d", gpus);
    for (int q : {1, 3, 6}) {
      auto r = cluster.Query(tpch::Query(q));
      SIRIUS_CHECK_OK(r.status());
      results[q][gpus] = r.ValueOrDie().total_seconds * 1e3;
      std::printf(" %10.1f", r.ValueOrDie().total_seconds * 1e3);
    }
    std::printf("\n");
    json.AddRow({{"gpus", static_cast<int64_t>(gpus)},
                 {"q1_ms", results[1][gpus]},
                 {"q3_ms", results[3][gpus]},
                 {"q6_ms", results[6][gpus]}});
  }
  std::printf("\nspeedup 1 -> 8 GPUs: Q1 %.1fx, Q3 %.1fx, Q6 %.1fx\n",
              results[1][1] / results[1][8], results[3][1] / results[3][8],
              results[6][1] / results[6][8]);
  json.Set("speedup_1_to_8_q1", results[1][1] / results[1][8]);
  json.Set("speedup_1_to_8_q3", results[3][1] / results[3][8]);
  json.Set("speedup_1_to_8_q6", results[6][1] / results[6][8]);
  std::printf(
      "Shape check: the scan/aggregate-bound Q1/Q6 scale well with GPU "
      "count; shuffle-bound Q3 scales sublinearly because per-GPU exchange "
      "volume shrinks slower than compute — the reason the paper pairs "
      "multi-GPU support with better shuffles in its future work.\n");
  return 0;
}
