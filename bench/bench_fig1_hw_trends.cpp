// Figure 1 reproduction: recent hardware trends (paper §2.1).
//
// Prints the four trend panels — GPU device memory, CPU-GPU interconnect
// bandwidth, storage bandwidth, network bandwidth — with compound annual
// growth rates and doubling periods, supporting the paper's "why now"
// argument.

#include <cstdio>

#include "sim/trends.h"

int main() {
  std::printf("=== Figure 1: Recent hardware trends ===\n");
  const char* panel = "abcd";
  int i = 0;
  for (const auto& series : sirius::sim::AllTrends()) {
    std::printf("\n--- Figure 1%c: %s (%s) ---\n", panel[i++],
                series.name.c_str(), series.unit.c_str());
    std::printf("%-6s %-28s %12s\n", "year", "generation", series.unit.c_str());
    for (const auto& p : series.points) {
      std::printf("%-6d %-28s %12.1f\n", p.year, p.label.c_str(), p.value);
    }
    std::printf("CAGR: %.1f%%/year, doubling every %.1f years\n",
                series.Cagr() * 100.0, series.DoublingYears());
  }
  std::printf(
      "\nPaper claim check: every curve grows steeply (memory capacity "
      "doubling ~per generation, PCIe doubling ~2 years), which is the "
      "paper's case that the GPU memory/data-movement barriers are "
      "diminishing.\n");
  return 0;
}
