// Figure 1 reproduction: recent hardware trends (paper §2.1).
//
// Prints the four trend panels — GPU device memory, CPU-GPU interconnect
// bandwidth, storage bandwidth, network bandwidth — with compound annual
// growth rates and doubling periods, supporting the paper's "why now"
// argument.

#include <cstdio>

#include "bench_util.h"
#include "sim/trends.h"

int main() {
  namespace bench = sirius::bench;
  std::printf("=== Figure 1: Recent hardware trends ===\n");
  bench::BenchJson json("fig1");
  const char* panel = "abcd";
  int i = 0;
  for (const auto& series : sirius::sim::AllTrends()) {
    const char p_id = panel[i++];
    std::printf("\n--- Figure 1%c: %s (%s) ---\n", p_id, series.name.c_str(),
                series.unit.c_str());
    std::printf("%-6s %-28s %12s\n", "year", "generation", series.unit.c_str());
    for (const auto& p : series.points) {
      std::printf("%-6d %-28s %12.1f\n", p.year, p.label.c_str(), p.value);
      json.AddRow({{"panel", std::string(1, p_id)},
                   {"series", series.name},
                   {"unit", series.unit},
                   {"year", static_cast<int64_t>(p.year)},
                   {"generation", p.label},
                   {"value", p.value}});
    }
    std::printf("CAGR: %.1f%%/year, doubling every %.1f years\n",
                series.Cagr() * 100.0, series.DoublingYears());
    json.Set("cagr_" + series.name, series.Cagr());
    json.Set("doubling_years_" + series.name, series.DoublingYears());
  }
  std::printf(
      "\nPaper claim check: every curve grows steeply (memory capacity "
      "doubling ~per generation, PCIe doubling ~2 years), which is the "
      "paper's case that the GPU memory/data-movement barriers are "
      "diminishing.\n");
  return 0;
}
