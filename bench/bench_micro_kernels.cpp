// Kernel-level microbenchmarks (google-benchmark, real wall time).
//
// These measure the GDF kernel library itself — the substrate both engines
// share — rather than modeled device time: filter, gather, hash join, hash
// and sort group-by, sort, partition.

#include <benchmark/benchmark.h>

#include <random>

#include "bench_util.h"
#include "format/builder.h"
#include "gdf/copying.h"
#include "expr/eval.h"
#include "gdf/filter.h"
#include "gdf/groupby.h"
#include "gdf/join.h"
#include "gdf/partition.h"
#include "gdf/sort.h"

using namespace sirius;

namespace {

format::ColumnPtr RandomInts(size_t n, int64_t cardinality, uint32_t seed) {
  std::mt19937_64 rng(seed);
  format::ColumnBuilder b(format::Int64());
  b.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    b.AppendInt(static_cast<int64_t>(rng() % static_cast<uint64_t>(cardinality)));
  }
  return b.Finish();
}

format::ColumnPtr RandomStrings(size_t n, int64_t cardinality, uint32_t seed) {
  std::mt19937_64 rng(seed);
  format::ColumnBuilder b(format::String());
  b.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    b.AppendString("key_" +
                   std::to_string(rng() % static_cast<uint64_t>(cardinality)));
  }
  return b.Finish();
}

format::TablePtr OneColumnTable(format::ColumnPtr col, const char* name) {
  return format::Table::Make(
             format::Schema({{name, col->type()}}), {col})
      .ValueOrDie();
}

gdf::Context Ctx() {
  gdf::Context ctx;
  ctx.mr = mem::DefaultResource();
  return ctx;
}

void BM_Filter(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto values = RandomInts(n, 100, 1);
  auto table = OneColumnTable(values, "v");
  auto e = expr::Lt(expr::ColIdx(0, format::Int64()), expr::LitInt(50));
  SIRIUS_CHECK_OK(expr::Bind(e, table->schema()));
  gdf::Context ctx = Ctx();
  for (auto _ : state) {
    auto mask = expr::Evaluate(*e, *table).ValueOrDie();
    auto out = gdf::ApplyBooleanMask(ctx, table, mask).ValueOrDie();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Filter)->Arg(1 << 14)->Arg(1 << 18);

void BM_Gather(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto table = OneColumnTable(RandomInts(n, 1 << 30, 2), "v");
  std::vector<gdf::index_t> idx(n / 2);
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<gdf::index_t>(i * 2);
  gdf::Context ctx = Ctx();
  for (auto _ : state) {
    auto out = gdf::GatherTable(ctx, table, idx).ValueOrDie();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * idx.size());
}
BENCHMARK(BM_Gather)->Arg(1 << 14)->Arg(1 << 18);

void BM_HashJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto probe = RandomInts(n, static_cast<int64_t>(n / 4), 3);
  auto build = RandomInts(n / 4, static_cast<int64_t>(n / 4), 4);
  gdf::Context ctx = Ctx();
  gdf::JoinOptions options;
  for (auto _ : state) {
    auto out = gdf::HashJoin(ctx, {probe}, {build}, options).ValueOrDie();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashJoin)->Arg(1 << 14)->Arg(1 << 18);

void BM_GroupByHashInt(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto keys = RandomInts(n, 1024, 5);
  auto values = OneColumnTable(RandomInts(n, 1000, 6), "v");
  gdf::Context ctx = Ctx();
  std::vector<gdf::AggRequest> aggs{{gdf::AggKind::kSum, 0, "s"}};
  for (auto _ : state) {
    auto out = gdf::GroupByAggregate(ctx, {keys}, {"k"}, values, aggs).ValueOrDie();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GroupByHashInt)->Arg(1 << 14)->Arg(1 << 18);

void BM_GroupBySortString(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto keys = RandomStrings(n, 1024, 7);
  auto values = OneColumnTable(RandomInts(n, 1000, 8), "v");
  gdf::Context ctx = Ctx();
  std::vector<gdf::AggRequest> aggs{{gdf::AggKind::kSum, 0, "s"}};
  for (auto _ : state) {
    auto out = gdf::GroupByAggregate(ctx, {keys}, {"k"}, values, aggs).ValueOrDie();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GroupBySortString)->Arg(1 << 14)->Arg(1 << 18);

void BM_Sort(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto keys = RandomInts(n, 1 << 30, 9);
  gdf::Context ctx = Ctx();
  for (auto _ : state) {
    auto out = gdf::SortIndices(ctx, {keys}).ValueOrDie();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Sort)->Arg(1 << 14)->Arg(1 << 18);

void BM_HashPartition(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto table = OneColumnTable(RandomInts(n, 1 << 30, 10), "v");
  gdf::Context ctx = Ctx();
  for (auto _ : state) {
    auto out = gdf::HashPartition(ctx, table, {0}, 4).ValueOrDie();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_HashPartition)->Arg(1 << 14)->Arg(1 << 18);

// Mirrors the console report into BENCH_micro_kernels.json through the
// shared writer, so these wall-time numbers land in the same format as the
// simulated-time benches.
class JsonMirrorReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonMirrorReporter(bench::BenchJson* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      bench::BenchJson::Row row;
      row.emplace_back("name", run.benchmark_name());
      row.emplace_back("iterations", static_cast<int64_t>(run.iterations));
      row.emplace_back(std::string("real_time_") +
                           benchmark::GetTimeUnitString(run.time_unit),
                       run.GetAdjustedRealTime());
      row.emplace_back(std::string("cpu_time_") +
                           benchmark::GetTimeUnitString(run.time_unit),
                       run.GetAdjustedCPUTime());
      for (const auto& counter : run.counters) {
        row.emplace_back(counter.first, static_cast<double>(counter.second));
      }
      json_->AddRow(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchJson* json_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::BenchJson json("micro_kernels");
  json.Set("time_basis", std::string("wall_clock"));
  JsonMirrorReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
