// SSB workload-family bench: per-query GPU vs CPU across generator variants,
// plus a mixed-tenant serving run (one TPC-H tenant + one SSB tenant).
//
// Section 1 replays all 13 SSB queries hot (§4.1 methodology: cold run
// populates the caching region, the timed run is warm) on the DuckX CPU
// engine and the Sirius GPU engine, once per generator variant — uniform,
// Zipf skew 1 and 2 on the fact-table foreign keys, and the string-heavy
// dimension variant. These are the paper's §4.2 pain points (skewed build
// sides, string sort-based group-bys) as a measured surface.
//
// Section 2 runs a closed-loop mixed workload against one QueryServer whose
// catalog holds both families: tenant "tpch" replays the TPC-H mix while
// tenant "ssb" replays SSB flights, exercising cache/placement under
// heterogeneous load. Acceptance: every query completes with zero dropped
// reservations and zero leaked reservation bytes.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "serve/load_gen.h"
#include "serve/serve.h"
#include "ssb/dbgen.h"
#include "ssb/queries.h"

using namespace sirius;

namespace {

struct Variant {
  const char* name;
  double skew;
  bool string_heavy;
};

constexpr Variant kVariants[] = {{"skew0", 0.0, false},
                                 {"skew1", 1.0, false},
                                 {"skew2", 2.0, false},
                                 {"string_heavy", 0.0, true}};

ssb::SsbOptions OptionsFor(const Variant& v) {
  ssb::SsbOptions options;
  options.sf = bench::LoadedSf();
  options.skew = v.skew;
  options.string_heavy = v.string_heavy;
  return options;
}

std::unique_ptr<host::Database> MakeSsbDb(const ssb::SsbOptions& options,
                                          double data_scale) {
  host::Database::Options db_options;
  db_options.device = sim::M7i16xlarge();
  db_options.engine = sim::DuckDbProfile();
  db_options.data_scale = data_scale;
  auto db = std::make_unique<host::Database>(db_options);
  SIRIUS_CHECK_OK(ssb::LoadSsb(db.get(), options));
  return db;
}

void RunVariantSweep(bench::BenchJson* json) {
  std::printf("%-14s %-6s %12s %12s %10s\n", "variant", "query", "DuckDB(ms)",
              "Sirius(ms)", "speedup");
  for (const Variant& v : kVariants) {
    auto db = MakeSsbDb(OptionsFor(v), bench::DataScale());
    engine::SiriusEngine::Options gpu_options;
    gpu_options.device = sim::Gh200Gpu();
    gpu_options.profile = sim::SiriusProfile();
    gpu_options.data_scale = bench::DataScale();
    engine::SiriusEngine gpu(db.get(), gpu_options);

    std::vector<double> speedups;
    for (int q = 1; q <= ssb::NumQueries(); ++q) {
      const std::string& sql = ssb::Query(q);

      db->SetAccelerator(nullptr);
      auto cpu = db->Query(sql);
      SIRIUS_CHECK_OK(cpu.status());
      const double cpu_ms = cpu.ValueOrDie().timeline.total_seconds() * 1e3;

      db->SetAccelerator(&gpu);
      (void)db->Query(sql);  // cold run populates the caching region
      auto hot = db->Query(sql);
      db->SetAccelerator(nullptr);
      SIRIUS_CHECK_OK(hot.status());
      SIRIUS_CHECK(hot.ValueOrDie().accelerated);
      const double gpu_ms = hot.ValueOrDie().timeline.total_seconds() * 1e3;

      speedups.push_back(cpu_ms / gpu_ms);
      std::printf("%-14s %-6s %12.1f %12.1f %9.1fx\n", v.name,
                  ssb::QueryName(q).c_str(), cpu_ms, gpu_ms, cpu_ms / gpu_ms);
      json->AddRow({{"section", std::string("variant_sweep")},
                    {"variant", std::string(v.name)},
                    {"query", ssb::QueryName(q)},
                    {"duckdb_ms", cpu_ms},
                    {"sirius_ms", gpu_ms},
                    {"speedup_vs_duckdb", cpu_ms / gpu_ms}});
    }
    const double geomean = bench::Geomean(speedups);
    std::printf("%-14s geomean speedup %25.2fx\n\n", v.name, geomean);
    json->Set(std::string("geomean_speedup_") + v.name, geomean);
  }
}

int RunMixedTenants(bench::BenchJson* json) {
  constexpr int kClients = 32;
  constexpr int kQueriesPerClient = 2;
  const std::vector<int> kTpchMix = {1, 3, 5, 6, 10, 12, 14, 19};
  const std::vector<int> kSsbMix = {1, 4, 5, 7, 9, 11, 13};

  // Model SF1 on the loaded scale (as bench_serve does) so all concurrent
  // admissions fit the GH200 processing region: the acceptance criterion is
  // zero dropped reservations under heterogeneous load, not overload shed.
  const double data_scale = 1.0 / bench::LoadedSf();
  host::Database::Options db_options;
  db_options.device = sim::Gh200Gpu();
  db_options.engine = sim::DuckDbProfile();
  db_options.data_scale = data_scale;
  host::Database db(db_options);
  SIRIUS_CHECK_OK(tpch::LoadTpch(&db, bench::LoadedSf()));
  ssb::SsbOptions ssb_options;
  ssb_options.sf = bench::LoadedSf();
  ssb_options.skew = 1.0;  // the SSB tenant's build sides are skewed
  SIRIUS_CHECK_OK(ssb::LoadSsb(&db, ssb_options));

  engine::SiriusEngine::Options eng_opts;
  eng_opts.device = sim::Gh200Gpu();
  eng_opts.profile = sim::SiriusProfile();
  eng_opts.data_scale = data_scale;
  engine::SiriusEngine engine(&db, eng_opts);

  // Warm both families' working sets before serving (hot-run methodology).
  for (int q : kTpchMix) {
    auto plan = db.PlanSql(tpch::Query(q));
    SIRIUS_CHECK_OK(plan.status());
    SIRIUS_CHECK_OK(engine.ExecutePlan(plan.ValueOrDie()).status());
  }
  for (int q : kSsbMix) {
    auto plan = db.PlanSql(ssb::Query(q));
    SIRIUS_CHECK_OK(plan.status());
    SIRIUS_CHECK_OK(engine.ExecutePlan(plan.ValueOrDie()).status());
  }

  serve::ServeOptions options;
  options.num_streams = 8;
  options.solo_utilization = 0.45;
  options.max_queue_depth = 2 * kClients;
  options.result_cache = false;  // measure execution, not cache hits
  serve::QueryServer server(&db, &engine, options);

  serve::LoadOptions load;
  load.num_clients = kClients;
  load.queries_per_client = kQueriesPerClient;
  load.tenants = {"tpch", "ssb"};
  load.query_mix = kTpchMix;
  for (int q : kSsbMix) {
    load.tenant_mix["ssb"].push_back(
        serve::QueryRef{serve::Workload::kSsb, q});
  }
  load.seed = 42;
  serve::LoadGenerator generator(&server, load);
  auto run = generator.Run();
  SIRIUS_CHECK_OK(run.status());
  const serve::LoadReport& report = run.ValueOrDie();
  const uint64_t refused = server.reservations().total_refused();
  const uint64_t leaked = server.reservations().reserved();

  std::printf("mixed tenants: completed %llu/%d  shed %llu  dropped %llu  "
              "p50 %.1f ms  p95 %.1f ms  %.2f q/sim-s\n",
              static_cast<unsigned long long>(report.completed),
              kClients * kQueriesPerClient,
              static_cast<unsigned long long>(report.shed),
              static_cast<unsigned long long>(refused), report.p50_ms,
              report.p95_ms, report.qps);
  for (const auto& [tenant, completed] : report.tenant_completed) {
    std::printf("  tenant %-5s completed %3llu  exec %.3f sim-s\n",
                tenant.c_str(), static_cast<unsigned long long>(completed),
                report.tenant_exec_s.at(tenant));
    json->AddRow({{"section", std::string("mixed_tenants")},
                  {"tenant", tenant},
                  {"completed", static_cast<int64_t>(completed)},
                  {"exec_sim_s", report.tenant_exec_s.at(tenant)}});
  }
  json->Set("mixed_completed", static_cast<int64_t>(report.completed));
  json->Set("mixed_shed", static_cast<int64_t>(report.shed));
  json->Set("mixed_dropped_reservations", static_cast<int64_t>(refused));
  json->Set("mixed_leaked_reservation_bytes", static_cast<int64_t>(leaked));
  json->Set("mixed_qps_sim", report.qps);
  json->Set("mixed_p50_ms", report.p50_ms);
  json->Set("mixed_p95_ms", report.p95_ms);

  const bool ok = report.completed ==
                      static_cast<uint64_t>(kClients * kQueriesPerClient) &&
                  refused == 0 && leaked == 0 &&
                  report.tenant_completed.size() == 2;
  if (!ok) {
    std::printf("FAIL: mixed-tenant acceptance not met (completed %llu, "
                "dropped %llu, leaked %llu, tenants %zu)\n",
                static_cast<unsigned long long>(report.completed),
                static_cast<unsigned long long>(refused),
                static_cast<unsigned long long>(leaked),
                report.tenant_completed.size());
    return 1;
  }
  std::printf("OK: all %d queries completed across both tenants, zero "
              "dropped reservations\n",
              kClients * kQueriesPerClient);
  return 0;
}

}  // namespace

int main() {
  bench::PrintHeader("SSB workload family: variant sweep + mixed tenants");
  bench::BenchJson json("ssb");
  RunVariantSweep(&json);
  return RunMixedTenants(&json);
}
