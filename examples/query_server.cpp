// Query-server example: many simulated clients, mixed tenants, one shared
// GPU engine behind the serving layer.
//
//   ./query_server             run the workload and print the reports
//   ./query_server --profile   also export query_server_trace.json, a
//                              Chrome-trace (chrome://tracing, Perfetto)
//                              view of an overloaded burst: per-stream
//                              lanes show queries overlapping on the
//                              device, the admission lane shows shed and
//                              timed-out submissions as instants
//
// Two phases:
//   1. steady state — a closed loop where every client waits for its
//      previous query, so offered load adapts to the service rate;
//   2. overloaded burst — an open loop firing arrivals faster than the
//      device can serve, against a short queue, so admission control sheds
//      with retry-after hints while admitted queries still complete.
//
// All reported times are simulated seconds (see DESIGN.md): deterministic
// for the fixed seed, independent of the machine running this binary.

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/export.h"
#include "serve/load_gen.h"
#include "serve/serve.h"
#include "tpch/queries.h"

using namespace sirius;

namespace {

constexpr double kLoadedSf = 0.005;  // tiny physical load, models SF1

void PrintReport(const char* phase, const serve::LoadReport& r) {
  std::printf("--- %s ---\n", phase);
  std::printf("  submitted %llu (retries %llu), completed %llu, shed %llu, "
              "timed out %llu, abandoned %llu\n",
              static_cast<unsigned long long>(r.submitted),
              static_cast<unsigned long long>(r.retries),
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.shed),
              static_cast<unsigned long long>(r.timed_out),
              static_cast<unsigned long long>(r.abandoned));
  std::printf("  result-cache hits %llu\n",
              static_cast<unsigned long long>(r.cache_hits));
  std::printf("  latency p50 %.1f ms, p95 %.1f ms, p99 %.1f ms; "
              "%.1f queries/simulated-second\n",
              r.p50_ms, r.p95_ms, r.p99_ms, r.qps);
  for (const auto& [tenant, seconds] : r.tenant_exec_s) {
    std::printf("  tenant %-10s %6llu completed, %.3f device-seconds\n",
                tenant.c_str(),
                static_cast<unsigned long long>(r.tenant_completed.at(tenant)),
                seconds);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool profile = argc > 1 && std::strcmp(argv[1], "--profile") == 0;

  // One GH200-class simulated device shared by everyone.
  host::Database::Options db_opts;
  db_opts.device = sim::Gh200Gpu();
  db_opts.data_scale = 1.0 / kLoadedSf;
  host::Database db(db_opts);
  SIRIUS_CHECK_OK(tpch::LoadTpch(&db, kLoadedSf));

  engine::SiriusEngine::Options eng_opts;
  eng_opts.device = sim::Gh200Gpu();
  eng_opts.profile = sim::SiriusProfile();
  eng_opts.data_scale = 1.0 / kLoadedSf;
  engine::SiriusEngine engine(&db, eng_opts);

  serve::ServeOptions options;
  options.num_streams = 4;
  options.max_queue_depth = 6;  // short queue: the burst must shed
  options.default_timeout_s = 2.0;
  options.tracing = profile;
  serve::QueryServer server(&db, &engine, options);

  // Two tenants sharing the device 3:1; the serving layer's stride
  // scheduler holds them to those proportions under contention.
  server.RegisterTenant("analytics", 3.0);
  server.RegisterTenant("reporting", 1.0);

  // Phase 1: steady state. 12 clients, one query outstanding each.
  serve::LoadOptions steady;
  steady.num_clients = 12;
  steady.queries_per_client = 3;
  steady.tenants = {"analytics", "reporting"};
  steady.query_mix = {1, 3, 6, 12, 14};
  steady.interactive_fraction = 0.25;
  steady.seed = 7;
  auto steady_report = serve::LoadGenerator(&server, steady).Run();
  SIRIUS_CHECK_OK(steady_report.status());
  PrintReport("steady state (closed loop, 12 clients)",
              steady_report.ValueOrDie());

  // Phase 2: overloaded burst. Open-loop arrivals well past the service
  // rate; the short queue forces admission control to shed, retries follow
  // the server's retry-after hints, and admitted queries overlap on the
  // simulated streams.
  serve::LoadOptions burst;
  burst.num_clients = 24;
  burst.open_loop = true;
  burst.arrival_rate_qps = 400;
  burst.duration_s = 0.25;
  burst.tenants = {"analytics", "reporting"};
  burst.query_mix = {1, 3, 6, 12, 14};
  burst.interactive_fraction = 0.25;
  burst.seed = 11;
  burst.max_retries = 1;
  // The steady phase populated the result cache; bypass it here so the
  // burst hits the device for real and admission control has to shed.
  burst.bypass_cache = true;
  auto burst_report = serve::LoadGenerator(&server, burst).Run();
  SIRIUS_CHECK_OK(burst_report.status());
  PrintReport("overloaded burst (open loop, 400 q/s offered)",
              burst_report.ValueOrDie());

  if (profile) {
    const obs::QueryProfile prof = server.Profile();
    const std::string json = obs::ToChromeTraceJson(prof);
    const char* path = "query_server_trace.json";
    std::FILE* f = std::fopen(path, "w");
    SIRIUS_CHECK(f != nullptr);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s (%zu spans over %zu tracks): stream lanes show "
                "overlapped queries, the admission lane shows queued, shed, "
                "and timed-out submissions\n",
                path, prof.spans.size(), prof.tracks.size());
  } else {
    std::printf("\nre-run with --profile to export a Chrome trace of the "
                "burst\n");
  }
  return 0;
}
