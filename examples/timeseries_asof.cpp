// Time-series analytics with ASOF joins (§3.4's advanced-operator roadmap):
// join each trade with the prevailing quote, then aggregate notional value per
// symbol — the classic tick-data workload, accelerated drop-in by Sirius.

#include <cstdio>
#include <random>

#include "engine/sirius.h"
#include "format/builder.h"
#include "host/database.h"

using namespace sirius;

int main() {
  host::Database db;
  std::mt19937_64 rng(7);
  const std::vector<std::string> symbols = {"AAPL", "MSFT", "NVDA", "ORCL"};

  // Quotes: a price stream per symbol.
  format::TableBuilder quotes(format::Schema({{"q_symbol", format::String()},
                                              {"q_time", format::Int64()},
                                              {"bid", format::Decimal(2)}}));
  for (int64_t t = 0; t < 2000; ++t) {
    const auto& sym = symbols[rng() % symbols.size()];
    quotes.column(0).AppendString(sym);
    quotes.column(1).AppendInt(t);
    quotes.column(2).AppendInt(10000 + static_cast<int64_t>(rng() % 5000));
  }
  SIRIUS_CHECK_OK(db.CreateTable("quotes", quotes.Finish().ValueOrDie()));

  // Trades: sparser, to be priced as-of the latest quote.
  format::TableBuilder trades(format::Schema({{"symbol", format::String()},
                                              {"t_time", format::Int64()},
                                              {"shares", format::Int64()}}));
  for (int64_t t = 5; t < 2000; t += 13) {
    const auto& sym = symbols[rng() % symbols.size()];
    trades.column(0).AppendString(sym);
    trades.column(1).AppendInt(t);
    trades.column(2).AppendInt(static_cast<int64_t>(100 + rng() % 900));
  }
  SIRIUS_CHECK_OK(db.CreateTable("trades", trades.Finish().ValueOrDie()));

  engine::SiriusEngine sirius_engine(&db, {});
  db.SetAccelerator(&sirius_engine);

  const std::string sql =
      "select symbol, count(*) as trades, sum(shares * bid) as notional "
      "from trades asof join quotes "
      "on symbol = q_symbol and t_time >= q_time "
      "group by symbol "
      "order by notional desc";
  auto r = db.Query(sql);
  SIRIUS_CHECK_OK(r.status());
  std::printf("ASOF-priced notional per symbol (accelerated=%s):\n%s\n",
              r.ValueOrDie().accelerated ? "true" : "false",
              r.ValueOrDie().table->ToString().c_str());
  std::printf("plan:\n%s", r.ValueOrDie().optimized_plan->ToString().c_str());
  return 0;
}
