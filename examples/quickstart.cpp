// Quickstart: create tables, run SQL on the DuckX host, then attach Sirius
// for drop-in GPU acceleration — no change to the query code.

#include <cstdio>

#include "engine/sirius.h"
#include "format/column.h"
#include "host/database.h"

using namespace sirius;

int main() {
  // 1. An embedded host database with a couple of tables.
  host::Database db;

  auto users = format::Table::Make(
                   format::Schema({{"user_id", format::Int64()},
                                   {"name", format::String()},
                                   {"country", format::String()}}),
                   {format::Column::FromInt64({1, 2, 3, 4}),
                    format::Column::FromStrings({"ada", "grace", "edsger", "barbara"}),
                    format::Column::FromStrings({"UK", "US", "NL", "US"})})
                   .ValueOrDie();
  SIRIUS_CHECK_OK(db.CreateTable("users", users));

  auto orders = format::Table::Make(
                    format::Schema({{"order_id", format::Int64()},
                                    {"user_id", format::Int64()},
                                    {"amount", format::Decimal(2)}}),
                    {format::Column::FromInt64({100, 101, 102, 103, 104}),
                     format::Column::FromInt64({1, 2, 2, 3, 2}),
                     format::Column::FromDecimal({1999, 2550, 999, 10000, 475}, 2)})
                    .ValueOrDie();
  SIRIUS_CHECK_OK(db.CreateTable("orders", orders));

  const std::string sql =
      "select country, count(*) as num_orders, sum(amount) as total "
      "from users, orders "
      "where users.user_id = orders.user_id "
      "group by country "
      "order by total desc";

  // 2. Run on the CPU engine.
  auto cpu = db.Query(sql);
  SIRIUS_CHECK_OK(cpu.status());
  std::printf("--- CPU engine result ---\n%s\n",
              cpu.ValueOrDie().table->ToString().c_str());

  // 3. Attach Sirius: same SQL, same interface, GPU-native execution. The
  //    optimized plan crosses the Substrait boundary automatically.
  engine::SiriusEngine sirius_engine(&db, {});
  db.SetAccelerator(&sirius_engine);

  auto gpu = db.Query(sql);
  SIRIUS_CHECK_OK(gpu.status());
  std::printf("--- Sirius (GPU) result, accelerated=%s ---\n%s\n",
              gpu.ValueOrDie().accelerated ? "true" : "false",
              gpu.ValueOrDie().table->ToString().c_str());

  std::printf("results identical: %s\n",
              cpu.ValueOrDie().table->Equals(*gpu.ValueOrDie().table) ? "yes"
                                                                      : "no");
  std::printf("optimized plan:\n%s",
              gpu.ValueOrDie().optimized_plan->ToString().c_str());
  return 0;
}
