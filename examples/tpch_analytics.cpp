// TPC-H analytics walkthrough: load the benchmark at a small scale factor,
// inspect plans and pipeline breakdowns, and compare CPU vs GPU execution —
// the single-node workflow of the paper's §4.2.

#include <cstdio>
#include <cstring>
#include <string>

#include "engine/sirius.h"
#include "obs/export.h"
#include "tpch/queries.h"

using namespace sirius;

namespace {

// With --profile, each query's trace summary prints and the full span
// timeline is written as Chrome trace-event JSON (open in chrome://tracing
// or https://ui.perfetto.dev).
void DumpProfile(int q, const obs::QueryProfile& profile) {
  std::printf("%s", obs::ToTextSummary(profile).c_str());
  const std::string path = "tpch_q" + std::to_string(q) + ".trace.json";
  const std::string json = obs::ToChromeTraceJson(profile);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("chrome trace written to %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool profile = false;
  bool fusion = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0) profile = true;
    // Run every pipeline with materialized per-operator stages instead of
    // the fused passes of DESIGN.md §13 — the ablation switch.
    if (std::strcmp(argv[i], "--no-fusion") == 0) fusion = false;
  }
  const double sf = 0.01;
  const double modeled_sf = 100.0;  // report times as if SF100 (paper §4.1)

  host::Database::Options host_options;
  host_options.device = sim::M7i16xlarge();
  host_options.engine = sim::DuckDbProfile();
  host_options.data_scale = modeled_sf / sf;
  host::Database db(host_options);
  SIRIUS_CHECK_OK(tpch::LoadTpch(&db, sf));
  std::printf("loaded TPC-H SF %.2f (%llu bytes across 8 tables)\n", sf,
              static_cast<unsigned long long>(db.catalog().TotalBytes()));

  engine::SiriusEngine::Options gpu_options;
  gpu_options.device = sim::Gh200Gpu();
  gpu_options.data_scale = modeled_sf / sf;
  gpu_options.fusion = fusion;
  engine::SiriusEngine sirius_engine(&db, gpu_options);
  if (!fusion) std::printf("pipeline fusion disabled (--no-fusion)\n");

  for (int q : {1, 3, 6}) {
    std::printf("\n================ TPC-H Q%d ================\n", q);

    db.SetAccelerator(nullptr);
    auto cpu = db.Query(tpch::Query(q));
    SIRIUS_CHECK_OK(cpu.status());

    db.SetAccelerator(&sirius_engine);
    (void)db.Query(tpch::Query(q));  // cold run fills the caching region
    auto gpu = db.Query(tpch::Query(q));
    SIRIUS_CHECK_OK(gpu.status());

    std::printf("plan:\n%s", cpu.ValueOrDie().optimized_plan->ToString().c_str());
    auto pipelines =
        sirius_engine.ExplainPipelines(gpu.ValueOrDie().optimized_plan);
    std::printf("Sirius pipelines (push model, §3.2.2):\n%s",
                pipelines.ValueOrDie().c_str());

    std::printf("result (first rows):\n%s",
                gpu.ValueOrDie().table->ToString(5).c_str());
    std::printf("modeled time @SF%.0f: DuckDB %.1f ms, Sirius %.1f ms (%.1fx)\n",
                modeled_sf, cpu.ValueOrDie().timeline.total_seconds() * 1e3,
                gpu.ValueOrDie().timeline.total_seconds() * 1e3,
                cpu.ValueOrDie().timeline.total_seconds() /
                    gpu.ValueOrDie().timeline.total_seconds());
    std::printf("results identical: %s\n",
                cpu.ValueOrDie().table->Equals(*gpu.ValueOrDie().table)
                    ? "yes"
                    : "no");
    if (profile && gpu.ValueOrDie().profile != nullptr) {
      DumpProfile(q, *gpu.ValueOrDie().profile);
    }
  }
  return 0;
}
