// Drop-in acceleration mechanics: the Substrait boundary, capability
// gating, and graceful CPU fallback (paper §3.1-§3.2).

#include <cstdio>

#include "engine/sirius.h"
#include "plan/substrait.h"
#include "tpch/queries.h"

using namespace sirius;

int main() {
  host::Database db;
  SIRIUS_CHECK_OK(tpch::LoadTpch(&db, 0.005));

  // 1. The host database exports its optimized plan in the standard wire
  //    format — this is everything that crosses the host/Sirius boundary.
  auto wire = db.ExportSubstrait(tpch::Query(6));
  SIRIUS_CHECK_OK(wire.status());
  std::printf("Substrait plan for Q6 (%zu bytes):\n%.220s...\n\n",
              wire.ValueOrDie().size(), wire.ValueOrDie().c_str());

  // 2. A full-featured Sirius engine accepts it.
  engine::SiriusEngine full(&db, {});
  auto direct = full.ExecuteSubstrait(wire.ValueOrDie());
  SIRIUS_CHECK_OK(direct.status());
  std::printf("executed directly from the wire format: %zu row(s)\n\n",
              direct.ValueOrDie().table->num_rows());

  // 3. A restricted engine (e.g. the distributed mode's narrower SQL
  //    coverage, §3.4) declines plans it cannot run; the host transparently
  //    falls back to its CPU engine (§3.2.2).
  engine::SiriusEngine::Options limited_options;
  limited_options.capabilities.avg = false;
  engine::SiriusEngine limited(&db, limited_options);
  db.SetAccelerator(&limited);

  auto q1 = db.Query(tpch::Query(1));  // Q1 uses avg
  SIRIUS_CHECK_OK(q1.status());
  std::printf("Q1 on the restricted engine: accelerated=%s, fell_back=%s\n",
              q1.ValueOrDie().accelerated ? "true" : "false",
              q1.ValueOrDie().fell_back ? "true" : "false");

  auto q6 = db.Query(tpch::Query(6));  // Q6 is fully supported
  SIRIUS_CHECK_OK(q6.status());
  std::printf("Q6 on the restricted engine: accelerated=%s, fell_back=%s\n",
              q6.ValueOrDie().accelerated ? "true" : "false",
              q6.ValueOrDie().fell_back ? "true" : "false");

  std::printf("\nThe user-facing interface never changed: same SQL, same "
              "Database object, results served by whichever engine could "
              "run the plan.\n");
  return 0;
}
