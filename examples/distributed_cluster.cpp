// Distributed analytics: a 4-node DorisX cluster accelerated by per-node
// Sirius GPU engines (the paper's §3.3/§4.3 deployment), with heartbeats,
// fragmented plans, and the exchange service layer moving intermediates.

#include <cstdio>
#include <cstring>
#include <string>

#include "dist/cluster.h"
#include "obs/export.h"
#include "tpch/dbgen.h"
#include "tpch/queries.h"

using namespace sirius;

int main(int argc, char** argv) {
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0) profile = true;
  }
  const double sf = 0.01;
  const double modeled_sf = 100.0;

  dist::DorisCluster::Options options;
  options.num_nodes = 4;
  options.device = sim::A100Gpu();           // one A100 per node
  options.engine = sim::SiriusProfile();     // Sirius as drop-in engine
  options.network = sim::Infiniband400();    // 400 Gbps InfiniBand
  options.data_scale = modeled_sf / sf;
  dist::DorisCluster cluster(options);

  // Load TPC-H hash-partitioned across the nodes.
  for (const auto& name : tpch::TableNames()) {
    auto table = tpch::GenerateTable(name, sf).ValueOrDie();
    SIRIUS_CHECK_OK(cluster.LoadPartitioned(name, table));
  }
  std::printf("cluster up: %d nodes\n", cluster.num_nodes());

  // Control plane: heartbeats identify active nodes (paper §3.2.1).
  for (int r = 0; r < cluster.num_nodes(); ++r) cluster.Heartbeat(r, /*now=*/0.0);
  std::printf("alive nodes after heartbeats: %d\n", cluster.num_alive());

  for (int q : {1, 3, 6}) {
    auto r = cluster.Query(tpch::Query(q));
    SIRIUS_CHECK_OK(r.status());
    const auto& v = r.ValueOrDie();
    std::printf("\n--- TPC-H Q%d (modeled @SF%.0f, 4x A100) ---\n", q, modeled_sf);
    std::printf("%s", v.table->ToString(5).c_str());
    std::printf("total %.0f ms = compute %.0f + exchange %.0f + other %.0f\n",
                v.total_seconds * 1e3, v.compute_seconds * 1e3,
                v.exchange_seconds * 1e3, v.other_seconds * 1e3);
    if (profile && v.profile != nullptr) {
      // Per-node fragment lanes, the collective link lane, and the
      // coordinator's recovery markers, as chrome://tracing JSON.
      std::printf("%s", obs::ToTextSummary(*v.profile).c_str());
      const std::string path = "dist_q" + std::to_string(q) + ".trace.json";
      const std::string json = obs::ToChromeTraceJson(*v.profile);
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f != nullptr) {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("chrome trace written to %s\n", path.c_str());
      }
    }
  }

  // Exchanged intermediates were registered as temp tables and deregistered
  // once their consuming fragments finished (paper §3.2.4).
  std::printf("\ntemp tables still registered: %zu (of %llu total exchanges)\n",
              cluster.temp_registry().active_count(),
              static_cast<unsigned long long>(
                  cluster.temp_registry().total_registered()));
  return 0;
}
