// Vector similarity search on the GPU engine (paper §3.4 names vector
// search among Sirius' planned advanced operators): synthetic product
// embeddings live in a LIST<FLOAT64> column, are cached in the device's
// caching region, and are scored brute-force at HBM bandwidth.

#include <cmath>
#include <cstdio>
#include <random>

#include "engine/sirius.h"
#include "format/builder.h"
#include "host/database.h"

using namespace sirius;

namespace {

/// Deterministic toy "text embedding": a direction per theme + noise.
std::vector<double> Embed(int theme, std::mt19937_64& rng) {
  std::normal_distribution<double> noise(0.0, 0.15);
  std::vector<double> v(8, 0.0);
  v[theme % 8] = 1.0;
  v[(theme + 3) % 8] = 0.4;
  for (auto& x : v) x += noise(rng);
  return v;
}

}  // namespace

int main() {
  const std::vector<std::string> themes = {"steel bolts",   "copper wire",
                                           "brass fittings", "nylon rope",
                                           "oak planks",     "glass panels",
                                           "rubber seals",   "tin sheets"};
  std::mt19937_64 rng(11);

  // A product catalog with embeddings (the LIST column is built separately;
  // scalar builders cover the rest).
  format::TableBuilder products(format::Schema(
      {{"product_id", format::Int64()}, {"name", format::String()}}));
  std::vector<std::vector<double>> embeddings;
  for (int64_t id = 0; id < 400; ++id) {
    int theme = static_cast<int>(rng() % themes.size());
    products.column(0).AppendInt(id);
    products.column(1).AppendString(themes[theme] + " #" + std::to_string(id));
    embeddings.push_back(Embed(theme, rng));
  }
  auto base = products.Finish().ValueOrDie();
  auto embedding_col = format::Column::FromListsOfDoubles(embeddings);
  auto table =
      format::Table::Make(
          format::Schema({{"product_id", format::Int64()},
                          {"name", format::String()},
                          {"embedding", embedding_col->type()}}),
          {base->column(0), base->column(1), embedding_col})
          .ValueOrDie();

  host::Database db;
  SIRIUS_CHECK_OK(db.CreateTable("products", table));

  engine::SiriusEngine sirius_engine(&db, {});

  // "Find products like copper wire": query with theme 1's direction.
  std::mt19937_64 qrng(99);
  auto query = Embed(1, qrng);
  sim::Timeline timeline;
  auto hits = sirius_engine.VectorSearch("products", "embedding", query,
                                         /*k=*/5, gdf::Metric::kCosine,
                                         &timeline);
  SIRIUS_CHECK_OK(hits.status());
  std::printf("top-5 semantic matches for a 'copper wire'-like query "
              "(%.3f ms modeled on GH200):\n",
              timeline.total_seconds() * 1e3);
  auto t = hits.ValueOrDie();
  for (size_t i = 0; i < t->num_rows(); ++i) {
    std::printf("  %-24s score %.3f\n",
                std::string(t->ColumnByName("name")->StringAt(i)).c_str(),
                t->ColumnByName("__score")->data<double>()[i]);
  }
  return 0;
}
