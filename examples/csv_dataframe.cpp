// End-to-end composable workflow: import CSV from disk (the host database's
// disk path, §3.2.3), build a DataFrame pipeline (the §3.4 Ibis-style
// front-end), and run it drop-in accelerated — no SQL anywhere.

#include <cstdio>
#include <fstream>

#include "engine/sirius.h"
#include "host/csv.h"
#include "host/dataframe.h"

using namespace sirius;

int main() {
  // 1. Write and import a CSV file (types inferred from the data).
  const std::string path = "/tmp/sirius_example_orders.csv";
  {
    std::ofstream out(path);
    out << "order_id,region,order_date,amount\n"
           "1,emea,2024-01-05,120.50\n"
           "2,amer,2024-01-06,89.99\n"
           "3,emea,2024-02-01,310.00\n"
           "4,apac,2024-02-11,45.25\n"
           "5,amer,2024-02-14,220.10\n"
           "6,emea,2024-03-02,99.00\n";
  }
  auto table = host::ReadCsvInferSchema(path);
  SIRIUS_CHECK_OK(table.status());
  std::printf("imported schema: %s\n",
              table.ValueOrDie()->schema().ToString().c_str());

  host::Database db;
  SIRIUS_CHECK_OK(db.CreateTable("orders", table.ValueOrDie()));

  // 2. Attach the GPU engine; the DataFrame path routes through it too.
  engine::SiriusEngine sirius_engine(&db, {});
  db.SetAccelerator(&sirius_engine);

  // 3. A composable pipeline: filter -> aggregate -> sort.
  auto result =
      host::DataFrame::Scan(&db, "orders")
          .ValueOrDie()
          .Filter(expr::Ge(expr::ColRef("order_date"),
                           expr::LitDate("2024-02-01")))
          .ValueOrDie()
          .Aggregate({"region"},
                     {{plan::AggFunc::kSum, "amount", "total"},
                      {plan::AggFunc::kCountStar, "", "orders"}})
          .ValueOrDie()
          .Sort({{"total", true}})
          .ValueOrDie()
          .Collect();
  SIRIUS_CHECK_OK(result.status());
  std::printf("\nFebruary+ revenue by region (accelerated=%s):\n%s\n",
              result.ValueOrDie().accelerated ? "true" : "false",
              result.ValueOrDie().table->ToString().c_str());

  // 4. Round-trip back to disk.
  SIRIUS_CHECK_OK(
      host::WriteCsv(result.ValueOrDie().table, "/tmp/sirius_example_out.csv"));
  std::printf("wrote /tmp/sirius_example_out.csv\n");
  std::remove(path.c_str());
  return 0;
}
